// Copyright 2026 The rollview Authors.
//
// Interval policies: "choose a propagation interval length delta" (Figures
// 5 and 10). The interval is the paper's tuning knob balancing per-query
// cost against query count and contention (Sec. 3.3); RollingPropagate
// allows one policy per base relation (Sec. 3.4).
//
// The paper leaves interval choice as an open tuning problem. The
// IntervalController below closes the loop: it consumes a periodic
// ContentionSnapshot (per-class lock-manager counters, driver step
// outcomes, delta backlog, view staleness) and AIMD-adjusts a shared
// rows-per-query target -- multiplicative shrink when foreground OLTP is
// suffering (lock waits/timeouts) or maintenance keeps losing deadlocks,
// additive grow when calm -- which AdaptiveContentionInterval translates
// into per-relation CSN interval widths via DeltaTable::TsAfterRows. The
// controller also runs the staleness-SLO hysteresis: sustained violation
// under contention enters a shedding state (MaintenanceService reacts by
// pausing non-critical work); recovery is hysteretic.

#ifndef ROLLVIEW_IVM_INTERVAL_POLICY_H_
#define ROLLVIEW_IVM_INTERVAL_POLICY_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>

#include "capture/delta_table.h"
#include "common/csn.h"

namespace rollview {

class IntervalPolicy {
 public:
  virtual ~IntervalPolicy() = default;

  // The end of the next propagation interval starting at `from`, given that
  // delta rows are published up to `ready` (the capture high-water mark).
  // Must return a value in [from, ready]; returning `from` means "cannot
  // advance yet".
  virtual Csn NextBoundary(Csn from, Csn ready, const DeltaTable& delta) = 0;

  // Partition-aware variant: a strip that only processes `filter`'s slice
  // of the delta should size its interval to the rows *it* will read, not
  // the full stream (at P partitions a density-based policy would otherwise
  // cut intervals P times too short). Policies that size by row counts
  // override this; others inherit the filter-blind default. A null filter
  // means unpartitioned.
  virtual Csn NextBoundaryFiltered(Csn from, Csn ready,
                                   const DeltaTable& delta,
                                   const DeltaPartitionFilter* /*filter*/) {
    return NextBoundary(from, ready, delta);
  }
};

// Fixed interval length in commit-sequence units.
class FixedInterval : public IntervalPolicy {
 public:
  explicit FixedInterval(Csn length) : length_(length) {}

  Csn NextBoundary(Csn from, Csn ready, const DeltaTable&) override {
    return std::min<Csn>(from + length_, ready);
  }

 private:
  Csn length_;
};

// Adaptive: size each interval to roughly `target_rows` delta rows, so
// frequently-updated relations get short (in time) intervals and
// rarely-updated ones get long intervals -- the star-schema motivation of
// Sec. 3.4 expressed as a per-relation policy.
class TargetRowsInterval : public IntervalPolicy {
 public:
  explicit TargetRowsInterval(size_t target_rows)
      : target_rows_(target_rows) {}

  Csn NextBoundary(Csn from, Csn ready, const DeltaTable& delta) override {
    if (from >= ready) return from;
    return delta.TsAfterRows(from, target_rows_, ready);
  }

  Csn NextBoundaryFiltered(Csn from, Csn ready, const DeltaTable& delta,
                           const DeltaPartitionFilter* filter) override {
    if (from >= ready) return from;
    return delta.TsAfterRows(from, target_rows_, ready, filter);
  }

 private:
  size_t target_rows_;
};

// Greedy: always consume everything captured so far (one big interval).
class DrainInterval : public IntervalPolicy {
 public:
  Csn NextBoundary(Csn from, Csn ready, const DeltaTable&) override {
    return std::max(from, ready);
  }
};

// One observation window of contention signals, assembled by
// MaintenanceService after each propagation step from *deltas* of the
// LockManager per-class counters, the driver's own step outcomes, and the
// propagator's backlog. All fields are windowed counts except backlog_rows
// and staleness, which are current levels. Staleness is measured in CSN
// units (stable_csn - view high-water mark), keeping the controller free of
// wall clocks and therefore deterministic under simulation.
struct ContentionSnapshot {
  // Foreground (OLTP-class) suffering: the signal the controller exists to
  // minimize.
  uint64_t oltp_waits = 0;
  uint64_t oltp_timeouts = 0;
  uint64_t oltp_deadlock_victims = 0;
  uint64_t oltp_wait_nanos = 0;
  // Maintenance-class suffering: mostly self-inflicted; victim aborts mean
  // propagation transactions are repeatedly losing to OLTP.
  uint64_t maintenance_waits = 0;
  uint64_t maintenance_timeouts = 0;
  uint64_t maintenance_deadlock_victims = 0;
  // Driver-level outcomes in the window.
  uint64_t steps = 0;
  uint64_t step_transient_failures = 0;
  uint64_t step_nanos = 0;
  // Current levels.
  uint64_t backlog_rows = 0;  // captured-but-unpropagated delta rows
  Csn staleness = 0;          // stable_csn - view high-water mark
};

// Per-view AIMD controller over the rows-per-forward-query target, plus the
// staleness-SLO shedding state machine. Purely reactive and clock-free: all
// inputs arrive via Observe()/OnTransientStepFailure(), so unit tests drive
// it with synthetic snapshot sequences. Thread-safe (the propagate driver
// mutates it; policies and observers read it).
class IntervalController {
 public:
  struct Options {
    // AIMD bounds and steps for the rows-per-query target.
    size_t initial_target_rows = 256;
    size_t min_target_rows = 16;
    size_t max_target_rows = 4096;
    double shrink_factor = 0.5;  // multiplicative decrease when contended
    size_t grow_rows = 32;       // additive increase when calm
    // A window counts as contended when any of these thresholds is met.
    uint64_t oltp_wait_threshold = 1;      // oltp waits + timeouts
    uint64_t victim_threshold = 1;         // maintenance deadlock victims
    // Time-domain AIMD: shrinking the row target alone cannot reduce the
    // *rate* of lock-order collisions (smaller strips just run more
    // often), so contended windows also escalate a recommended pause
    // before the next strip -- multiplicative increase from pause_initial
    // up to pause_max -- and calm windows decay it multiplicatively back
    // to zero. The controller only recommends; MaintenanceService applies
    // the pause between propagation steps. pause_initial == 0 disables
    // pacing.
    std::chrono::microseconds pause_initial{500};
    std::chrono::microseconds pause_max{20000};
    double pause_multiplier = 2.0;
    double pause_decay = 0.5;
    // Staleness SLO in CSN units; 0 disables the shedding state machine.
    Csn staleness_slo = 0;
    // Hysteresis: enter shedding after this many consecutive contended
    // windows violating the SLO ...
    int violations_to_shed = 3;
    // ... and leave it after this many consecutive windows with staleness
    // at or below slo * recover_fraction.
    int ok_to_recover = 3;
    double recover_fraction = 0.5;
  };

  struct Stats {
    uint64_t observations = 0;
    uint64_t shrinks = 0;            // multiplicative decreases (Observe)
    uint64_t grows = 0;              // additive increases
    uint64_t transient_shrinks = 0;  // OnTransientStepFailure decreases
    uint64_t pace_escalations = 0;   // pause increases (either path)
    uint64_t slo_violations = 0;     // contended windows over the SLO
    uint64_t shed_entries = 0;
    uint64_t shed_exits = 0;
  };

  IntervalController() : IntervalController(Options{}) {}
  explicit IntervalController(Options options);

  // Feeds one observation window; applies AIMD and advances the shedding
  // state machine. Returns true if the shedding state changed.
  bool Observe(const ContentionSnapshot& snapshot);

  // Immediate multiplicative shrink on a transient step failure (deadlock
  // victim or lock timeout), so the supervisor's retry of the step runs
  // with the smaller interval rather than re-colliding at the old size.
  void OnTransientStepFailure();

  // Restores the AIMD state (row target, pause, SLO streak counters,
  // shedding flag) to a fresh controller's. Called when the maintenance
  // driver restarts after kFailed: the contention regime that drove the
  // target down died with the old driver, and resuming from a stale
  // minimum would cripple the restarted one. Cumulative stats survive.
  void Reset();

  // Current rows-per-forward-query target, always within [min, max].
  size_t target_rows() const;
  // Recommended pause before the next propagation step; zero when calm.
  std::chrono::microseconds recommended_pause() const;
  // True while the SLO state machine is in its shedding state.
  bool shedding() const;
  Stats GetStats() const;

  const Options& options() const { return options_; }

 private:
  static bool Contended(const Options& opt, const ContentionSnapshot& s);
  void ShrinkLocked();
  void EscalatePauseLocked();

  Options options_;
  mutable std::mutex mu_;
  size_t target_rows_;
  std::chrono::microseconds pause_{0};
  bool shedding_ = false;
  int consecutive_violations_ = 0;
  int consecutive_ok_ = 0;
  Stats stats_;
};

// Adaptive policy: sizes each relation's interval to the controller's
// current rows-per-query target. One shared controller serves all of a
// view's relations -- the per-relation delta densities (TsAfterRows) turn
// the common row target into per-relation CSN widths, which is exactly the
// paper's n-knob setup with the knobs coupled to one feedback signal.
class AdaptiveContentionInterval : public IntervalPolicy {
 public:
  explicit AdaptiveContentionInterval(const IntervalController* controller)
      : controller_(controller) {}

  Csn NextBoundary(Csn from, Csn ready, const DeltaTable& delta) override;
  Csn NextBoundaryFiltered(Csn from, Csn ready, const DeltaTable& delta,
                           const DeltaPartitionFilter* filter) override;

 private:
  const IntervalController* controller_;
};

}  // namespace rollview

#endif  // ROLLVIEW_IVM_INTERVAL_POLICY_H_
