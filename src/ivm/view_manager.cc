#include "ivm/view_manager.h"

#include <algorithm>
#include <unordered_map>

#include "ivm/checkpoint.h"
#include "storage/wal_codec.h"

namespace rollview {

Result<View*> ViewManager::CreateView(const std::string& name,
                                      SpjViewDef def) {
  ROLLVIEW_ASSIGN_OR_RETURN(ResolvedView resolved,
                            ResolvedView::Resolve(db_, std::move(def)));
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& v : views_) {
    if (v->name == name) {
      return Status::AlreadyExists("view '" + name + "' exists");
    }
  }
  auto view = std::make_unique<View>();
  view->id = next_id_++;
  view->name = name;
  view->resolved = std::move(resolved);
  view->view_delta = std::make_unique<DeltaTable>(
      "vdelta_" + name, view->resolved.view_schema(), /*ts_sorted=*/false);
  view->mv = std::make_unique<MaterializedView>(view->resolved.view_schema());
  // Named lock resources: keep view locks clear of delta-table resources
  // (which use the base TableId directly).
  view->mv_lock_resource = (1ULL << 20) + view->id;
  if (db_->options().compile_delta_programs) {
    const SpjViewDef& d = view->resolved.def();
    view->programs = ViewPrograms::Compile(db_, d.tables, d.joins,
                                           d.selection, d.projection, name);
  }
  views_.push_back(std::move(view));
  // Durable id -> name binding: view ids restart per crash generation, so
  // every later view record in the log resolves its id through the most
  // recent preceding kCreateView. Catalog records are forced to disk like
  // CreateTable's: losing one would orphan every later record of the view.
  Lsn lsn = db_->wal()->Append(MakeCreateViewRecord(*views_.back()));
  if (db_->wal()->durable()) {
    // Propagate a failed force like CreateTable does: a caller told the
    // view exists while its catalog record never reached disk would lose
    // the whole view on recovery.
    ROLLVIEW_RETURN_NOT_OK(db_->wal()->SyncTo(lsn));
  }
  return views_.back().get();
}

std::vector<View*> ViewManager::AllViews() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<View*> out;
  out.reserve(views_.size());
  for (const auto& v : views_) out.push_back(v.get());
  return out;
}

View* ViewManager::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& v : views_) {
    if (v->name == name) return v.get();
  }
  return nullptr;
}

Status ViewManager::Materialize(View* view) {
  const ResolvedView& rv = view->resolved;
  std::unique_ptr<Txn> txn = db_->Begin(TxnClass::kMaintenance);

  JoinQuery q;
  q.terms.reserve(rv.num_terms());
  for (size_t i = 0; i < rv.num_terms(); ++i) {
    q.terms.push_back(TermSource::BaseCurrent(rv.table(i)));
  }
  q.equi_joins = rv.def().joins;
  q.residual = rv.def().selection;
  q.projection = rv.def().projection;

  JoinExecutor exec(db_);
  Result<DeltaRows> rows = exec.Execute(q, txn.get());
  if (!rows.ok()) {
    db_->Abort(txn.get()).ok();
    return rows.status();
  }
  Status cs = db_->Commit(txn.get());
  if (!cs.ok()) {
    db_->Abort(txn.get()).ok();  // failed commit leaves the txn active
    return cs;
  }
  Csn csn = txn->commit_csn();

  view->mv->Replace(ToCountMap(rows.value()), csn);
  view->propagate_from.store(csn, std::memory_order_release);
  view->delta_hwm.store(csn, std::memory_order_release);
  // Materialization resets maintenance history: fresh cursors, and an
  // initial checkpoint so a crash right after this point recovers the full
  // computation instead of redoing it.
  CursorState cursors;
  cursors.tfwd.assign(view->resolved.num_terms(), csn);
  cursors.tcomp.assign(view->resolved.num_terms(), csn);
  cursors.next_step_seq = 1;
  view->ClearCursors();  // including any stale partition chains
  view->StoreCursors(std::move(cursors));
  // Half-join auxiliary state predates the new materialization time; drop
  // it so the first forward query rebuilds from consistent snapshots.
  if (view->programs != nullptr) view->programs->Reset();
  return WriteViewCheckpoint(db_, view);
}

namespace {

// Per-view replay state, keyed by name (ids are remapped in log order).
struct ReplayedAppend {
  size_t idx = 0;  // position in `records`
  DeltaRow row;
  uint64_t step_seq = 0;
  uint32_t partition = 0;
};
struct ReplayedCursor {
  size_t idx = 0;
  ViewCursorBlob blob;
};
struct PerView {
  bool has_checkpoint = false;
  size_t checkpoint_idx = 0;
  ViewCheckpointBlob checkpoint;
  std::vector<ReplayedAppend> appends;  // committed, in log order
  std::vector<ReplayedCursor> cursors;
  Csn applied = kNullCsn;  // latest durable applied mark (monotone)
  uint64_t max_step_seq = 0;
};
struct PendingAppend {
  std::string view_name;
  ReplayedAppend append;
};
using PerViewMap = std::unordered_map<std::string, PerView>;

// A checkpoint's rows must reproduce its stored digest (pre-digest
// checkpoints carry none and are trusted as before). The blob codec's
// trailing CRC already rejects most damage at decode; this catches a
// semantically-valid decode whose contents nevertheless disagree with the
// digest the writer computed.
bool CheckpointDigestOk(const ViewCheckpointBlob& blob) {
  if (!blob.has_digest) return true;
  CountMap contents;
  contents.reserve(blob.mv_rows.size());
  for (const auto& [tuple, count] : blob.mv_rows) {
    contents[tuple] += count;
  }
  return ViewDigest::Compute(contents) == blob.digest;
}

// Scans `records` into per-view replay state. Corrupt kViewCheckpoint
// payloads (undecodable, or digest-failed) are counted and SKIPPED so the
// previous good checkpoint stays selected -- the "last good checkpoint"
// fallback the scrub repair path and crash recovery both rely on. The
// longer replay suffix that results is correct: checkpoint blobs carry the
// full delta contents, and suffix appends are gated per partition on
// durable cursors, so re-discard logic handles anything mid-flight.
// Corruption of the *incremental* record kinds has no such fallback and
// stays a hard error.
Status ParseViewWalRecords(const std::vector<WalRecord>& records,
                           ViewManager::RecoveryReport* report,
                           PerViewMap* state) {
  std::unordered_map<ViewId, std::string> names;  // current id -> name
  std::unordered_map<TxnId, std::vector<PendingAppend>> pending;

  for (size_t i = 0; i < records.size(); ++i) {
    const WalRecord& rec = records[i];
    switch (rec.kind) {
      case WalRecord::Kind::kCreateView:
        if (rec.blob == nullptr) {
          return Status::Internal("kCreateView record without payload");
        }
        names[rec.view] = *rec.blob;
        break;
      case WalRecord::Kind::kViewDeltaAppend: {
        auto name_it = names.find(rec.view);
        if (name_it == names.end()) {
          return Status::Internal("view-delta append for unknown view id " +
                                  std::to_string(rec.view));
        }
        PendingAppend p;
        p.view_name = name_it->second;
        p.append.idx = i;
        if (rec.blob == nullptr ||
            !DecodeViewDeltaBlob(*rec.blob, &p.append.row, &p.append.step_seq,
                                 &p.append.partition)) {
          return Status::Internal("corrupt view-delta append payload");
        }
        pending[rec.txn].push_back(std::move(p));
        break;
      }
      case WalRecord::Kind::kCommit: {
        auto it = pending.find(rec.txn);
        if (it != pending.end()) {
          for (PendingAppend& p : it->second) {
            PerView& pv = (*state)[p.view_name];
            pv.max_step_seq = std::max(pv.max_step_seq, p.append.step_seq);
            pv.appends.push_back(std::move(p.append));
          }
          pending.erase(it);
        }
        break;
      }
      case WalRecord::Kind::kAbort:
        pending.erase(rec.txn);
        break;
      case WalRecord::Kind::kViewCursor: {
        ReplayedCursor c;
        c.idx = i;
        if (rec.blob == nullptr ||
            !DecodeViewCursorBlob(*rec.blob, &c.blob)) {
          return Status::Internal("corrupt view-cursor payload");
        }
        PerView& pv = (*state)[c.blob.view_name];
        pv.max_step_seq =
            std::max(pv.max_step_seq, c.blob.completed_step_seq);
        pv.cursors.push_back(std::move(c));
        report->cursor_records++;
        break;
      }
      case WalRecord::Kind::kViewApplied: {
        ViewAppliedBlob blob;
        if (rec.blob == nullptr || !DecodeViewAppliedBlob(*rec.blob, &blob)) {
          return Status::Internal("corrupt view-applied payload");
        }
        PerView& pv = (*state)[blob.view_name];
        pv.applied = std::max(pv.applied, blob.applied_csn);
        break;
      }
      case WalRecord::Kind::kViewCheckpoint: {
        report->checkpoints_seen++;
        ViewCheckpointBlob blob;
        if (rec.blob == nullptr ||
            !DecodeViewCheckpointBlob(*rec.blob, &blob) ||
            !CheckpointDigestOk(blob)) {
          // Damaged snapshot: skip it so the previous good checkpoint stays
          // selected. NOT a hard error -- checkpoints are redundant with
          // the suffix that follows the surviving one.
          report->checkpoints_corrupt++;
          break;
        }
        PerView& pv = (*state)[blob.view_name];
        pv.checkpoint = std::move(blob);
        pv.has_checkpoint = true;
        pv.checkpoint_idx = i;
        break;
      }
      default:
        break;  // base-table records: Db::Recover's concern.
                // kViewScrub/kViewQuarantine are audit records: recovery
                // replays state, not scrub history, and a freshly restored
                // (digest-verified) view starts healthy.
    }
  }
  // Entries left in `pending` belong to transactions without a commit
  // record -- the crash's in-flight tail -- and are dropped, exactly as
  // Db::Recover drops their base-table ops.
  return Status::OK();
}

// Restores one live view from its parsed replay state. On success sets
// *recovered; a shape mismatch between the registered definition and the
// logged state clears *recovered (the caller re-Materializes); corrupt
// incremental state is a hard error. The view's delta table is cleared
// before reload so the same machinery serves both crash recovery (empty
// tables) and online repair (populated, possibly damaged tables).
Status RestoreOneView(Db* db, View* view, PerView& pv,
                      ViewManager::RecoveryReport* report, bool* recovered) {
  *recovered = false;
  const ViewCheckpointBlob& cp = pv.checkpoint;
  const size_t n = view->resolved.num_terms();
  if (cp.tfwd.size() != n || cp.tcomp.size() != n) {
    // The registered definition disagrees with the logged state (e.g. the
    // view was re-registered with a different shape). Treat as not
    // recoverable rather than poisoning the whole recovery.
    report->views_unrecovered++;
    return Status::OK();
  }

  // Cursor state: checkpoint baselines, then every durable advance after
  // them, replayed keyed by (view, partition, sequence) -- partitioned
  // strips log independent cursor chains that restart sequence numbering
  // per partition, so a single last-cursor-wins fold across partitions
  // would interleave unrelated chains. Each partition's last completed
  // sequence decides which of its replayed rows are kept: a step's rows
  // are included iff a cursor record of the SAME partition covering the
  // step's sequence number is durable. (A step that failed and was
  // cancelled in-process contributes rows AND their exact negations under
  // the same sequence number, so including or excluding the pair is
  // net-zero either way.)
  struct Chain {
    std::vector<Csn> tfwd;
    std::vector<Csn> tcomp;
    std::vector<std::vector<ForwardStrip>> strips;
    uint64_t last_completed_seq = 0;
  };
  std::map<uint32_t, Chain> chains;
  uint32_t num_partitions = std::max<uint32_t>(cp.num_partitions, 1);
  {
    Chain& c0 = chains[0];
    c0.tfwd = cp.tfwd;
    c0.tcomp = cp.tcomp;
    c0.strips = cp.strips;
    c0.last_completed_seq = cp.next_step_seq - 1;
  }
  bool extras_ok = true;
  for (const PartitionCursorBlob& pcb : cp.extra_partitions) {
    if (pcb.tfwd.size() != n || pcb.tcomp.size() != n) {
      extras_ok = false;
      break;
    }
    Chain& c = chains[pcb.partition];
    c.tfwd = pcb.tfwd;
    c.tcomp = pcb.tcomp;
    c.strips = pcb.strips;
    c.last_completed_seq = pcb.next_step_seq - 1;
  }
  if (!extras_ok) {
    report->views_unrecovered++;
    return Status::OK();
  }
  for (const ReplayedCursor& c : pv.cursors) {
    if (c.idx <= pv.checkpoint_idx) continue;
    if (c.blob.tfwd.size() != n || c.blob.tcomp.size() != n) {
      return Status::Internal("cursor record arity mismatch for view '" +
                              view->name + "'");
    }
    num_partitions = c.blob.num_partitions;
    auto chain_it = chains.find(c.blob.partition);
    if (chain_it != chains.end()) {
      Chain& chain = chain_it->second;
      // Fail loudly on ambiguity instead of silently taking the last
      // record: within one partition's chain the completed sequence
      // number never regresses (TryFinish may legitimately republish the
      // SAME sequence with lifted compensation frontiers), and forward
      // frontiers are monotone.
      if (c.blob.completed_step_seq < chain.last_completed_seq) {
        return Status::Internal(
            "duplicate/ambiguous cursor for view '" + view->name +
            "' partition " + std::to_string(c.blob.partition) +
            ": completed step " +
            std::to_string(c.blob.completed_step_seq) +
            " after durable step " +
            std::to_string(chain.last_completed_seq));
      }
      for (size_t i = 0; i < n; ++i) {
        if (c.blob.tfwd[i] < chain.tfwd[i]) {
          return Status::Internal(
              "cursor frontier regression for view '" + view->name +
              "' partition " + std::to_string(c.blob.partition) +
              " at step " + std::to_string(c.blob.completed_step_seq));
        }
      }
    }
    Chain& chain = chains[c.blob.partition];
    chain.tfwd = c.blob.tfwd;
    chain.tcomp = c.blob.tcomp;
    chain.strips = c.blob.strips;
    chain.last_completed_seq =
        std::max(chain.last_completed_seq, c.blob.completed_step_seq);
  }
  // Partitions of the final generation that never published a durable
  // cursor resume from the checkpoint baseline when it is settled (the
  // only state a partitioned driver may start strips from); their rows,
  // if any, are discarded below, so the baseline start is exact.
  if (num_partitions > 1 && cp.tfwd == cp.tcomp) {
    for (uint32_t p = 0; p < num_partitions; ++p) {
      if (chains.count(p) != 0) continue;
      Chain& c = chains[p];
      c.tfwd = cp.tfwd;
      c.tcomp = cp.tcomp;
      c.last_completed_seq = cp.next_step_seq - 1;
    }
  }

  // Restore the MV and the timed view delta. Online repair restores over
  // a live (damaged) view, so drop the existing delta rows first; after a
  // crash the table is empty and Clear is a no-op.
  CountMap contents;
  contents.reserve(cp.mv_rows.size());
  for (const auto& [tuple, count] : cp.mv_rows) {
    contents.emplace(tuple, count);
  }
  view->mv->Replace(std::move(contents), cp.mv_csn);
  view->view_delta->Clear();
  view->view_delta->AppendBatch(cp.view_delta);
  report->delta_rows_restored += cp.view_delta.size();
  for (ReplayedAppend& a : pv.appends) {
    if (a.idx <= pv.checkpoint_idx) continue;  // inside the snapshot
    auto chain_it = chains.find(a.partition);
    if (chain_it == chains.end() ||
        a.step_seq > chain_it->second.last_completed_seq) {
      // Mid-flight strip at the crash: its cursor advance never became
      // durable, so the strip will re-run from the recovered cursors --
      // dropping its rows here is the StepUndoLog cancellation, replayed.
      // With partitioned strips this is a PER-PARTITION decision: one
      // partition's durable cursor must not vouch for another
      // partition's mid-flight rows.
      report->rows_discarded++;
      continue;
    }
    view->view_delta->Append(std::move(a.row));
    report->delta_rows_restored++;
  }

  view->propagate_from.store(cp.propagate_from, std::memory_order_release);
  // Theorem 4.3 per slice: partition p's slice of the view delta is
  // complete through min_i tcomp[p][i], so the view-level mark is the
  // minimum over the final generation's partitions. A partition with no
  // durable state contributes nothing (the mark then falls back to the
  // checkpointed floors below -- conservative, never overstated).
  Csn min_tcomp = kMaxCsn;
  for (uint32_t p = 0; p < num_partitions; ++p) {
    auto chain_it = chains.find(p);
    if (chain_it == chains.end()) {
      min_tcomp = kNullCsn;
      break;
    }
    for (size_t i = 0; i < n; ++i) {
      min_tcomp = std::min(min_tcomp, chain_it->second.tcomp[i]);
    }
  }
  if (min_tcomp == kMaxCsn) min_tcomp = kNullCsn;
  Csn hwm = std::max({min_tcomp, cp.delta_hwm, cp.mv_csn});
  view->delta_hwm.store(hwm, std::memory_order_release);

  // Roll the MV to the last durable applied mark (not to the high-water
  // mark: when the apply driver runs point-in-time, recovery must not
  // advance the view past where apply had taken it).
  Csn target = std::min(pv.applied, hwm);
  if (target > cp.mv_csn) {
    DeltaRows window =
        view->view_delta->Scan(CsnRange{cp.mv_csn, target});
    ROLLVIEW_RETURN_NOT_OK(view->mv->Merge(window, target));
  }

  // Seed the next propagators: one cursor chain per surviving partition
  // of the final generation. Sequence numbers continue above everything
  // ever logged for this view (any partition) so replayed rows can never
  // collide with rows of a future step.
  const uint64_t next_seq = std::max(cp.next_step_seq, pv.max_step_seq + 1);
  view->ClearCursors();
  for (auto& [p, chain] : chains) {
    if (p >= num_partitions) continue;  // retired generation's strip
    CursorState cursors;
    cursors.tfwd = std::move(chain.tfwd);
    cursors.tcomp = std::move(chain.tcomp);
    cursors.strips = std::move(chain.strips);
    cursors.next_step_seq = next_seq;
    cursors.num_partitions = num_partitions;
    view->StoreCursors(std::move(cursors), p);
  }
  // A freshly restored (digest-verified) view is healthy by construction.
  view->ClearQuarantine();
  // Half-join auxiliary state is volatile and DERIVED -- never part of the
  // checkpoint. Drop whatever survived (online repair restores over a live
  // view) so the first forward query deterministically rebuilds from base
  // snapshots consistent with the recovered frontier.
  if (view->programs != nullptr) view->programs->Reset();
  report->views_recovered++;

  // Recovery checkpoint: shadows the discarded mid-flight rows still
  // present in the re-emitted log, so a second crash does not need to
  // re-discard them (their log positions precede this checkpoint).
  ROLLVIEW_RETURN_NOT_OK(WriteViewCheckpoint(db, view));
  *recovered = true;
  return Status::OK();
}

}  // namespace

Status ViewManager::Recover(const std::vector<WalRecord>& records,
                            RecoveryReport* report) {
  RecoveryReport local_report;
  if (report == nullptr) report = &local_report;
  *report = RecoveryReport{};

  PerViewMap state;
  ROLLVIEW_RETURN_NOT_OK(ParseViewWalRecords(records, report, &state));

  for (View* view : AllViews()) {
    auto it = state.find(view->name);
    if (it == state.end() || !it->second.has_checkpoint) {
      report->views_unrecovered++;
      continue;
    }
    bool recovered = false;
    ROLLVIEW_RETURN_NOT_OK(
        RestoreOneView(db_, view, it->second, report, &recovered));
  }
  return Status::OK();
}

Status ViewManager::RecoverView(View* view,
                                const std::vector<WalRecord>& records,
                                RecoveryReport* report) {
  RecoveryReport local_report;
  if (report == nullptr) report = &local_report;
  *report = RecoveryReport{};

  PerViewMap state;
  ROLLVIEW_RETURN_NOT_OK(ParseViewWalRecords(records, report, &state));

  auto it = state.find(view->name);
  if (it == state.end() || !it->second.has_checkpoint) {
    report->views_unrecovered++;
    return Status::NotFound("no digest-good checkpoint for view '" +
                            view->name + "' in the log");
  }
  bool recovered = false;
  ROLLVIEW_RETURN_NOT_OK(
      RestoreOneView(db_, view, it->second, report, &recovered));
  if (!recovered) {
    return Status::NotFound("logged state for view '" + view->name +
                            "' does not match its registered definition");
  }
  return Status::OK();
}

}  // namespace rollview
