#include "ivm/view_manager.h"

namespace rollview {

Result<View*> ViewManager::CreateView(const std::string& name,
                                      SpjViewDef def) {
  ROLLVIEW_ASSIGN_OR_RETURN(ResolvedView resolved,
                            ResolvedView::Resolve(db_, std::move(def)));
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& v : views_) {
    if (v->name == name) {
      return Status::AlreadyExists("view '" + name + "' exists");
    }
  }
  auto view = std::make_unique<View>();
  view->id = next_id_++;
  view->name = name;
  view->resolved = std::move(resolved);
  view->view_delta = std::make_unique<DeltaTable>(
      "vdelta_" + name, view->resolved.view_schema(), /*ts_sorted=*/false);
  view->mv = std::make_unique<MaterializedView>(view->resolved.view_schema());
  // Named lock resources: keep view locks clear of delta-table resources
  // (which use the base TableId directly).
  view->mv_lock_resource = (1ULL << 20) + view->id;
  views_.push_back(std::move(view));
  return views_.back().get();
}

std::vector<View*> ViewManager::AllViews() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<View*> out;
  out.reserve(views_.size());
  for (const auto& v : views_) out.push_back(v.get());
  return out;
}

View* ViewManager::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& v : views_) {
    if (v->name == name) return v.get();
  }
  return nullptr;
}

Status ViewManager::Materialize(View* view) {
  const ResolvedView& rv = view->resolved;
  std::unique_ptr<Txn> txn = db_->Begin();

  JoinQuery q;
  q.terms.reserve(rv.num_terms());
  for (size_t i = 0; i < rv.num_terms(); ++i) {
    q.terms.push_back(TermSource::BaseCurrent(rv.table(i)));
  }
  q.equi_joins = rv.def().joins;
  q.residual = rv.def().selection;
  q.projection = rv.def().projection;

  JoinExecutor exec(db_);
  Result<DeltaRows> rows = exec.Execute(q, txn.get());
  if (!rows.ok()) {
    db_->Abort(txn.get()).ok();
    return rows.status();
  }
  Status cs = db_->Commit(txn.get());
  if (!cs.ok()) {
    db_->Abort(txn.get()).ok();  // failed commit leaves the txn active
    return cs;
  }
  Csn csn = txn->commit_csn();

  view->mv->Replace(ToCountMap(rows.value()), csn);
  view->propagate_from.store(csn, std::memory_order_release);
  view->delta_hwm.store(csn, std::memory_order_release);
  return Status::OK();
}

}  // namespace rollview
