#include "ivm/view_def.h"

#include <cassert>

namespace rollview {

Result<ResolvedView> ResolvedView::Resolve(Db* db, SpjViewDef def) {
  if (def.tables.empty()) {
    return Status::InvalidArgument("view has no base tables");
  }
  ResolvedView rv;
  rv.offsets_.reserve(def.tables.size());
  rv.widths_.reserve(def.tables.size());
  Schema concat;
  for (TableId id : def.tables) {
    VersionedTable* t = db->table(id);
    if (t == nullptr) {
      return Status::NotFound("view references unknown table " +
                              std::to_string(id));
    }
    rv.offsets_.push_back(concat.num_columns());
    rv.widths_.push_back(t->schema().num_columns());
    concat = concat.Concat(t->schema());
  }
  for (const EquiJoin& j : def.joins) {
    if (j.left_term >= def.tables.size() ||
        j.right_term >= def.tables.size() ||
        j.left_col >= rv.widths_[j.left_term] ||
        j.right_col >= rv.widths_[j.right_term]) {
      return Status::InvalidArgument("join predicate out of range");
    }
  }
  if (def.selection) {
    size_t max_col = def.selection->MaxColumnIndex();
    if (max_col != SIZE_MAX && max_col >= concat.num_columns()) {
      return Status::InvalidArgument("selection references column beyond "
                                     "concatenated tuple");
    }
  }
  for (size_t p : def.projection) {
    if (p >= concat.num_columns()) {
      return Status::InvalidArgument("projection index out of range");
    }
  }
  rv.view_schema_ =
      def.projection.empty() ? concat : concat.Project(def.projection);
  rv.def_ = std::move(def);
  return rv;
}

SpjViewDef ChainJoin(std::vector<TableId> tables,
                     std::vector<std::pair<size_t, size_t>> links) {
  assert(links.size() + 1 == tables.size());
  SpjViewDef def;
  def.tables = std::move(tables);
  for (size_t i = 0; i < links.size(); ++i) {
    def.joins.push_back(EquiJoin{i, links[i].first, i + 1, links[i].second});
  }
  return def;
}

SpjViewDef StarJoin(TableId fact, std::vector<TableId> dims,
                    std::vector<size_t> fact_cols,
                    std::vector<size_t> dim_key_cols) {
  assert(dims.size() == fact_cols.size() &&
         dims.size() == dim_key_cols.size());
  SpjViewDef def;
  def.tables.push_back(fact);
  for (size_t d = 0; d < dims.size(); ++d) {
    def.tables.push_back(dims[d]);
    def.joins.push_back(EquiJoin{0, fact_cols[d], d + 1, dim_key_cols[d]});
  }
  return def;
}

}  // namespace rollview
