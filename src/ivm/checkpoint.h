// Copyright 2026 The rollview Authors.
//
// Durable view-maintenance state: blob payload codecs for the view WAL
// record kinds (storage/wal.h), checkpoint writing, and the CheckpointManager
// cadence driver.
//
// The paper's prototype keeps the view delta, the control tables, and the
// propagation status in ordinary DB2 tables precisely so standard database
// recovery covers asynchronous maintenance (Sec. 5). Our engine's tables are
// recovered from the WAL, so we give maintenance state the same treatment by
// logging it:
//
//   kCreateView       view registered (id -> name binding, in log order)
//   kViewDeltaAppend  one timed view-delta row + its step sequence number;
//                     transactional (emitted by Db::Commit just before the
//                     owning txn's commit record)
//   kViewCursor       a propagation step completed: the step's sequence
//                     number and the full post-step tfwd/tcomp vectors
//   kViewApplied      the apply driver rolled the MV to a CSN
//   kViewCheckpoint   full snapshot: MV contents + CSN, view-delta rows,
//                     hwm, propagate_from, cursor vectors, next step seq
//
// Idempotent resume hinges on the kViewCursor/kViewDeltaAppend pairing: a
// strip's rows are included at recovery iff a cursor record covering the
// strip's step is durable; the cursor record also carries the frontier
// advance, so either BOTH the rows and the frontier advance survive (the
// strip is never re-run) or NEITHER does (the strip re-runs from identical
// cursors and regenerates identical rows). A mid-flight strip at the crash
// is thereby cancelled by omission -- the durable analogue of StepUndoLog.

#ifndef ROLLVIEW_IVM_CHECKPOINT_H_
#define ROLLVIEW_IVM_CHECKPOINT_H_

#include <atomic>
#include <string>
#include <utility>
#include <vector>

#include "common/csn.h"
#include "common/status.h"
#include "ivm/digest.h"
#include "ivm/view.h"
#include "schema/tuple.h"
#include "storage/db.h"

namespace rollview {

// --- Blob payloads -------------------------------------------------------
//
// Every blob leads with the view *name*: view ids restart from 1 in each
// crash generation, so the id field on the record is only trustworthy
// relative to the kCreateView records preceding it in the same log.

struct ViewCursorBlob {
  std::string view_name;
  uint64_t completed_step_seq = 0;
  std::vector<Csn> tfwd;
  std::vector<Csn> tcomp;
  // Rolling deferred mode: the querylists after this step. Frontier-mode
  // steps log n empty lists.
  std::vector<std::vector<ForwardStrip>> strips;
  // Which partition strip this cursor chain belongs to, and how many strips
  // the writer was running. Appended after the legacy fields on the wire;
  // pre-partition records decode as partition 0 of 1. Recovery keys replay
  // by (view, partition, completed_step_seq) -- partitioned drivers restart
  // step sequences per partition.
  uint32_t partition = 0;
  uint32_t num_partitions = 1;
};
std::string EncodeViewCursorBlob(const ViewCursorBlob& b);
bool DecodeViewCursorBlob(const std::string& data, ViewCursorBlob* b);

struct ViewAppliedBlob {
  std::string view_name;
  Csn applied_csn = kNullCsn;
};
std::string EncodeViewAppliedBlob(const ViewAppliedBlob& b);
bool DecodeViewAppliedBlob(const std::string& data, ViewAppliedBlob* b);

// Cursor chain of one non-zero partition inside a checkpoint (partition 0
// rides in the checkpoint's legacy top-level cursor fields).
struct PartitionCursorBlob {
  uint32_t partition = 0;
  std::vector<Csn> tfwd;
  std::vector<Csn> tcomp;
  uint64_t next_step_seq = 1;
  std::vector<std::vector<ForwardStrip>> strips;
};

struct ViewCheckpointBlob {
  std::string view_name;
  // MV contents and materialization time, read atomically.
  Csn mv_csn = kNullCsn;
  std::vector<std::pair<Tuple, int64_t>> mv_rows;
  // The timed view delta (full contents at snapshot time).
  DeltaRows view_delta;
  Csn delta_hwm = kNullCsn;
  Csn propagate_from = kNullCsn;
  // Propagation cursors at snapshot time (partition 0's chain; the only
  // chain in the single-driver case).
  std::vector<Csn> tfwd;
  std::vector<Csn> tcomp;
  uint64_t next_step_seq = 1;
  std::vector<std::vector<ForwardStrip>> strips;
  // Partitioned propagation: the strip count and the cursor chains of
  // partitions >= 1, appended after the legacy fields on the wire.
  // Pre-partition checkpoints decode as num_partitions 1, no extras.
  uint32_t num_partitions = 1;
  std::vector<PartitionCursorBlob> extra_partitions;
  // Content digest of mv_rows at snapshot time, appended after the
  // partition fields on the wire. Recovery recomputes a digest over the
  // decoded rows and rejects the checkpoint on mismatch (falling back to an
  // earlier good one); pre-digest checkpoints decode as has_digest false
  // and are trusted as before. The scrub repair path additionally requires
  // has_digest, so it never rebuilds from an unverifiable snapshot.
  bool has_digest = false;
  ViewDigest digest;
};
std::string EncodeViewCheckpointBlob(const ViewCheckpointBlob& b);
bool DecodeViewCheckpointBlob(const std::string& data, ViewCheckpointBlob* b);

// Audit record of one scrub finding or repair action. Informational:
// recovery replays state, not scrub history, but the durable trail lets an
// operator (and the drill tests) reconstruct what the scrubber saw.
struct ViewScrubBlob {
  std::string view_name;
  // "mismatch" | "digest_reset" | "repaired" | "rebuilt" | "repair_failed"
  std::string outcome;
  uint32_t bucket = 0;       // bucket the finding localized to
  Csn mv_csn = kNullCsn;     // MV materialization time at the check
  std::string detail;        // human-readable specifics
};
std::string EncodeViewScrubBlob(const ViewScrubBlob& b);
bool DecodeViewScrubBlob(const std::string& data, ViewScrubBlob* b);

// Quarantine transition: a view (bucket-localized when known) entered or
// left the quarantined state.
struct ViewQuarantineBlob {
  std::string view_name;
  bool entered = true;  // true = quarantine set, false = cleared
  uint32_t bucket = 0;
  std::string reason;
};
std::string EncodeViewQuarantineBlob(const ViewQuarantineBlob& b);
bool DecodeViewQuarantineBlob(const std::string& data, ViewQuarantineBlob* b);

// --- Record builders -----------------------------------------------------

WalRecord MakeCreateViewRecord(const View& view);
// `partition` tags which strip completed the step; the strip count is taken
// from cursors.num_partitions.
WalRecord MakeViewCursorRecord(const View& view, uint64_t completed_step_seq,
                               const CursorState& cursors,
                               uint32_t partition = 0);
WalRecord MakeViewAppliedRecord(const View& view, Csn applied_csn);
WalRecord MakeViewScrubRecord(const View& view, const ViewScrubBlob& blob);
WalRecord MakeViewQuarantineRecord(const View& view, bool entered,
                                   uint32_t bucket, const std::string& reason);

// Snapshots the view's live state into a kViewCheckpoint record and appends
// it to the WAL. The cursor vectors come from the view's control state
// (View::LoadCursors), falling back to uniform propagate_from vectors for a
// freshly materialized view.
//
// MUST be called from the propagation driver thread, or while propagation
// is quiescent: the view delta is scanned *before* the MV (so a concurrent
// apply+prune cannot open a gap between them), but a concurrent propagation
// commit could slip rows between the delta scan and the record append,
// which would double-count them against the log suffix at recovery.
//
// Runs inside a FaultInjector::Scope: storage faults on the checkpoint
// write path (Wal::MaybeInjectWriteError) surface here as transient errors
// before any state is mutated, and MaybeCorruptCheckpoint may flip one bit
// of the encoded payload (the scrubber's checkpoint-damage drill).
Status WriteViewCheckpoint(Db* db, View* view);

// Builds (without appending) the kViewCheckpoint record WriteViewCheckpoint
// would append, including the corruption drill. Same threading contract.
// The durable-checkpoint image builder embeds fresh view snapshots in the
// published image through this.
Result<WalRecord> BuildViewCheckpointRecord(Db* db, View* view);

// --- Durable WAL checkpointing (file-backed segmented log) ---------------
//
// The segment store (storage/wal_segment.h) retains log suffixes only back
// to the latest durable checkpoint; everything older must be reconstructible
// from the checkpoint image alone. The image is itself a WAL: a synthetic
// record sequence that Db::Recover + ViewManager::Recover replay exactly as
// they would a real log, so recovery has one code path regardless of where
// the records came from.

class ViewManager;

struct DurableCheckpointReport {
  Lsn covered_end_lsn = 0;   // records with lsn < this are covered
  Csn covered_csn = kNullCsn;
  size_t image_records = 0;
  size_t image_bytes = 0;    // encoded image size
};

// Rebuilds a self-contained WAL image equivalent to the engine's committed
// history at `covered_csn`: catalog records in TableId order, then one
// synthetic transaction per commit CSN regenerated from the versioned
// tables' validity intervals (VersionedTable::VisitVersions), then each
// view's kCreateView plus a fresh checkpoint snapshot (materialized views
// only -- unmaterialized ones recover as "unrecovered", same as from a live
// log). Versions born above `covered_csn` are excluded: the retained log
// suffix replays them on top, so including them would double-apply.
//
// MUST run at a quiescent point: no active transactions (version txn fields
// settled, stable CSN final) and maintenance drained or paused (the
// per-view snapshot inherits WriteViewCheckpoint's threading contract).
Result<std::vector<WalRecord>> BuildWalImage(Db* db, ViewManager* views,
                                             Csn covered_csn);

// Publishes a durable checkpoint covering every record appended so far:
// snapshots the coverage boundary (next LSN, stable CSN), builds the image,
// and hands it to the segment store's atomic publish (temp file + fsync +
// rename + directory fsync). After it returns OK, segments entirely below
// the boundary become prunable. Same quiescence contract as BuildWalImage.
// `views` may be null (no view layer; the image then carries tables only).
Result<DurableCheckpointReport> PublishDurableCheckpoint(Db* db,
                                                         ViewManager* views);

// Recovery reattach: opens a segment store on `options.dir` at `generation`
// (which must exceed every generation already in the directory), publishes
// the recovered engine's checkpoint as the commit point of recovery -- the
// publish also deletes all older-generation files -- and starts the
// group-commit flusher. Crashing anywhere before the publish completes
// leaves the previous generation intact, so re-running recovery from the
// same directory is idempotent.
Status AttachDurableWalDir(Db* db, ViewManager* views,
                           const DurableWalOptions& options,
                           uint64_t generation);

// Cadence driver: owns "when to checkpoint". The propagate driver calls
// OnStep() after every successful step; every `every_steps`-th call writes
// a checkpoint (inheriting WriteViewCheckpoint's threading contract).
class CheckpointManager {
 public:
  struct Options {
    // Checkpoint after this many successful propagation steps. 0 disables
    // the cadence entirely (checkpoints then happen only at materialization
    // and recovery).
    uint64_t every_steps = 64;
  };

  CheckpointManager(Db* db, View* view, Options options)
      : db_(db), view_(view), options_(options) {}

  // Called after each successful propagation step; may write a checkpoint.
  Status OnStep();
  // Unconditional checkpoint (also resets the cadence counter).
  Status CheckpointNow();

  // Adjusts the cadence; effective from the next OnStep. The shedding mode
  // stretches it (checkpoints are safety net, not progress) and restores it
  // on recovery. Same threading contract as OnStep.
  void set_every_steps(uint64_t n) { options_.every_steps = n; }
  uint64_t every_steps() const { return options_.every_steps; }

  // Readable from any thread (metrics scrapes race the driver).
  uint64_t checkpoints_written() const {
    return written_.load(std::memory_order_relaxed);
  }

 private:
  Db* db_;
  View* view_;
  Options options_;
  uint64_t steps_since_checkpoint_ = 0;
  std::atomic<uint64_t> written_{0};
};

}  // namespace rollview

#endif  // ROLLVIEW_IVM_CHECKPOINT_H_
