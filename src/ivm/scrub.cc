// Copyright 2026 The rollview Authors.

#include "ivm/scrub.h"

#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "common/fault_injector.h"
#include "ivm/baselines.h"
#include "ivm/checkpoint.h"
#include "ra/net_effect.h"
#include "storage/db.h"
#include "storage/wal.h"

namespace rollview {

const char* ScrubOutcomeName(ScrubOutcome outcome) {
  switch (outcome) {
    case ScrubOutcome::kClean:
      return "clean";
    case ScrubOutcome::kDigestRepaired:
      return "digest_repaired";
    case ScrubOutcome::kRepaired:
      return "repaired";
    case ScrubOutcome::kRebuilt:
      return "rebuilt";
    case ScrubOutcome::kQuarantined:
      return "quarantined";
    case ScrubOutcome::kRepairFailed:
      return "repair_failed";
  }
  return "unknown";
}

namespace {

void SetOutcome(ScrubOutcome* outcome, ScrubOutcome value) {
  if (outcome != nullptr) *outcome = value;
}

}  // namespace

ScrubStats Scrubber::GetStats() const {
  std::lock_guard<std::mutex> g(stats_mu_);
  return stats_;
}

bool Scrubber::SampledBucketsOk(const ViewDigest& recomputed,
                                const ViewDigest& incremental,
                                uint32_t* bad_bucket) {
  uint32_t n = options_.deep_check == DeepCheckMode::kAlways
                   ? ViewDigest::kBuckets
                   : options_.buckets_per_pass;
  if (n > ViewDigest::kBuckets) n = ViewDigest::kBuckets;
  bool ok = true;
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t b = (bucket_cursor_ + i) % ViewDigest::kBuckets;
    if (ok && !(recomputed.bucket(b) == incremental.bucket(b))) {
      *bad_bucket = b;
      ok = false;
    }
  }
  bucket_cursor_ = (bucket_cursor_ + n) % ViewDigest::kBuckets;
  {
    std::lock_guard<std::mutex> g(stats_mu_);
    stats_.buckets_checked += n;
  }
  return ok;
}

bool Scrubber::RunDeepCheck(Csn mv_csn, ViewDigest* oracle_digest) {
  {
    std::lock_guard<std::mutex> g(stats_mu_);
    stats_.deep_checks++;
  }
  Result<DeltaRows> truth =
      SnapshotViewState(views_->db(), view_->resolved, mv_csn);
  // Oracle unavailable (e.g. base versions below mv_csn were GC'd): the
  // caller falls back to the conservative path.
  if (!truth.ok()) return false;
  *oracle_digest = ViewDigest::Compute(ToCountMap(truth.value()));
  return true;
}

Status Scrubber::Pass(ScrubOutcome* outcome) {
  // Scrub transactions opt into scoped fault injection alongside the
  // propagate/apply drivers -- the scrubber must survive the same injected
  // storage faults it is asked to diagnose the aftermath of.
  FaultInjector::Scope fault_scope;
  SetOutcome(outcome, ScrubOutcome::kClean);

  // A view quarantined by an earlier pass (repair deferred or failed) skips
  // detection: the diagnosis stands until a repair verifies.
  if (view_->quarantined()) {
    if (!options_.repair) {
      SetOutcome(outcome, ScrubOutcome::kQuarantined);
      return Status::OK();
    }
    return Repair(outcome);
  }

  // Recompute the digest in place + copy the incremental digest at one
  // instant, serialized against apply through the view's lock resource (S:
  // concurrent readers fine, the apply driver's X excluded). One scan of
  // the stored rows, no O(n) contents copy -- the clean-pass hot path.
  Csn mv_csn = kNullCsn;
  ViewDigest recomputed;
  ViewDigest incremental;
  {
    std::unique_ptr<Txn> txn = views_->db()->Begin(TxnClass::kMaintenance);
    Status s =
        views_->db()->LockNamedShared(txn.get(), view_->mv_lock_resource);
    if (!s.ok()) {
      views_->db()->Abort(txn.get()).ok();
      return s;  // transient (lock timeout / deadlock victim): retry later
    }
    view_->mv->ScrubSnapshot(&recomputed, &incremental, &mv_csn);
    s = views_->db()->Commit(txn.get());
    if (!s.ok()) {
      views_->db()->Abort(txn.get()).ok();
      return s;
    }
  }
  {
    std::lock_guard<std::mutex> g(stats_mu_);
    stats_.passes++;
  }

  uint32_t bad_bucket = 0;
  if (SampledBucketsOk(recomputed, incremental, &bad_bucket)) {
    if (options_.deep_check != DeepCheckMode::kAlways) return Status::OK();
    // Paranoid mode: contents agree with the incremental digest, but both
    // could in principle drift together -- cross-check against the oracle.
    ViewDigest oracle;
    if (!RunDeepCheck(mv_csn, &oracle) || oracle == recomputed) {
      return Status::OK();
    }
    for (uint32_t b = 0; b < ViewDigest::kBuckets; ++b) {
      if (!(oracle.bucket(b) == recomputed.bucket(b))) {
        bad_bucket = b;
        break;
      }
    }
    {
      std::lock_guard<std::mutex> g(stats_mu_);
      stats_.mismatches++;
    }
    ViewScrubBlob blob;
    blob.view_name = view_->name;
    blob.outcome = "mismatch";
    blob.bucket = bad_bucket;
    blob.mv_csn = mv_csn;
    blob.detail = "oracle disagrees with stored contents";
    views_->db()->wal()->Append(MakeViewScrubRecord(*view_, blob));
    return QuarantineAndRepair(bad_bucket, blob.detail, outcome);
  }

  // Sampled mismatch: the incremental digest disagrees with a recompute
  // from the stored rows. One of the two is damaged; adjudicate with the
  // Def. 4.2 oracle when allowed.
  {
    std::lock_guard<std::mutex> g(stats_mu_);
    stats_.mismatches++;
  }
  {
    ViewScrubBlob blob;
    blob.view_name = view_->name;
    blob.outcome = "mismatch";
    blob.bucket = bad_bucket;
    blob.mv_csn = mv_csn;
    blob.detail = "incremental digest disagrees with contents recompute";
    views_->db()->wal()->Append(MakeViewScrubRecord(*view_, blob));
  }

  ViewDigest oracle;
  bool oracle_ran = options_.deep_check != DeepCheckMode::kNever &&
                    RunDeepCheck(mv_csn, &oracle);
  if (oracle_ran && oracle == recomputed) {
    // The oracle vouches for the stored contents (full-digest compare: a
    // damaged row can re-key into a different bucket than the sampled
    // one), so only the incremental digest was damaged. Rebuild it in
    // place -- no quarantine, readers never saw bad rows.
    view_->mv->ResetDigest();
    {
      std::lock_guard<std::mutex> g(stats_mu_);
      stats_.digest_resets++;
    }
    ViewScrubBlob blob;
    blob.view_name = view_->name;
    blob.outcome = "digest_reset";
    blob.bucket = bad_bucket;
    blob.mv_csn = mv_csn;
    blob.detail = "oracle vouches for contents; digest rebuilt in place";
    views_->db()->wal()->Append(MakeViewScrubRecord(*view_, blob));
    SetOutcome(outcome, ScrubOutcome::kDigestRepaired);
    return Status::OK();
  }

  // Oracle says the contents are wrong, or the oracle could not run and we
  // must assume the worst: content damage.
  return QuarantineAndRepair(
      bad_bucket,
      oracle_ran ? "oracle disagrees with stored contents"
                 : "digest mismatch, oracle unavailable; assuming content "
                   "damage",
      outcome);
}

Status Scrubber::QuarantineAndRepair(uint32_t bucket,
                                     const std::string& reason,
                                     ScrubOutcome* outcome) {
  view_->Quarantine(bucket, reason);
  {
    std::lock_guard<std::mutex> g(stats_mu_);
    stats_.quarantines++;
  }
  views_->db()->wal()->Append(
      MakeViewQuarantineRecord(*view_, /*entered=*/true, bucket, reason));
  if (!options_.repair) {
    SetOutcome(outcome, ScrubOutcome::kQuarantined);
    return Status::OK();
  }
  return Repair(outcome);
}

bool Scrubber::VerifyRepaired() {
  Csn mv_csn = kNullCsn;
  ViewDigest recomputed;
  ViewDigest incremental;
  // Caller (Repair) holds X on mv_lock_resource; the snapshot is stable.
  view_->mv->ScrubSnapshot(&recomputed, &incremental, &mv_csn);
  if (!(recomputed == incremental)) return false;
  if (options_.deep_check == DeepCheckMode::kNever) return true;
  ViewDigest oracle;
  // Oracle unavailable post-repair (versions GC'd): digest consistency is
  // the best verification we can do -- accept.
  if (!RunDeepCheck(mv_csn, &oracle)) return true;
  return oracle == recomputed;
}

Status Scrubber::Repair(ScrubOutcome* outcome) {
  FaultInjector::Scope fault_scope;

  // X on the view resource excludes the apply driver and (fail-fast)
  // readers for the duration; OLTP-first victim selection applies, so a
  // repair never kills foreground transactions.
  std::unique_ptr<Txn> txn = views_->db()->Begin(TxnClass::kMaintenance);
  Status s =
      views_->db()->LockNamedExclusive(txn.get(), view_->mv_lock_resource);
  if (!s.ok()) {
    views_->db()->Abort(txn.get()).ok();
    return s;
  }

  // RecoverView clears the quarantine as part of its restore (a freshly
  // recovered view is healthy by construction in the crash path), but the
  // scrubber's contract is stricter: the diagnosis stands until THIS
  // repair's own verification passes. Capture it so a transiently-failed
  // replay can re-assert it instead of leaving a half-repaired view
  // marked healthy.
  const std::pair<uint32_t, std::string> diagnosis = view_->quarantine_info();

  // Replay last digest-good checkpoint + WAL suffix onto the live view --
  // crash recovery's machinery pointed at a running view. Legal at any
  // step boundary: durable cursor/applied state equals live state between
  // steps, so Def. 4.2's sub-interval property lands the replayed roll on
  // the live frontier.
  std::vector<WalRecord> records;
  views_->db()->wal()->ReadFrom(0, std::numeric_limits<size_t>::max(),
                                &records);
  ViewManager::RecoveryReport report;
  Status replay = views_->RecoverView(view_, records, &report);

  bool verified = false;
  bool rebuilt = false;
  if (replay.ok()) {
    verified = VerifyRepaired();
  } else if (!replay.IsNotFound()) {
    // Transient failure inside the replay (injected WAL/checkpoint write
    // fault, lock conflict): keep the quarantine -- re-asserting it if the
    // partial restore already cleared it -- and let the supervisor retry
    // the whole repair.
    if (!view_->quarantined()) {
      view_->Quarantine(diagnosis.first, diagnosis.second);
    }
    views_->db()->Abort(txn.get()).ok();
    return replay;
  }

  if (!verified) {
    // No digest-good checkpoint in the log, or the replayed state still
    // fails verification (the checkpoint itself was the damaged artifact):
    // escalate to a full recomputation from base tables.
    Status full = views_->Materialize(view_);
    if (!full.ok()) {
      if (!view_->quarantined()) {
        view_->Quarantine(diagnosis.first, diagnosis.second);
      }
      views_->db()->Abort(txn.get()).ok();
      return full;
    }
    rebuilt = true;
    verified = VerifyRepaired();
  }

  if (!verified) {
    if (!view_->quarantined()) {
      view_->Quarantine(diagnosis.first, diagnosis.second);
    }
    {
      std::lock_guard<std::mutex> g(stats_mu_);
      stats_.repair_failures++;
    }
    ViewScrubBlob blob;
    blob.view_name = view_->name;
    blob.outcome = "repair_failed";
    blob.mv_csn = view_->mv->csn();
    blob.detail = "post-repair verification failed; view stays quarantined";
    views_->db()->wal()->Append(MakeViewScrubRecord(*view_, blob));
    SetOutcome(outcome, ScrubOutcome::kRepairFailed);
    views_->db()->Abort(txn.get()).ok();
    // Busy is transient: the supervised caller retries the repair on the
    // next scrub tick instead of killing the driver.
    return Status::Busy("scrub repair of view '" + view_->name +
                        "' failed post-repair verification");
  }

  view_->ClearQuarantine();
  {
    std::lock_guard<std::mutex> g(stats_mu_);
    if (rebuilt) {
      stats_.rebuilds++;
    } else {
      stats_.repairs++;
    }
  }
  views_->db()->wal()->Append(MakeViewQuarantineRecord(
      *view_, /*entered=*/false, 0, rebuilt ? "rebuilt" : "repaired"));
  {
    ViewScrubBlob blob;
    blob.view_name = view_->name;
    blob.outcome = rebuilt ? "rebuilt" : "repaired";
    blob.mv_csn = view_->mv->csn();
    blob.detail = rebuilt ? "full recomputation from base tables"
                          : "checkpoint + WAL-suffix replay";
    views_->db()->wal()->Append(MakeViewScrubRecord(*view_, blob));
  }
  SetOutcome(outcome, rebuilt ? ScrubOutcome::kRebuilt
                              : ScrubOutcome::kRepaired);

  s = views_->db()->Commit(txn.get());
  if (!s.ok()) {
    // The txn carried locks only; a failed commit still releases them via
    // abort and does not un-repair anything.
    views_->db()->Abort(txn.get()).ok();
  }
  return Status::OK();
}

}  // namespace rollview
