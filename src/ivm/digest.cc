#include "ivm/digest.h"

namespace rollview {

namespace {

// splitmix64 finalizer: decorrelates the raw tuple hash so adjacent hashes
// spread across the full 64-bit lane, and a second independently-seeded lane
// makes coincidental collisions across both lanes (plus the row tally)
// vanishingly unlikely.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t Mix1(uint64_t h) { return Mix(h); }
uint64_t Mix2(uint64_t h) { return Mix(h ^ 0xa5a5a5a5a5a5a5a5ull); }

char HexDigit(uint64_t v) {
  return static_cast<char>(v < 10 ? '0' + v : 'a' + (v - 10));
}

void AppendHex(std::string* out, uint64_t v) {
  for (int shift = 60; shift >= 0; shift -= 4) {
    out->push_back(HexDigit((v >> shift) & 0xf));
  }
}

}  // namespace

uint32_t ViewDigest::BucketOf(const Tuple& tuple) {
  return static_cast<uint32_t>(HashTuple(tuple) % kBuckets);
}

void ViewDigest::Update(const Tuple& tuple, int64_t old_count,
                        int64_t new_count) {
  if (old_count == new_count) return;
  const uint64_t h = HashTuple(tuple);
  const uint64_t delta =
      static_cast<uint64_t>(new_count) - static_cast<uint64_t>(old_count);
  Bucket& b = buckets_[h % kBuckets];
  b.sum += Mix1(h) * delta;
  b.alt += Mix2(h) * delta;
  b.rows += new_count - old_count;
}

ViewDigest ViewDigest::Compute(const CountMap& contents) {
  ViewDigest d;
  for (const auto& [tuple, count] : contents) {
    d.Update(tuple, 0, count);
  }
  return d;
}

ViewDigest::Bucket ViewDigest::ComputeBucket(const CountMap& contents,
                                             uint32_t b) {
  b %= kBuckets;
  Bucket out;
  for (const auto& [tuple, count] : contents) {
    const uint64_t h = HashTuple(tuple);
    if (h % kBuckets != b) continue;
    const uint64_t c = static_cast<uint64_t>(count);
    out.sum += Mix1(h) * c;
    out.alt += Mix2(h) * c;
    out.rows += count;
  }
  return out;
}

int64_t ViewDigest::total_rows() const {
  int64_t n = 0;
  for (const Bucket& b : buckets_) n += b.rows;
  return n;
}

void ViewDigest::FlipBitForTest(uint64_t seed) {
  Bucket& b = buckets_[seed % kBuckets];
  b.sum ^= 1ull << ((seed / kBuckets) % 64);
}

std::string ViewDigest::ToString() const {
  std::string out;
  for (uint32_t i = 0; i < kBuckets; ++i) {
    const Bucket& b = buckets_[i];
    if (b.sum == 0 && b.alt == 0 && b.rows == 0) continue;
    if (!out.empty()) out.push_back(' ');
    out += "b" + std::to_string(i) + ":";
    AppendHex(&out, b.sum);
    out.push_back('/');
    AppendHex(&out, b.alt);
    out += "/" + std::to_string(b.rows);
  }
  return out.empty() ? "empty" : out;
}

}  // namespace rollview
