// Copyright 2026 The rollview Authors.
//
// SharedViewGroup: one propagation stream feeding many views.
//
// The paper motivates asynchrony partly by scale: "as the number of views
// to be maintained increases, this problem becomes worse" (Sec. 1). When
// several views share the same join (same base tables, same join
// predicates) and differ only in selection and projection -- the common
// dashboard pattern -- propagating each independently repeats identical
// join work k times. A SharedViewGroup instead maintains one *carrier*
// view (the unprojected, unfiltered join) with any rolling propagator, and
// derives every member's timestamped view delta by filtering and
// projecting the carrier's delta rows -- pure in-memory post-processing,
// no additional propagation queries.
//
// Members remain ordinary Views: each has its own view delta, its own
// high-water mark (advanced in lockstep with the carrier), and its own
// apply schedule -- point-in-time refresh per member is unchanged.

#ifndef ROLLVIEW_IVM_SHARED_PROPAGATE_H_
#define ROLLVIEW_IVM_SHARED_PROPAGATE_H_

#include <memory>
#include <string>
#include <vector>

#include "ivm/rolling.h"

namespace rollview {

class SharedViewGroup {
 public:
  struct Options {
    // Drop carrier delta rows once distributed to the members. Keeps each
    // Distribute pass proportional to the *new* rows (the carrier's delta
    // is unsorted, so scans are linear) -- without this the group's driver
    // degrades quadratically and falls behind, which under frontier
    // compensation snowballs into large propagation transactions. Disable
    // only if the carrier itself will be rolled with an Applier.
    bool prune_carrier_delta = true;
  };

  // `carrier_def` must have no selection and no projection (the carrier
  // must subsume every member).
  static Result<std::unique_ptr<SharedViewGroup>> Create(
      ViewManager* views, const std::string& name, SpjViewDef carrier_def) {
    return Create(views, name, std::move(carrier_def), Options{});
  }
  static Result<std::unique_ptr<SharedViewGroup>> Create(
      ViewManager* views, const std::string& name, SpjViewDef carrier_def,
      Options options);

  // Registers a member view. Its tables and join predicates must equal the
  // carrier's; selection/projection are free. Must be called before
  // MaterializeAll.
  Result<View*> AddMember(const std::string& name, SpjViewDef def);

  // Materializes the carrier with one transaction and installs every
  // member's extent (filter + project of the carrier rows) at the same CSN.
  Status MaterializeAll();

  // One rolling step on the carrier; newly settled carrier delta rows are
  // distributed to the members and every high-water mark advances together.
  Result<bool> Step();
  Status RunUntil(Csn target);

  View* carrier() const { return carrier_; }
  const std::vector<View*>& members() const { return members_; }
  Csn high_water_mark() const { return distributed_to_; }
  RollingPropagator* propagator() { return propagator_.get(); }

  struct Stats {
    uint64_t carrier_rows_distributed = 0;
    uint64_t member_rows_emitted = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  SharedViewGroup(ViewManager* views, View* carrier)
      : views_(views), carrier_(carrier) {}

  // Applies a member's selection/projection to carrier rows.
  DeltaRows DeriveMemberRows(const View* member,
                             const DeltaRows& carrier_rows) const;
  Status Distribute(Csn up_to);

  ViewManager* views_;
  View* carrier_;
  Options options_;
  std::vector<View*> members_;
  std::unique_ptr<RollingPropagator> propagator_;
  Csn distributed_to_ = kNullCsn;
  Stats stats_;
};

}  // namespace rollview

#endif  // ROLLVIEW_IVM_SHARED_PROPAGATE_H_
