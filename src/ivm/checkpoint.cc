#include "ivm/checkpoint.h"

#include <algorithm>
#include <map>
#include <optional>

#include "capture/uow_table.h"
#include "ivm/view_manager.h"
#include "storage/versioned_table.h"
#include "storage/wal_codec.h"
#include "storage/wal_segment.h"

namespace rollview {

using namespace wal_io;

namespace {

void PutCsnVector(std::string* out, const std::vector<Csn>& v) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  for (Csn c : v) PutU64(out, c);
}

bool GetCsnVector(const std::string& data, size_t* pos, std::vector<Csn>* v) {
  uint32_t n = 0;
  if (!GetU32(data, pos, &n)) return false;
  v->clear();
  v->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Csn c = 0;
    if (!GetU64(data, pos, &c)) return false;
    v->push_back(c);
  }
  return true;
}

void PutStrips(std::string* out,
               const std::vector<std::vector<ForwardStrip>>& strips) {
  PutU32(out, static_cast<uint32_t>(strips.size()));
  for (const auto& list : strips) {
    PutU32(out, static_cast<uint32_t>(list.size()));
    for (const ForwardStrip& s : list) {
      PutU64(out, s.lo);
      PutU64(out, s.hi);
      PutU64(out, s.exec);
    }
  }
}

bool GetStrips(const std::string& data, size_t* pos,
               std::vector<std::vector<ForwardStrip>>* strips) {
  uint32_t n = 0;
  if (!GetU32(data, pos, &n)) return false;
  strips->clear();
  strips->resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t m = 0;
    if (!GetU32(data, pos, &m)) return false;
    (*strips)[i].resize(m);
    for (uint32_t j = 0; j < m; ++j) {
      ForwardStrip& s = (*strips)[i][j];
      if (!GetU64(data, pos, &s.lo)) return false;
      if (!GetU64(data, pos, &s.hi)) return false;
      if (!GetU64(data, pos, &s.exec)) return false;
    }
  }
  return true;
}

WalRecord MakeViewRecord(WalRecord::Kind kind, ViewId id, std::string blob) {
  WalRecord rec;
  rec.kind = kind;
  rec.view = id;
  rec.blob = std::make_shared<std::string>(std::move(blob));
  return rec;
}

void PutDigest(std::string* out, const ViewDigest& d) {
  PutU32(out, ViewDigest::kBuckets);
  for (uint32_t i = 0; i < ViewDigest::kBuckets; ++i) {
    const ViewDigest::Bucket& b = d.bucket(i);
    PutU64(out, b.sum);
    PutU64(out, b.alt);
    PutI64(out, b.rows);
  }
}

bool GetDigest(const std::string& data, size_t* pos, ViewDigest* d) {
  uint32_t n = 0;
  if (!GetU32(data, pos, &n)) return false;
  if (n != ViewDigest::kBuckets) return false;  // bucket count is fixed
  d->Clear();
  for (uint32_t i = 0; i < n; ++i) {
    ViewDigest::Bucket& b = d->mutable_bucket(i);
    if (!GetU64(data, pos, &b.sum)) return false;
    if (!GetU64(data, pos, &b.alt)) return false;
    if (!GetI64(data, pos, &b.rows)) return false;
  }
  return true;
}

}  // namespace

std::string EncodeViewCursorBlob(const ViewCursorBlob& b) {
  std::string out;
  PutString(&out, b.view_name);
  PutU64(&out, b.completed_step_seq);
  PutCsnVector(&out, b.tfwd);
  PutCsnVector(&out, b.tcomp);
  PutStrips(&out, b.strips);
  PutU32(&out, b.partition);
  PutU32(&out, b.num_partitions);
  return out;
}

bool DecodeViewCursorBlob(const std::string& data, ViewCursorBlob* b) {
  size_t pos = 0;
  if (!GetString(data, &pos, &b->view_name)) return false;
  if (!GetU64(data, &pos, &b->completed_step_seq)) return false;
  if (!GetCsnVector(data, &pos, &b->tfwd)) return false;
  if (!GetCsnVector(data, &pos, &b->tcomp)) return false;
  if (!GetStrips(data, &pos, &b->strips)) return false;
  b->partition = 0;
  b->num_partitions = 1;
  if (pos == data.size()) return true;  // pre-partition framing
  if (!GetU32(data, &pos, &b->partition)) return false;
  if (!GetU32(data, &pos, &b->num_partitions)) return false;
  return pos == data.size();
}

std::string EncodeViewAppliedBlob(const ViewAppliedBlob& b) {
  std::string out;
  PutString(&out, b.view_name);
  PutU64(&out, b.applied_csn);
  return out;
}

bool DecodeViewAppliedBlob(const std::string& data, ViewAppliedBlob* b) {
  size_t pos = 0;
  if (!GetString(data, &pos, &b->view_name)) return false;
  if (!GetU64(data, &pos, &b->applied_csn)) return false;
  return pos == data.size();
}

std::string EncodeViewCheckpointBlob(const ViewCheckpointBlob& b) {
  std::string out;
  PutString(&out, b.view_name);
  PutU64(&out, b.mv_csn);
  PutU32(&out, static_cast<uint32_t>(b.mv_rows.size()));
  for (const auto& [tuple, count] : b.mv_rows) {
    PutTuple(&out, tuple);
    PutI64(&out, count);
  }
  PutU32(&out, static_cast<uint32_t>(b.view_delta.size()));
  for (const DeltaRow& row : b.view_delta) PutDeltaRow(&out, row);
  PutU64(&out, b.delta_hwm);
  PutU64(&out, b.propagate_from);
  PutCsnVector(&out, b.tfwd);
  PutCsnVector(&out, b.tcomp);
  PutU64(&out, b.next_step_seq);
  PutStrips(&out, b.strips);
  PutU32(&out, b.num_partitions);
  PutU32(&out, static_cast<uint32_t>(b.extra_partitions.size()));
  for (const PartitionCursorBlob& p : b.extra_partitions) {
    PutU32(&out, p.partition);
    PutCsnVector(&out, p.tfwd);
    PutCsnVector(&out, p.tcomp);
    PutU64(&out, p.next_step_seq);
    PutStrips(&out, p.strips);
  }
  if (b.has_digest) {
    PutDigest(&out, b.digest);
    // Whole-payload checksum (covers everything above, digest included):
    // the record-level CRC in the WAL framing is computed over the blob
    // *after* any injected corruption, so the blob needs its own integrity
    // check for recovery to reject a damaged checkpoint.
    PutU32(&out, Crc32(out.data(), out.size()));
  }
  return out;
}

bool DecodeViewCheckpointBlob(const std::string& data, ViewCheckpointBlob* b) {
  size_t pos = 0;
  if (!GetString(data, &pos, &b->view_name)) return false;
  if (!GetU64(data, &pos, &b->mv_csn)) return false;
  uint32_t n = 0;
  if (!GetU32(data, &pos, &n)) return false;
  b->mv_rows.clear();
  b->mv_rows.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Tuple tuple;
    int64_t count = 0;
    if (!GetTuple(data, &pos, &tuple)) return false;
    if (!GetI64(data, &pos, &count)) return false;
    b->mv_rows.emplace_back(std::move(tuple), count);
  }
  if (!GetU32(data, &pos, &n)) return false;
  b->view_delta.clear();
  b->view_delta.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    DeltaRow row;
    if (!GetDeltaRow(data, &pos, &row)) return false;
    b->view_delta.push_back(std::move(row));
  }
  if (!GetU64(data, &pos, &b->delta_hwm)) return false;
  if (!GetU64(data, &pos, &b->propagate_from)) return false;
  if (!GetCsnVector(data, &pos, &b->tfwd)) return false;
  if (!GetCsnVector(data, &pos, &b->tcomp)) return false;
  if (!GetU64(data, &pos, &b->next_step_seq)) return false;
  if (!GetStrips(data, &pos, &b->strips)) return false;
  b->num_partitions = 1;
  b->extra_partitions.clear();
  b->has_digest = false;
  b->digest.Clear();
  if (pos == data.size()) return true;  // pre-partition framing
  if (!GetU32(data, &pos, &b->num_partitions)) return false;
  uint32_t extras = 0;
  if (!GetU32(data, &pos, &extras)) return false;
  b->extra_partitions.resize(extras);
  for (uint32_t i = 0; i < extras; ++i) {
    PartitionCursorBlob& p = b->extra_partitions[i];
    if (!GetU32(data, &pos, &p.partition)) return false;
    if (!GetCsnVector(data, &pos, &p.tfwd)) return false;
    if (!GetCsnVector(data, &pos, &p.tcomp)) return false;
    if (!GetU64(data, &pos, &p.next_step_seq)) return false;
    if (!GetStrips(data, &pos, &p.strips)) return false;
  }
  if (pos == data.size()) return true;  // pre-digest framing
  if (!GetDigest(data, &pos, &b->digest)) return false;
  const size_t crc_pos = pos;
  uint32_t stored_crc = 0;
  if (!GetU32(data, &pos, &stored_crc)) return false;
  if (Crc32(data.data(), crc_pos) != stored_crc) return false;
  b->has_digest = true;
  return pos == data.size();
}

std::string EncodeViewScrubBlob(const ViewScrubBlob& b) {
  std::string out;
  PutString(&out, b.view_name);
  PutString(&out, b.outcome);
  PutU32(&out, b.bucket);
  PutU64(&out, b.mv_csn);
  PutString(&out, b.detail);
  return out;
}

bool DecodeViewScrubBlob(const std::string& data, ViewScrubBlob* b) {
  size_t pos = 0;
  if (!GetString(data, &pos, &b->view_name)) return false;
  if (!GetString(data, &pos, &b->outcome)) return false;
  if (!GetU32(data, &pos, &b->bucket)) return false;
  if (!GetU64(data, &pos, &b->mv_csn)) return false;
  if (!GetString(data, &pos, &b->detail)) return false;
  return pos == data.size();
}

std::string EncodeViewQuarantineBlob(const ViewQuarantineBlob& b) {
  std::string out;
  PutString(&out, b.view_name);
  PutU32(&out, b.entered ? 1 : 0);
  PutU32(&out, b.bucket);
  PutString(&out, b.reason);
  return out;
}

bool DecodeViewQuarantineBlob(const std::string& data, ViewQuarantineBlob* b) {
  size_t pos = 0;
  uint32_t entered = 0;
  if (!GetString(data, &pos, &b->view_name)) return false;
  if (!GetU32(data, &pos, &entered)) return false;
  b->entered = entered != 0;
  if (!GetU32(data, &pos, &b->bucket)) return false;
  if (!GetString(data, &pos, &b->reason)) return false;
  return pos == data.size();
}

WalRecord MakeCreateViewRecord(const View& view) {
  return MakeViewRecord(WalRecord::Kind::kCreateView, view.id, view.name);
}

WalRecord MakeViewCursorRecord(const View& view, uint64_t completed_step_seq,
                               const CursorState& cursors,
                               uint32_t partition) {
  ViewCursorBlob blob;
  blob.view_name = view.name;
  blob.completed_step_seq = completed_step_seq;
  blob.tfwd = cursors.tfwd;
  blob.tcomp = cursors.tcomp;
  blob.strips = cursors.strips;
  blob.partition = partition;
  blob.num_partitions = cursors.num_partitions;
  return MakeViewRecord(WalRecord::Kind::kViewCursor, view.id,
                        EncodeViewCursorBlob(blob));
}

WalRecord MakeViewAppliedRecord(const View& view, Csn applied_csn) {
  ViewAppliedBlob blob;
  blob.view_name = view.name;
  blob.applied_csn = applied_csn;
  return MakeViewRecord(WalRecord::Kind::kViewApplied, view.id,
                        EncodeViewAppliedBlob(blob));
}

WalRecord MakeViewScrubRecord(const View& view, const ViewScrubBlob& blob) {
  return MakeViewRecord(WalRecord::Kind::kViewScrub, view.id,
                        EncodeViewScrubBlob(blob));
}

WalRecord MakeViewQuarantineRecord(const View& view, bool entered,
                                   uint32_t bucket,
                                   const std::string& reason) {
  ViewQuarantineBlob blob;
  blob.view_name = view.name;
  blob.entered = entered;
  blob.bucket = bucket;
  blob.reason = reason;
  return MakeViewRecord(WalRecord::Kind::kViewQuarantine, view.id,
                        EncodeViewQuarantineBlob(blob));
}

Status WriteViewCheckpoint(Db* db, View* view) {
  // Checkpoint writes are maintenance work: run them inside an injection
  // scope so storage-fault drills hit this path, and fail *before* encoding
  // so a surfaced fault leaves nothing half-written.
  FaultInjector::Scope fault_scope;
  ROLLVIEW_RETURN_NOT_OK(db->wal()->MaybeInjectWriteError());
  ROLLVIEW_ASSIGN_OR_RETURN(WalRecord rec, BuildViewCheckpointRecord(db, view));
  db->wal()->Append(std::move(rec));
  return Status::OK();
}

Result<WalRecord> BuildViewCheckpointRecord(Db* db, View* view) {
  ViewCheckpointBlob blob;
  blob.view_name = view->name;
  // Order matters against a concurrent apply driver: scan the view delta
  // BEFORE snapshotting the MV. If an apply rolls and prunes in between,
  // the delta snapshot merely carries rows the (newer) MV CSN already
  // covers -- harmless, since recovery only ever selects windows starting
  // above the restored MV CSN. The reverse order could lose the pruned
  // window entirely.
  blob.view_delta = view->view_delta->ScanAll();
  CountMap contents;
  view->mv->SnapshotWithDigest(&contents, &blob.mv_csn, &blob.digest);
  blob.has_digest = true;
  blob.mv_rows.assign(contents.begin(), contents.end());
  blob.delta_hwm = view->high_water_mark();
  blob.propagate_from = view->propagate_from.load(std::memory_order_acquire);
  std::map<uint32_t, CursorState> all = view->LoadAllCursors();
  auto p0 = all.find(0);
  if (p0 != all.end() && p0->second.valid) {
    CursorState& cursors = p0->second;
    blob.tfwd = std::move(cursors.tfwd);
    blob.tcomp = std::move(cursors.tcomp);
    blob.next_step_seq = cursors.next_step_seq;
    blob.strips = std::move(cursors.strips);
    blob.num_partitions = cursors.num_partitions;
  } else {
    // Freshly materialized: propagation starts everywhere at once.
    size_t n = view->resolved.num_terms();
    blob.tfwd.assign(n, blob.propagate_from);
    blob.tcomp.assign(n, blob.propagate_from);
    blob.next_step_seq = 1;
  }
  for (auto& [partition, cursors] : all) {
    if (partition == 0 || !cursors.valid) continue;
    PartitionCursorBlob p;
    p.partition = partition;
    p.tfwd = std::move(cursors.tfwd);
    p.tcomp = std::move(cursors.tcomp);
    p.next_step_seq = cursors.next_step_seq;
    p.strips = std::move(cursors.strips);
    blob.extra_partitions.push_back(std::move(p));
    blob.num_partitions =
        std::max(blob.num_partitions, cursors.num_partitions);
  }
  std::string encoded = EncodeViewCheckpointBlob(blob);
  // Corruption drill: flip one bit of the encoded payload after the CRC-free
  // blob is built, exactly like a torn sector under the record framing. The
  // decoder either fails outright or the recomputed row digest disagrees
  // with the stored one; recovery counts the checkpoint corrupt and falls
  // back to the previous good snapshot.
  if (FaultInjector* fi = db->fault_injector()) {
    uint64_t seed = 0;
    if (fi->MaybeCorruptCheckpoint(&seed) && !encoded.empty()) {
      encoded[seed % encoded.size()] ^=
          static_cast<char>(1u << ((seed / 13) % 8));
    }
  }
  return MakeViewRecord(WalRecord::Kind::kViewCheckpoint, view->id,
                        std::move(encoded));
}

Result<std::vector<WalRecord>> BuildWalImage(Db* db, ViewManager* views,
                                             Csn covered_csn) {
  std::vector<WalRecord> image;

  // 1. Catalog, in TableId order -- Db::Recover checks that replayed
  // creations reproduce the original ids.
  std::vector<TableId> tables = db->AllTableIds();
  std::sort(tables.begin(), tables.end());
  for (TableId id : tables) {
    VersionedTable* t = db->table(id);
    if (t == nullptr) return Status::Internal("catalog lists unknown table");
    WalRecord rec;
    rec.kind = WalRecord::Kind::kCreateTable;
    rec.table = id;
    rec.create = std::make_shared<CreateTablePayload>();
    rec.create->name = t->name();
    rec.create->schema = t->schema();
    rec.create->capture_mode = db->capture_mode(id);
    rec.create->indexed_columns = t->indexed_columns();
    image.push_back(std::move(rec));
  }

  // 2. Committed history, one synthetic transaction per commit CSN. Each
  // version's [begin, end) interval contributes its insert at `begin` and
  // (when the delete is covered) its delete at `end`; deletes of versions
  // above coverage stay out -- the retained suffix replays them against the
  // image's inserts.
  struct Event {
    TableId table;
    Tuple tuple;
    Csn end;  // the owning version's end_csn (pairs same-CSN churn)
  };
  struct Group {
    std::vector<Event> deletes;  // versions born earlier, dying at this CSN
    std::vector<Event> inserts;  // versions born at this CSN
  };
  std::map<Csn, Group> groups;
  for (TableId id : tables) {
    db->table(id)->VisitVersions([&](const Tuple& t, Csn begin, Csn end) {
      if (begin > covered_csn) return;
      if (end != kMaxCsn && end <= covered_csn && end != begin) {
        groups[end].deletes.push_back(Event{id, t, end});
      }
      groups[begin].inserts.push_back(Event{id, t, end});
    });
  }
  for (auto& [csn, g] : groups) {
    // Transaction identity: the UOW table still remembers most commits;
    // for CSNs it no longer covers, the CSN itself is a safe synthetic id
    // (each image transaction is contiguous and consumed by its own commit
    // record, so ids may repeat across groups without mixing ops). The
    // epoch fallback commit time only degrades wall-clock refresh
    // (CsnAtOrBefore) for those ancient CSNs.
    TxnId txn = static_cast<TxnId>(csn);
    WallTime commit_time{};
    if (std::optional<UowTable::Entry> e = db->uow()->LookupCsn(csn)) {
      txn = e->txn;
      commit_time = e->commit_time;
    }
    auto push_op = [&](WalRecord::Kind kind, const Event& ev) {
      WalRecord rec;
      rec.kind = kind;
      rec.txn = txn;
      rec.table = ev.table;
      rec.tuple = ev.tuple;
      image.push_back(std::move(rec));
    };
    // Deletes of earlier-born versions go first, mirroring an update's
    // delete-then-insert op order: a replayed delete must not land on the
    // same-CSN replacement row it would otherwise match first.
    for (const Event& ev : g.deletes) {
      push_op(WalRecord::Kind::kDelete, ev);
    }
    for (const Event& ev : g.inserts) {
      push_op(WalRecord::Kind::kInsert, ev);
      // A version born and killed by the same transaction replays as an
      // insert immediately undone; its delete must follow its own insert
      // or it would find no target.
      if (ev.end == csn) push_op(WalRecord::Kind::kDelete, ev);
    }
    WalRecord commit;
    commit.kind = WalRecord::Kind::kCommit;
    commit.txn = txn;
    commit.commit_csn = csn;
    commit.commit_time = commit_time;
    image.push_back(std::move(commit));
  }

  // Commits that left no base-table versions (pure view-state maintenance
  // transactions, fully-churned history) still advanced the CSN clock; a
  // final empty commit pins the replayed stable CSN to the coverage CSN so
  // recovered view state (MV csn, cursors) is never "ahead of" the engine.
  if (covered_csn != kNullCsn &&
      (groups.empty() || groups.rbegin()->first < covered_csn)) {
    WalRecord commit;
    commit.kind = WalRecord::Kind::kCommit;
    commit.txn = static_cast<TxnId>(covered_csn);
    commit.commit_csn = covered_csn;
    if (std::optional<UowTable::Entry> e = db->uow()->LookupCsn(covered_csn)) {
      commit.txn = e->txn;
      commit.commit_time = e->commit_time;
    }
    image.push_back(std::move(commit));
  }

  // 3. Views, in id order: registration plus a fresh checkpoint snapshot.
  // Unmaterialized views carry no checkpoint, so recovery counts them
  // unrecovered -- the same outcome a live log would produce.
  if (views != nullptr) {
    std::vector<View*> all = views->AllViews();
    std::sort(all.begin(), all.end(),
              [](const View* a, const View* b) { return a->id < b->id; });
    for (View* v : all) {
      image.push_back(MakeCreateViewRecord(*v));
      if (v->mv->csn() == kNullCsn) continue;
      ROLLVIEW_ASSIGN_OR_RETURN(WalRecord rec,
                                BuildViewCheckpointRecord(db, v));
      image.push_back(std::move(rec));
    }
  }
  return image;
}

Result<DurableCheckpointReport> PublishDurableCheckpoint(Db* db,
                                                         ViewManager* views) {
  Wal* wal = db->wal();
  if (!wal->durable()) {
    return Status::InvalidArgument("no durable wal backend attached");
  }
  DurableCheckpointReport report;
  // Quiescence makes this boundary exact: nothing is appending, so every
  // record below next_lsn() is in the queue or on disk, and every commit at
  // or below stable_csn() is fully represented in the versioned tables.
  report.covered_end_lsn = wal->next_lsn();
  report.covered_csn = db->stable_csn();
  ROLLVIEW_ASSIGN_OR_RETURN(std::vector<WalRecord> image,
                            BuildWalImage(db, views, report.covered_csn));
  report.image_records = image.size();
  std::string encoded = EncodeWal(image);
  report.image_bytes = encoded.size();
  ROLLVIEW_RETURN_NOT_OK(wal->store()->PublishCheckpoint(
      report.covered_end_lsn, report.covered_csn, encoded));
  return report;
}

Status AttachDurableWalDir(Db* db, ViewManager* views,
                           const DurableWalOptions& options,
                           uint64_t generation) {
  ROLLVIEW_RETURN_NOT_OK(
      db->wal()->OpenDurable(options, generation, /*require_empty=*/false));
  // The publish is the commit point of recovery: once the new generation's
  // checkpoint is durable, the old generation's files are deleted (inside
  // the publish) and the flusher may start appending segments. A crash
  // before this completes leaves the previous generation authoritative.
  ROLLVIEW_RETURN_NOT_OK(PublishDurableCheckpoint(db, views).status());
  db->wal()->store()->Start();
  return Status::OK();
}

Status CheckpointManager::OnStep() {
  if (options_.every_steps == 0) return Status::OK();
  if (++steps_since_checkpoint_ < options_.every_steps) return Status::OK();
  return CheckpointNow();
}

Status CheckpointManager::CheckpointNow() {
  steps_since_checkpoint_ = 0;
  ROLLVIEW_RETURN_NOT_OK(WriteViewCheckpoint(db_, view_));
  written_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace rollview
