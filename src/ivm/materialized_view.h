// Copyright 2026 The rollview Authors.
//
// MaterializedView: the stored extent of a view, as a multiset represented
// by tuple -> count (the canonical phi form), together with its
// materialization time (the CSN the contents reflect).
//
// Physical consistency is guarded by an internal latch; *logical* isolation
// between the apply driver and concurrent view readers is the callers'
// responsibility (they take the view's named lock through the Db lock
// manager -- this is the reader/apply contention experiment E5 measures).

#ifndef ROLLVIEW_IVM_MATERIALIZED_VIEW_H_
#define ROLLVIEW_IVM_MATERIALIZED_VIEW_H_

#include <shared_mutex>

#include "common/csn.h"
#include "common/status.h"
#include "ra/net_effect.h"
#include "schema/schema.h"
#include "schema/tuple.h"

namespace rollview {

class MaterializedView {
 public:
  explicit MaterializedView(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  Csn csn() const {
    std::shared_lock<std::shared_mutex> lk(latch_);
    return csn_;
  }

  // Installs a full recomputation (non-incremental refresh).
  void Replace(CountMap contents, Csn csn);

  // Applies a delta: adds each row's count to its tuple's count, dropping
  // zeroed tuples. Fails with Internal (leaving the view untouched) if any
  // resulting count would be negative -- a delta that deletes tuples the
  // view does not contain indicates a maintenance bug upstream.
  Status Merge(const DeltaRows& delta, Csn new_csn);

  CountMap Contents() const;
  DeltaRows AsDeltaRows() const;

  // Contents and materialization time read under one latch acquisition.
  // Checkpointing needs the pair to be mutually consistent: reading them
  // separately races with a concurrent apply (contents would reflect a roll
  // the CSN does not, or vice versa).
  void Snapshot(CountMap* contents, Csn* csn) const;

  // Number of distinct tuples.
  size_t cardinality() const;
  // Sum of counts (multiset size).
  int64_t TotalCount() const;

 private:
  Schema schema_;
  mutable std::shared_mutex latch_;
  CountMap map_;
  Csn csn_ = kNullCsn;
};

}  // namespace rollview

#endif  // ROLLVIEW_IVM_MATERIALIZED_VIEW_H_
