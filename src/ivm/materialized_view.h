// Copyright 2026 The rollview Authors.
//
// MaterializedView: the stored extent of a view, as a multiset represented
// by tuple -> count (the canonical phi form), together with its
// materialization time (the CSN the contents reflect).
//
// Physical consistency is guarded by an internal latch; *logical* isolation
// between the apply driver and concurrent view readers is the callers'
// responsibility (they take the view's named lock through the Db lock
// manager -- this is the reader/apply contention experiment E5 measures).
//
// Alongside the contents the view maintains an incremental ViewDigest
// (ivm/digest.h): Replace recomputes it, Merge folds every multiplicity
// change into it under the same latch acquisition, so digest and contents
// are always mutually consistent. The online scrubber cross-checks the
// incremental digest against a recompute from the stored contents; the
// corruption hooks below damage one without the other so drills can prove
// detection.

#ifndef ROLLVIEW_IVM_MATERIALIZED_VIEW_H_
#define ROLLVIEW_IVM_MATERIALIZED_VIEW_H_

#include <shared_mutex>

#include "common/csn.h"
#include "common/status.h"
#include "ivm/digest.h"
#include "ra/net_effect.h"
#include "schema/schema.h"
#include "schema/tuple.h"

namespace rollview {

class MaterializedView {
 public:
  explicit MaterializedView(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  Csn csn() const {
    std::shared_lock<std::shared_mutex> lk(latch_);
    return csn_;
  }

  // Installs a full recomputation (non-incremental refresh).
  void Replace(CountMap contents, Csn csn);

  // Applies a delta: adds each row's count to its tuple's count, dropping
  // zeroed tuples. Fails with Internal (leaving the view untouched) if any
  // resulting count would be negative -- a delta that deletes tuples the
  // view does not contain indicates a maintenance bug upstream.
  Status Merge(const DeltaRows& delta, Csn new_csn);

  CountMap Contents() const;
  DeltaRows AsDeltaRows() const;

  // Contents and materialization time read under one latch acquisition.
  // Checkpointing needs the pair to be mutually consistent: reading them
  // separately races with a concurrent apply (contents would reflect a roll
  // the CSN does not, or vice versa).
  void Snapshot(CountMap* contents, Csn* csn) const;
  // Snapshot plus the incremental digest, all mutually consistent. Null
  // outputs are skipped.
  void SnapshotWithDigest(CountMap* contents, Csn* csn,
                          ViewDigest* digest) const;
  // The scrubber's clean-pass hot path: recomputes a digest from the
  // stored contents IN PLACE and copies out the incremental digest and
  // CSN, all under one latch acquisition -- one scan, no O(n) contents
  // copy. The two digests disagree iff contents or digest are damaged.
  void ScrubSnapshot(ViewDigest* recomputed, ViewDigest* incremental,
                     Csn* csn) const;

  // The incrementally maintained content digest (copy).
  ViewDigest digest() const;
  // Rebuilds the digest from the stored contents -- the repair for a
  // tampered digest whose contents the scrubber has verified good.
  void ResetDigest();

  // Number of distinct tuples.
  size_t cardinality() const;
  // Sum of counts (multiset size).
  int64_t TotalCount() const;

  // --- Corruption drill hooks (scrub tests and FaultInjector call sites) ---

  // Flips one bit of one stored row, chosen deterministically from `seed`,
  // WITHOUT updating the digest -- models a latent storage bit flip that
  // only a scrub recompute can expose. Prefers an integer payload column;
  // falls back to flipping a low bit of the row's count. Returns false when
  // the view is empty (nothing to corrupt).
  bool CorruptRowBit(uint64_t seed);
  // Flips one bit of the incremental digest, leaving the contents intact --
  // the inverse failure the three-way scrub check must classify as
  // digest-only damage.
  void TamperDigest(uint64_t seed);

 private:
  Schema schema_;
  mutable std::shared_mutex latch_;
  CountMap map_;
  ViewDigest digest_;  // guarded by latch_, always consistent with map_
  Csn csn_ = kNullCsn;
};

}  // namespace rollview

#endif  // ROLLVIEW_IVM_MATERIALIZED_VIEW_H_
