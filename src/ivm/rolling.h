// Copyright 2026 The rollview Authors.
//
// RollingPropagator: the rolling join propagation process of Figure 10 --
// the paper's central contribution.
//
// Differences from the Propagate process (Figure 5):
//  * each base relation R^i has its own propagation-interval policy and its
//    own forward-query frontier tfwd[i] (n tuning knobs instead of one);
//  * compensation for a forward query is deferred: when R^i performs a
//    forward query, it eagerly compensates its overlap with forward queries
//    of *lower-numbered* relations only (covering both their past strips and
//    their future extension up to the query's execution time). Overlap with
//    higher-numbered relations is compensated later, when those relations
//    perform their own forward queries -- which is why each forward query of
//    R^i (i < n) is remembered in querylist[i] until it is fully
//    compensated;
//  * the view-delta high-water mark is min_i t_comp[i], where t_comp[i] is
//    the delta-interval start of the oldest un-fully-compensated forward
//    query of R^i (or tfwd[i] if there is none) -- Theorem 4.3.
//
// In the geometry of Figs 6-9: a forward query for R^i over (y1, y2] at
// execution time t_e covers the slab (y1,y2] on axis i and (0, t_e] on every
// other axis. Its overlap with lower relations' coverage at height
// y in (y1, y2] spans, on axis j < i, from the start of the oldest
// querylist[j] strip whose execution time exceeds y (CompTime) out to t_e.
// That x-extent is a step function of y changing at querylist execution
// times, so the slab is split into rectangular segments (ComInterval) and
// one ComputeDelta call compensates each.

#ifndef ROLLVIEW_IVM_ROLLING_H_
#define ROLLVIEW_IVM_ROLLING_H_

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "ivm/compute_delta.h"
#include "ivm/interval_policy.h"
#include "ivm/partition.h"
#include "ivm/query_runner.h"

namespace rollview {

// How a forward strip's overlap with other relations' coverage is
// compensated.
enum class CompensationMode {
  // Frontier compensation (default; exact for every join width): after the
  // forward query for R^i over (y1, y2] executes at t_e, one ComputeDelta
  // call compensates the drift of EVERY other relation back from t_e to
  // its current forward frontier. Each strip's net contribution is then
  // exactly the staircase rectangle (y1, y2] x prod_{j != i} (0, tfwd_j],
  // the rectangles tile V_{t0, .} by construction (telescoping over the
  // vector of frontiers), and the high-water mark is simply min_i tfwd_i.
  kFrontier,
  // The literal Figure 10 reading: compensation deferred and merged via
  // query lists, reaching back per lower relation to CompTime and bounding
  // every higher axis by the forward query's execution time. Exact for
  // two-relation views (machine-verified signed coverage). For three or
  // more relations this bound over-subtracts a slab the older strip never
  // covered, and a change committing between two maintenance transactions
  // can be lost -- see RollingTripleOverlapTest.DeferredModeCounterexample
  // for the minimal reproduction. Kept for the n=2 figure geometry and for
  // the deferred-merging query-count comparison (E6).
  kDeferredFigure10,
};

struct RollingOptions {
  RunnerOptions runner;
  ComputeDeltaOptions compute_delta;
  CompensationMode compensation = CompensationMode::kFrontier;
  // Partitioned propagation: when partition.enabled(), this propagator is
  // one strip of a partitioned driver -- every delta term it reads is
  // filtered to the slice, interval policies size by the slice's row
  // counts, its cursor chain lives at View cursor slot partition.index,
  // and its view-delta rows are stamped with the partition. The default
  // slice (count 1) is the classic single-driver propagator at slot 0.
  PartitionSlice partition;
};

class RollingPropagator {
 public:
  // `policies` supplies one interval policy per base relation (size must
  // equal the view's term count).
  RollingPropagator(ViewManager* views, View* view,
                    std::vector<std::unique_ptr<IntervalPolicy>> policies,
                    RollingOptions options = RollingOptions{});

  // Convenience: the same fixed interval for every relation.
  RollingPropagator(ViewManager* views, View* view, Csn uniform_interval,
                    RollingOptions options = RollingOptions{});

  // One iteration of the Figure 10 loop: choose the relation with the
  // smallest forward frontier, prune fully-compensated queries, perform one
  // forward query, compensate. Returns true if any frontier advanced.
  Result<bool> Step();

  // Quiescence check: a remembered forward strip of R^j is fully
  // compensated the moment the *remaining* overlap regions -- axis k > j
  // over (tfwd[k], strip.exec] -- contain no delta rows, because
  // compensation of an empty region is itself empty. When every pending
  // strip passes this test (all frontiers caught up, no trailing changes),
  // the strips are retired and the high-water mark lifts to the forward
  // frontier. Returns true if everything settled. Without this, the mark
  // tracks the oldest pending strip's start (min t_comp), which in
  // continuous operation advances via pruning but at end-of-history would
  // stall one strip behind the frontier forever.
  Result<bool> TryFinish();

  // Steps until the high-water mark reaches `target`, using TryFinish when
  // stepping alone cannot settle the tail.
  Status RunUntil(Csn target);

  // min_i t_comp[i] (Theorem 4.3); also mirrored into the view control.
  Csn high_water_mark() const;

  // Captured-but-unpropagated depth: total delta rows between each
  // relation's forward frontier and the capture high-water mark. The
  // backlog level the ContentionSnapshot reports to the interval
  // controller. Call from the propagate driver thread.
  uint64_t BacklogRows() const;

  Csn tfwd(size_t i) const { return tfwd_[i]; }
  Csn tcomp(size_t i) const { return tcomp_[i]; }

  struct Stats {
    uint64_t steps = 0;
    uint64_t forward_queries = 0;
    uint64_t forward_skipped = 0;       // empty-range frontier advances
    uint64_t compensation_segments = 0; // ComputeDelta calls for compensation
  };
  const Stats& rolling_stats() const { return stats_; }
  const ComputeDeltaStats& compute_delta_stats() const {
    return compute_delta_.stats();
  }
  QueryRunner* runner() { return &runner_; }

  // Step tracing: each Step() that does work (including empty-skip frontier
  // advances) becomes one root span carrying the chosen relation and
  // interval (t_a, t_b]; the forward query, compensation recursion, WAL
  // appends and undo activity nest under it. Call from the driving thread
  // before stepping; null detaches.
  void set_tracer(obs::StepTracer* tracer);

  // Partitioned propagation: diverts the view hwm advances this strip would
  // make (after publishing cursors, and on TryFinish settles) into `hook`
  // instead of View::AdvanceHwm. The coordinator folds each strip's local
  // mark into a per-partition slot and advances the view to the minimum
  // over slots -- one strip racing ahead must not publish a mark the
  // laggard strips cannot yet justify. Set before stepping; null restores
  // the direct advance.
  void set_hwm_hook(std::function<void(Csn)> hook) {
    hwm_hook_ = std::move(hook);
  }

  const PartitionSlice& partition() const { return partition_; }

 private:
  // ivm/view.h's ForwardStrip: {lo, hi, exec} = delta interval start/end and
  // execution time (commit CSN). Shared with CursorState so querylists are
  // part of the durable cursor state.
  using ForwardRecord = ForwardStrip;

  // The fallible body of Step(): forward query over (y1, y2] on relation i
  // plus its mode-specific compensation. Runs with the step-undo log
  // attached so a mid-protocol failure can be cancelled exactly.
  Status ForwardAndCompensate(size_t i, Csn y1, Csn y2);
  // Publishes the post-step cursor state: mirrors it into the view control
  // (View::StoreCursors), appends the kViewCursor record making step
  // `completed_seq` durable, THEN advances the high-water mark -- so a
  // durable hwm advance always has a durable cursor justifying it.
  void PublishCursors(uint64_t completed_seq);
  std::vector<std::vector<ForwardStrip>> SnapshotStrips() const;
  // The delta filter for term i, or null when unpartitioned.
  const DeltaPartitionFilter* FilterFor(size_t i) const {
    return partition_.enabled() ? &filters_[i] : nullptr;
  }
  // Routes this strip's local hwm through the coordinator hook when one is
  // installed, else advances the view directly.
  void PublishHwm();
  // Removes fully-compensated queries (execution time <= t) from every
  // query list and recomputes t_comp (paper's PruneQueryLists).
  void PruneQueryLists(Csn t);
  // Start of the compensation extent on axis j for a segment beginning at
  // t: the lo of the oldest querylist[j] record with exec > t, else tfwd[j].
  Csn CompTime(size_t j, Csn t) const;
  // End of the rectangular segment starting at t: the smallest exec time
  // > t among querylist[0..i-1], capped at `cap` (paper's ComInterval).
  Csn SegmentEnd(size_t i, Csn t, Csn cap) const;
  void RecomputeTcomp();

  ViewManager* views_;
  View* view_;
  std::vector<std::unique_ptr<IntervalPolicy>> policies_;
  QueryRunner runner_;
  ComputeDeltaOp compute_delta_;
  bool skip_empty_ = true;
  CompensationMode mode_ = CompensationMode::kFrontier;
  PartitionSlice partition_;
  std::vector<DeltaPartitionFilter> filters_;  // per-term; empty if serial
  std::function<void(Csn)> hwm_hook_;

  size_t n_;
  std::vector<Csn> tfwd_;
  std::vector<Csn> tcomp_;
  std::vector<std::deque<ForwardRecord>> querylist_;
  StepUndoLog undo_log_;
  uint64_t step_seq_ = 1;  // next step-attempt sequence number
  Stats stats_;
  obs::StepTracer* tracer_ = nullptr;
};

}  // namespace rollview

#endif  // ROLLVIEW_IVM_ROLLING_H_
