#include "ivm/region_tracker.h"

#include <algorithm>
#include <cassert>

namespace rollview {

void RegionTracker::Record(Region region) {
  std::lock_guard<std::mutex> lk(mu_);
  regions_.push_back(std::move(region));
}

std::vector<RegionTracker::Region> RegionTracker::regions() const {
  std::lock_guard<std::mutex> lk(mu_);
  return regions_;
}

size_t RegionTracker::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return regions_.size();
}

void RegionTracker::Clear() {
  std::lock_guard<std::mutex> lk(mu_);
  regions_.clear();
}

int64_t RegionTracker::CoverageAt(const std::vector<Csn>& point) const {
  std::lock_guard<std::mutex> lk(mu_);
  int64_t cover = 0;
  for (const Region& r : regions_) {
    if (r.extent.size() == point.size() && r.Contains(point)) {
      cover += r.sign;
    }
  }
  return cover;
}

std::optional<std::vector<Csn>> RegionTracker::CheckCoverage(
    Csn base, Csn frontier) const {
  std::vector<Region> snapshot = regions();
  if (snapshot.empty()) return std::nullopt;
  size_t dims = snapshot[0].extent.size();

  // Elementary-cell sampling: collect the boundary CSNs per axis; each
  // half-open cell (b_k, b_{k+1}] has uniform coverage, represented by the
  // point with coordinates b_k + 1.
  std::vector<std::vector<Csn>> reps(dims);
  for (size_t d = 0; d < dims; ++d) {
    std::vector<Csn> bounds{0, base, frontier};
    for (const Region& r : snapshot) {
      bounds.push_back(std::min(r.extent[d].lo, frontier));
      bounds.push_back(std::min(r.extent[d].hi, frontier));
    }
    std::sort(bounds.begin(), bounds.end());
    bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
    for (size_t k = 0; k + 1 < bounds.size(); ++k) {
      if (bounds[k] + 1 <= frontier) reps[d].push_back(bounds[k] + 1);
    }
    if (reps[d].empty()) reps[d].push_back(1);
  }

  // Walk the grid (odometer-style).
  std::vector<size_t> idx(dims, 0);
  std::vector<Csn> point(dims);
  while (true) {
    bool in_target = false;
    for (size_t d = 0; d < dims; ++d) {
      point[d] = reps[d][idx[d]];
      if (point[d] > base) in_target = true;
    }
    int64_t expected = in_target ? 1 : 0;
    int64_t cover = 0;
    for (const Region& r : snapshot) {
      if (r.Contains(point)) cover += r.sign;
    }
    if (cover != expected) return point;

    size_t d = 0;
    while (d < dims && ++idx[d] == reps[d].size()) {
      idx[d] = 0;
      ++d;
    }
    if (d == dims) break;
  }
  return std::nullopt;
}

std::string RegionTracker::Dump() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out;
  for (const Region& r : regions_) {
    out += r.sign >= 0 ? "+" : "-";
    out += " ";
    for (size_t d = 0; d < r.extent.size(); ++d) {
      if (d > 0) out += " x ";
      out += r.extent[d].ToString();
    }
    if (!r.label.empty()) {
      out += "   ; ";
      out += r.label;
    }
    out += "\n";
  }
  return out;
}

}  // namespace rollview
