// Copyright 2026 The rollview Authors.
//
// SnapshotPropagator: Equation 2 propagation over MVCC snapshots -- the
// ablation the paper could not run.
//
// The paper (Sec. 2, 3.1) observes that Eq. 2's n queries see base tables
// at two different times ("not realizable ... unless historical snapshots
// of base relations are maintained") and therefore develops compensation to
// avoid needing snapshots at all. Our engine *does* retain versions, so the
// n-query method runs directly: each interval (t, t'] is propagated by n
// lock-free time-travel queries
//
//   R^1_t .. R^{i-1}_t |><| Delta_i(t,t'] |><| R^{i+1}_{t'} .. R^n_{t'}
//
// touching neither the lock manager nor current table state -- zero
// contention with updaters, at the cost of MVCC version retention (garbage
// collection must not pass the propagation frontier; RetentionManager's
// floors respect this).
//
// The output rows carry min-rule timestamps, so the result is a timed delta
// table exactly like the compensation-based propagators', and apply /
// point-in-time refresh work unchanged.

#ifndef ROLLVIEW_IVM_SNAPSHOT_PROPAGATE_H_
#define ROLLVIEW_IVM_SNAPSHOT_PROPAGATE_H_

#include <memory>
#include <vector>

#include "ivm/baselines.h"
#include "ivm/interval_policy.h"
#include "ivm/view_manager.h"

namespace rollview {

// Which snapshot expansion to use per interval.
enum class SnapshotForm {
  // Equation 1 (2^n - 1 signed queries, bases at the interval end): the
  // inclusion-exclusion terms give every row its exact appearance time, so
  // the result is a full *timed* delta table -- point-in-time refresh to
  // any CSN works (default).
  kEq1Timed,
  // Equation 2 (n queries, bases at both endpoints): fewer queries, but
  // the min-rule alone stamps a tuple whose participants changed at
  // different times within one interval at the *earliest* change -- the
  // all-delta correction terms are missing. The result is a correct delta
  // only between interval *endpoints*: the view can be rolled exactly to
  // recorded interval boundaries, which is precisely the granularity
  // limitation Sec. 3.3 describes for propagation without per-tuple
  // timestamps.
  kEq2Endpoints,
};

class SnapshotPropagator {
 public:
  SnapshotPropagator(ViewManager* views, View* view,
                     std::unique_ptr<IntervalPolicy> policy,
                     SnapshotForm form = SnapshotForm::kEq1Timed);

  // Interval endpoints propagated so far (valid roll targets in
  // kEq2Endpoints mode; starts with the propagation origin).
  const std::vector<Csn>& boundaries() const { return boundaries_; }

  // Propagates one interval. Returns true if the high-water mark advanced.
  Result<bool> Step();

  // Steps until the high-water mark reaches `target`.
  Status RunUntil(Csn target);

  Csn high_water_mark() const { return t_cur_; }

  struct Stats {
    uint64_t intervals = 0;
    uint64_t rows_appended = 0;
    ExecStats exec;
  };
  const Stats& stats() const { return stats_; }

 private:
  ViewManager* views_;
  View* view_;
  std::unique_ptr<IntervalPolicy> policy_;
  SnapshotForm form_;
  Csn t_cur_;
  std::vector<Csn> boundaries_;
  Stats stats_;
};

}  // namespace rollview

#endif  // ROLLVIEW_IVM_SNAPSHOT_PROPAGATE_H_
