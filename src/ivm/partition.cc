#include "ivm/partition.h"

#include <numeric>

namespace rollview {

Result<std::vector<size_t>> ResolvePartitionColumns(const ResolvedView& view) {
  const size_t n = view.num_terms();
  if (n == 0) return Status::InvalidArgument("view has no terms");
  // Union-find over concatenated-tuple column positions; only positions
  // named by some EquiJoin participate.
  const SpjViewDef& def = view.def();
  size_t total = view.term_offset(n - 1) + view.term_width(n - 1);
  std::vector<size_t> parent(total);
  std::iota(parent.begin(), parent.end(), size_t{0});
  auto find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const EquiJoin& j : def.joins) {
    size_t a = find(view.ConcatIndex(j.left_term, j.left_col));
    size_t b = find(view.ConcatIndex(j.right_term, j.right_col));
    if (a != b) parent[a] = b;
  }
  // For each class root, the per-term column it reaches (or npos).
  // Iterate the join endpoints only -- other columns are never join keys.
  constexpr size_t kNone = static_cast<size_t>(-1);
  struct ClassCover {
    std::vector<size_t> per_term;
  };
  std::vector<std::pair<size_t, ClassCover>> classes;  // root -> cover
  auto cover_of = [&](size_t root) -> ClassCover* {
    for (auto& [r, c] : classes) {
      if (r == root) return &c;
    }
    classes.push_back({root, ClassCover{std::vector<size_t>(n, kNone)}});
    return &classes.back().second;
  };
  auto note = [&](size_t term, size_t col) {
    size_t root = find(view.ConcatIndex(term, col));
    ClassCover* c = cover_of(root);
    if (c->per_term[term] == kNone) c->per_term[term] = col;
  };
  for (const EquiJoin& j : def.joins) {
    note(j.left_term, j.left_col);
    note(j.right_term, j.right_col);
  }
  for (const auto& [root, cover] : classes) {
    bool covers_all = true;
    for (size_t i = 0; i < n; ++i) {
      if (cover.per_term[i] == kNone) {
        covers_all = false;
        break;
      }
    }
    if (covers_all) return cover.per_term;
  }
  return Status::InvalidArgument(
      "no join-equivalence class touches every term; the view cannot be "
      "hash-partitioned by join key");
}

Result<PartitionSlice> ResolvePartitionSlice(const ResolvedView& view,
                                             uint32_t index, uint32_t count) {
  if (count == 0 || index >= count) {
    return Status::InvalidArgument("partition index out of range");
  }
  PartitionSlice slice;
  slice.index = index;
  slice.count = count;
  if (count > 1) {
    ROLLVIEW_ASSIGN_OR_RETURN(slice.columns, ResolvePartitionColumns(view));
  }
  return slice;
}

}  // namespace rollview
