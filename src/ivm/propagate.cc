#include "ivm/propagate.h"

#include <algorithm>
#include <thread>

#include "ivm/checkpoint.h"

namespace rollview {

Propagator::Propagator(ViewManager* views, View* view,
                       std::unique_ptr<IntervalPolicy> policy,
                       PropagatorOptions options)
    : views_(views),
      view_(view),
      policy_(std::move(policy)),
      runner_(views, view, options.runner),
      compute_delta_(&runner_, options.compute_delta),
      t_cur_(view->propagate_from.load(std::memory_order_acquire)) {
  // Resume from the view's cursor control state (uniform process: the
  // frontier is the minimum of whatever a previous propagator left).
  size_t n = view->resolved.num_terms();
  CursorState resume = view->LoadCursors();
  if (resume.valid && resume.tfwd.size() == n) {
    // The uniform process can safely restart at the slowest frontier: the
    // completeness argument only needs every axis propagated through t_cur.
    t_cur_ = *std::min_element(resume.tfwd.begin(), resume.tfwd.end());
    step_seq_ = resume.next_step_seq;
  }
  CursorState init;
  init.tfwd.assign(n, t_cur_);
  init.tcomp.assign(n, t_cur_);
  init.next_step_seq = step_seq_;
  view->StoreCursors(std::move(init));
}

void Propagator::PublishCursors(uint64_t completed_seq) {
  CursorState state;
  state.tfwd.assign(view_->resolved.num_terms(), t_cur_);
  state.tcomp.assign(view_->resolved.num_terms(), t_cur_);
  state.next_step_seq = step_seq_;
  WalRecord rec = MakeViewCursorRecord(*view_, completed_seq, state);
  view_->StoreCursors(std::move(state));
  views_->db()->wal()->Append(std::move(rec));
  view_->AdvanceHwm(t_cur_);
}

void Propagator::set_tracer(obs::StepTracer* tracer) {
  tracer_ = tracer;
  runner_.set_tracer(tracer);
  compute_delta_.set_tracer(tracer);
}

Result<bool> Propagator::Step() {
  // Retry a pending cancellation left by a failed previous step (see
  // RollingPropagator::Step for the rationale).
  if (!undo_log_.empty()) {
    ROLLVIEW_RETURN_NOT_OK(runner_.CancelFailedStep(&undo_log_));
  }

  Csn ready = views_->DeltaReadyCsn();
  if (ready <= t_cur_) return false;

  // Propagate uses one interval for all relations; ask the policy against
  // the busiest base delta (the first table's by convention is arbitrary --
  // a uniform-interval process has no per-relation knowledge, so we give it
  // the union cardinality by probing each and taking the earliest bound).
  Csn t_next = ready;
  for (size_t i = 0; i < view_->resolved.num_terms(); ++i) {
    DeltaTable* dt = views_->db()->delta(view_->resolved.table(i));
    Csn b = policy_->NextBoundary(t_cur_, ready, *dt);
    if (b > t_cur_ && b < t_next) t_next = b;
  }
  if (t_next <= t_cur_) return false;

  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->BeginStep(obs::SpanKind::kStep, view_->id, view_->name,
                       step_seq_);
    tracer_->Attr(1, "t_a", static_cast<int64_t>(t_cur_));
    tracer_->Attr(1, "t_b", static_cast<int64_t>(t_next));
  }

  // PropagateInterval commits one transaction per query in the interval's
  // delta expansion; if a later one fails the earlier commits must be
  // cancelled before the supervisor may retry the step, or the retry
  // duplicates their rows (see StepUndoLog).
  uint64_t seq = step_seq_++;
  runner_.set_step_seq(seq);
  undo_log_.Clear();
  runner_.set_undo_log(&undo_log_);
  Status s = compute_delta_.PropagateInterval(view_, t_cur_, t_next);
  runner_.set_undo_log(nullptr);
  if (!s.ok()) {
    Status cancel = runner_.CancelFailedStep(&undo_log_);
    Status out = cancel.ok() ? s : cancel;
    if (tracer_ != nullptr) {
      tracer_->EndStep(out.IsTransient() ? obs::StepOutcome::kTransientError
                                         : obs::StepOutcome::kPermanentError,
                       out.ToString());
    }
    return out;
  }
  // Success: clear the log so the next Step's entry check does not cancel
  // (negate) this step's committed rows.
  undo_log_.Clear();
  t_cur_ = t_next;
  PublishCursors(seq);
  if (tracer_ != nullptr) tracer_->EndStep(obs::StepOutcome::kOk);
  return true;
}

Status Propagator::RunUntil(Csn target) {
  while (t_cur_ < target) {
    ROLLVIEW_ASSIGN_OR_RETURN(bool advanced, Step());
    if (!advanced) {
      if (views_->capture() != nullptr) {
        // Give capture a chance to publish more of the log.
        ROLLVIEW_RETURN_NOT_OK(views_->capture()->WaitForCsn(
            std::min(target, views_->db()->stable_csn())));
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  return Status::OK();
}

}  // namespace rollview
