// Copyright 2026 The rollview Authors.
//
// RegionTracker: executable reproduction of the paper's Figures 6-9.
//
// The figures explain propagation geometrically: with one time axis per base
// relation, a propagation query covers a hyper-rectangle -- a delta term
// R^i_{lo,hi} spans (lo, hi] on axis i, and a base term seen at the query's
// execution time t_e spans (0, t_e] on its axis. Forward queries count
// positively, compensations negatively, and correctness means the *signed
// coverage* of the executed queries equals exactly the L-shaped region
// V_{a,b}: points with every coordinate <= b and at least one coordinate > a
// are covered net once; all other points (up to the settled frontier) net
// zero.
//
// The tracker records the rectangle of every executed query and can verify
// signed coverage below a settled frontier, or dump the ledger (the textual
// analogue of Figs 7-9) for bench_fig_geometry.

#ifndef ROLLVIEW_IVM_REGION_TRACKER_H_
#define ROLLVIEW_IVM_REGION_TRACKER_H_

#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/csn.h"

namespace rollview {

class RegionTracker {
 public:
  struct Region {
    std::vector<CsnRange> extent;  // one axis per view term
    int64_t sign = +1;
    std::string label;

    bool Contains(const std::vector<Csn>& point) const {
      for (size_t i = 0; i < extent.size(); ++i) {
        if (!extent[i].Contains(point[i])) return false;
      }
      return true;
    }
  };

  void Record(Region region);

  std::vector<Region> regions() const;
  size_t size() const;
  void Clear();

  // Verifies signed coverage against the target region V_{base, frontier}:
  // for every sampled point p with all coordinates <= frontier, expects
  //   sum of signs of covering regions == (any p_i > base) ? 1 : 0.
  // Sample points are drawn from the boundary structure of the recorded
  // regions (one representative per elementary cell), so the check is exact
  // for the recorded rectangles. Returns the first violating point, or
  // nullopt if coverage is correct.
  std::optional<std::vector<Csn>> CheckCoverage(Csn base, Csn frontier) const;

  // Signed coverage at one point.
  int64_t CoverageAt(const std::vector<Csn>& point) const;

  // Ledger: one line per region, in execution order.
  std::string Dump() const;

 private:
  mutable std::mutex mu_;
  std::vector<Region> regions_;
};

}  // namespace rollview

#endif  // ROLLVIEW_IVM_REGION_TRACKER_H_
