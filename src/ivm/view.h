// Copyright 2026 The rollview Authors.
//
// View: one registered materialized view and its maintenance state -- the
// in-memory equivalent of the paper's control tables (Sec. 5), which
// "identify the tables associated with each materialized view, including the
// view delta table, the underlying base tables, and their delta tables" and
// "record the current view materialization time and the view delta
// high-water mark".

#ifndef ROLLVIEW_IVM_VIEW_H_
#define ROLLVIEW_IVM_VIEW_H_

#include <atomic>
#include <memory>
#include <string>

#include "capture/delta_table.h"
#include "ivm/materialized_view.h"
#include "ivm/view_def.h"

namespace rollview {

using ViewId = uint32_t;

struct View {
  ViewId id = 0;
  std::string name;
  ResolvedView resolved;

  // The view delta: timestamped change rows produced by propagation. Not
  // time-ordered (the min-timestamp rule emits rows out of order).
  std::unique_ptr<DeltaTable> view_delta;

  // The stored view extent; its csn() is the view materialization time.
  std::unique_ptr<MaterializedView> mv;

  // View delta high-water mark: sigma_{mv.csn, hwm}(view_delta) is a
  // complete timed delta table (Def. 4.2). Advanced only by the propagation
  // process; monotone.
  std::atomic<Csn> delta_hwm{0};

  // Where propagation starts (the initial materialization time).
  std::atomic<Csn> propagate_from{0};

  // Named lock-manager resource for reader/apply isolation on the MV.
  uint64_t mv_lock_resource = 0;

  Csn high_water_mark() const {
    return delta_hwm.load(std::memory_order_acquire);
  }
  // Monotonic advance (propagation never retracts the mark).
  void AdvanceHwm(Csn csn) {
    Csn cur = delta_hwm.load(std::memory_order_relaxed);
    while (csn > cur &&
           !delta_hwm.compare_exchange_weak(cur, csn,
                                            std::memory_order_release)) {
    }
  }
};

}  // namespace rollview

#endif  // ROLLVIEW_IVM_VIEW_H_
