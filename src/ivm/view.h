// Copyright 2026 The rollview Authors.
//
// View: one registered materialized view and its maintenance state -- the
// in-memory equivalent of the paper's control tables (Sec. 5), which
// "identify the tables associated with each materialized view, including the
// view delta table, the underlying base tables, and their delta tables" and
// "record the current view materialization time and the view delta
// high-water mark".

#ifndef ROLLVIEW_IVM_VIEW_H_
#define ROLLVIEW_IVM_VIEW_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "capture/delta_table.h"
#include "ivm/materialized_view.h"
#include "ivm/view_def.h"
#include "ra/delta_program.h"

namespace rollview {

using ViewId = uint32_t;

// Scrub health of one view. Healthy views serve reads normally; quarantined
// views have a detected content corruption and serve per the Db's
// QuarantineReadPolicy (fail-fast with a transient error, or knowingly
// stale) until the scrubber's repair re-verifies them.
enum class ViewHealth : uint8_t {
  kHealthy = 0,
  kQuarantined = 1,
};

// One remembered forward query (rolling deferred mode): delta interval
// (lo, hi] and execution time. Kept until fully compensated.
struct ForwardStrip {
  Csn lo = kNullCsn;
  Csn hi = kNullCsn;
  Csn exec = kNullCsn;
};

// Propagation-cursor control state: per-relation forward frontiers tfwd[i],
// compensation frontiers tcomp[i], the next propagation step sequence
// number, and -- in rolling deferred mode -- the per-relation query lists of
// not-yet-fully-compensated forward strips. The live propagator mirrors its
// cursors here after every advance, so checkpoints can snapshot them, a
// newly constructed propagator resumes where the previous one (or crash
// recovery) left off, and the Sec. 5 "control table" has an explicit
// in-memory analogue.
struct CursorState {
  bool valid = false;
  std::vector<Csn> tfwd;
  std::vector<Csn> tcomp;
  uint64_t next_step_seq = 1;
  std::vector<std::vector<ForwardStrip>> strips;  // empty in frontier mode
  // How many partition strips the writer was running (1 = the serial
  // driver). Stored so a restarted driver can tell whether the durable
  // per-partition cursor set matches its own partition count.
  uint32_t num_partitions = 1;
};

struct View {
  ViewId id = 0;
  std::string name;
  ResolvedView resolved;

  // The view delta: timestamped change rows produced by propagation. Not
  // time-ordered (the min-timestamp rule emits rows out of order).
  std::unique_ptr<DeltaTable> view_delta;

  // The stored view extent; its csn() is the view materialization time.
  std::unique_ptr<MaterializedView> mv;

  // Compiled delta programs + materialized half-join views (null when
  // DbOptions::compile_delta_programs is off). Immutable after CreateView;
  // half-join STATE is volatile and derived -- Materialize / recovery /
  // repair call programs->Reset() and the first forward query rebuilds.
  std::shared_ptr<ViewPrograms> programs;

  // View delta high-water mark: sigma_{mv.csn, hwm}(view_delta) is a
  // complete timed delta table (Def. 4.2). Advanced only by the propagation
  // process; monotone.
  std::atomic<Csn> delta_hwm{0};

  // Where propagation starts (the initial materialization time).
  std::atomic<Csn> propagate_from{0};

  // Named lock-manager resource for reader/apply isolation on the MV.
  uint64_t mv_lock_resource = 0;

  mutable std::mutex cursor_mu;
  // One cursor chain per partition strip, keyed by partition index; the
  // serial driver lives at partition 0. Guarded by cursor_mu.
  std::map<uint32_t, CursorState> cursors_by_partition;

  // Cursor control state (see CursorState). Written by the propagation
  // drivers after every frontier advance and by ViewManager::Recover; read
  // by propagator constructors and the checkpointer. Partition strips run
  // concurrently, hence the lock even though each partition has one writer.
  void StoreCursors(CursorState state, uint32_t partition = 0) {
    std::lock_guard<std::mutex> lk(cursor_mu);
    CursorState& slot = cursors_by_partition[partition];
    slot = std::move(state);
    slot.valid = true;
  }
  CursorState LoadCursors(uint32_t partition = 0) const {
    std::lock_guard<std::mutex> lk(cursor_mu);
    auto it = cursors_by_partition.find(partition);
    return it == cursors_by_partition.end() ? CursorState{} : it->second;
  }
  std::map<uint32_t, CursorState> LoadAllCursors() const {
    std::lock_guard<std::mutex> lk(cursor_mu);
    return cursors_by_partition;
  }
  // Drops every partition's cursor chain (repartitioning from a settled
  // uniform frontier re-seeds them).
  void ClearCursors() {
    std::lock_guard<std::mutex> lk(cursor_mu);
    cursors_by_partition.clear();
  }

  // --- Scrub health ------------------------------------------------------
  //
  // The health flag is atomic so the read path (harness/mv_reader.cc) can
  // gate without taking a lock; the bucket/reason details ride under a
  // mutex because only the scrubber and diagnostics touch them.
  std::atomic<ViewHealth> scrub_health{ViewHealth::kHealthy};
  mutable std::mutex quarantine_mu;
  uint32_t quarantine_bucket = 0;     // guarded by quarantine_mu
  std::string quarantine_reason;      // guarded by quarantine_mu

  bool quarantined() const {
    return scrub_health.load(std::memory_order_acquire) ==
           ViewHealth::kQuarantined;
  }
  void Quarantine(uint32_t bucket, std::string reason) {
    {
      std::lock_guard<std::mutex> lk(quarantine_mu);
      quarantine_bucket = bucket;
      quarantine_reason = std::move(reason);
    }
    scrub_health.store(ViewHealth::kQuarantined, std::memory_order_release);
  }
  void ClearQuarantine() {
    scrub_health.store(ViewHealth::kHealthy, std::memory_order_release);
    std::lock_guard<std::mutex> lk(quarantine_mu);
    quarantine_bucket = 0;
    quarantine_reason.clear();
  }
  // (bucket, reason) of the active quarantine; meaningful only while
  // quarantined() holds.
  std::pair<uint32_t, std::string> quarantine_info() const {
    std::lock_guard<std::mutex> lk(quarantine_mu);
    return {quarantine_bucket, quarantine_reason};
  }

  Csn high_water_mark() const {
    return delta_hwm.load(std::memory_order_acquire);
  }
  // Monotonic advance (propagation never retracts the mark).
  void AdvanceHwm(Csn csn) {
    Csn cur = delta_hwm.load(std::memory_order_relaxed);
    while (csn > cur &&
           !delta_hwm.compare_exchange_weak(cur, csn,
                                            std::memory_order_release)) {
    }
  }
};

}  // namespace rollview

#endif  // ROLLVIEW_IVM_VIEW_H_
