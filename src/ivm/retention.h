// Copyright 2026 The rollview Authors.
//
// Retention: bounding the growth of delta tables and MVCC version history
// in a continuously running deployment.
//
// A base-delta row with timestamp ts is dead once every view over that
// table has propagated past ts: forward queries start at the relation's
// frontier and compensation queries reach back only to CompTime >= the
// view's high-water mark, so rows at or below the mark are never read
// again. (When synchronous refresh baselines are also in play, their reads
// start at the MV's materialization time instead, which is never above the
// mark -- the conservative policy covers that.)
//
// Similarly, a view-delta row at or below the MV's materialization time
// can never be selected by a future roll, and base-table versions deleted
// at or below the oldest interesting snapshot can be garbage collected.

#ifndef ROLLVIEW_IVM_RETENTION_H_
#define ROLLVIEW_IVM_RETENTION_H_

#include "ivm/view_manager.h"

namespace rollview {

struct RetentionOptions {
  // kApplied: prune base deltas below min(MV materialization time) --
  //   conservative, also safe for synchronous-refresh users.
  // kPropagated: prune below min(view-delta high-water mark) -- tighter,
  //   safe when all maintenance is propagate/apply based.
  enum class BaseDeltaPolicy { kApplied, kPropagated };
  BaseDeltaPolicy base_delta_policy = BaseDeltaPolicy::kApplied;

  // Also prune each view's view delta below its MV time.
  bool prune_view_deltas = true;

  // Also garbage-collect MVCC versions below the same floor. Disable when
  // tests/oracles need time travel across the whole history.
  bool gc_versions = false;
};

class RetentionManager {
 public:
  RetentionManager(ViewManager* views,
                   RetentionOptions options = RetentionOptions{})
      : views_(views), options_(options) {}

  struct PruneReport {
    uint64_t base_delta_rows = 0;
    uint64_t view_delta_rows = 0;
    Csn base_floor = kNullCsn;  // floor applied to base deltas (global min)
    // True when the durable checkpoint's coverage CSN capped the floors:
    // state above coverage must survive until the next checkpoint publishes,
    // because recovery replays the retained log suffix against the image.
    bool durable_clamp_applied = false;
  };

  // One retention pass over every table and view. Safe to run concurrently
  // with updaters, capture, propagation, and apply.
  PruneReport PruneOnce();

 private:
  ViewManager* views_;
  RetentionOptions options_;
};

}  // namespace rollview

#endif  // ROLLVIEW_IVM_RETENTION_H_
