#include "ivm/union_view.h"

#include <algorithm>

#include "ivm/apply.h"
#include "ivm/propagate.h"

namespace rollview {

Result<std::unique_ptr<UnionView>> UnionView::Create(
    std::vector<View*> branches) {
  if (branches.empty()) {
    return Status::InvalidArgument("union view needs at least one branch");
  }
  const Schema& schema = branches[0]->resolved.view_schema();
  for (View* v : branches) {
    if (!(v->resolved.view_schema() == schema)) {
      return Status::InvalidArgument(
          "union branches have incompatible schemas: " +
          schema.ToString() + " vs " +
          v->resolved.view_schema().ToString());
    }
  }
  auto out = std::unique_ptr<UnionView>(new UnionView(std::move(branches)));
  out->mv_ = std::make_unique<MaterializedView>(schema);
  return out;
}

Csn UnionView::high_water_mark() const {
  Csn hwm = kMaxCsn;
  for (const View* v : branches_) {
    hwm = std::min(hwm, v->high_water_mark());
  }
  return hwm == kMaxCsn ? kNullCsn : hwm;
}

Status UnionView::InitializeFromBranches() {
  Csn csn = kNullCsn;
  for (const View* v : branches_) {
    Csn c = v->mv->csn();
    if (c == kNullCsn) {
      return Status::InvalidArgument("branch '" + v->name +
                                     "' is not materialized");
    }
    if (csn == kNullCsn) {
      csn = c;
    } else if (csn != c) {
      return Status::InvalidArgument(
          "branches materialized at different times (" + std::to_string(csn) +
          " vs " + std::to_string(c) + ")");
    }
  }
  DeltaRows all;
  for (const View* v : branches_) {
    DeltaRows rows = v->mv->AsDeltaRows();
    all.insert(all.end(), rows.begin(), rows.end());
  }
  mv_->Replace(ToCountMap(all), csn);
  return Status::OK();
}

Status UnionView::AlignAndInitialize(ViewManager* views) {
  Csn target = kNullCsn;
  for (const View* v : branches_) {
    if (v->mv->csn() == kNullCsn) {
      return Status::InvalidArgument("branch '" + v->name +
                                     "' is not materialized");
    }
    target = std::max(target, v->mv->csn());
  }
  for (View* v : branches_) {
    if (v->mv->csn() == target) continue;
    if (v->high_water_mark() < target) {
      Propagator prop(views, v, std::make_unique<DrainInterval>());
      ROLLVIEW_RETURN_NOT_OK(prop.RunUntil(target));
    }
    Applier applier(views, v);
    ROLLVIEW_RETURN_NOT_OK(applier.RollTo(target));
  }
  return InitializeFromBranches();
}

Status UnionView::RollTo(Csn target) {
  Csn from = mv_->csn();
  if (from == kNullCsn) {
    return Status::InvalidArgument("union view not initialized");
  }
  if (target < from) {
    return Status::InvalidArgument("cannot roll union view backwards");
  }
  if (target > high_water_mark()) {
    return Status::OutOfRange(
        "target beyond the union's high-water mark (min over branches)");
  }
  if (target == from) return Status::OK();

  DeltaRows window;
  for (const View* v : branches_) {
    DeltaRows rows = v->view_delta->Scan(CsnRange{from, target});
    window.insert(window.end(), rows.begin(), rows.end());
  }
  return mv_->Merge(window, target);
}

}  // namespace rollview
