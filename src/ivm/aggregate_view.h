// Copyright 2026 The rollview Authors.
//
// Aggregate views maintained with summary-delta tables.
//
// The paper (Sec. 2, Sec. 6) notes that rolling propagation "can be
// extended to support views with aggregation by using summary-delta
// tables" [Mumick/Quass/Mumick, SIGMOD'97]: a summary-delta records the
// *net change to each aggregate group* over a time window.
//
// An AggregateView sits on top of an SPJ View's timestamped view delta:
//
//   A = SELECT g1..gk, COUNT(*), SUM(m1), ... FROM V GROUP BY g1..gk
//
// Rolling A from t_a to t_b folds sigma_{a,b}(Delta^V) into a summary
// delta -- for each group: delta_count = sum of row counts, delta_sum_i =
// sum of count * measure_i -- and merges it into the stored aggregate
// state. Groups whose count reaches zero disappear. Because the underlying
// view delta is a timed delta table, the aggregate view inherits
// point-in-time refresh: it can roll to any CSN up to the SPJ view's
// high-water mark, entirely independent of the SPJ view's own apply state.
//
// COUNT and SUM are self-maintainable under inserts and deletes; AVG is
// derived as SUM/COUNT at read time. MIN/MAX are not maintainable from
// deltas alone (a deleted extremum needs a base rescan) and are not
// offered.

#ifndef ROLLVIEW_IVM_AGGREGATE_VIEW_H_
#define ROLLVIEW_IVM_AGGREGATE_VIEW_H_

#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "ivm/view.h"

namespace rollview {

struct AggSpec {
  // Indexes (into the SPJ view's output schema) of the group-by columns.
  std::vector<size_t> group_columns;
  // Indexes of the numeric measure columns to SUM. COUNT(*) is implicit.
  std::vector<size_t> sum_columns;
};

// One group's net change over a window (a summary-delta row) or its stored
// state (when held in the aggregate view's extent).
struct AggState {
  int64_t count = 0;               // net COUNT(*)
  std::vector<double> sums;        // net SUM(measure_i)

  double avg(size_t i) const {
    return count == 0 ? 0.0 : sums[i] / static_cast<double>(count);
  }
};

using SummaryDelta = std::unordered_map<Tuple, AggState, TupleHasher>;

// Folds a view-delta window into a summary delta (pure function; exposed
// for tests and for users who want raw summary-delta streams).
Result<SummaryDelta> ComputeSummaryDelta(const DeltaRows& window,
                                         const AggSpec& spec);

class AggregateView {
 public:
  // `base` must outlive this object. The spec is validated against the
  // base view's output schema.
  static Result<std::unique_ptr<AggregateView>> Create(const View* base,
                                                       AggSpec spec);

  const View* base() const { return base_; }
  const AggSpec& spec() const { return spec_; }

  Csn csn() const {
    std::shared_lock<std::shared_mutex> lk(latch_);
    return csn_;
  }

  // Initializes the aggregate state from the base view's *materialized*
  // extent (which must itself be materialized). Subsequent rolls start
  // from the MV's CSN.
  Status InitializeFromBaseMv();

  // Rolls the aggregate state forward to `target` (csn() <= target <=
  // base view-delta high-water mark) using the summary delta of the
  // window. Fails (state untouched) if a group's count would go negative.
  Status RollTo(Csn target);

  // Stored groups: group-key tuple -> aggregate state.
  std::unordered_map<Tuple, AggState, TupleHasher> Contents() const;
  size_t num_groups() const;

  struct Stats {
    uint64_t rolls = 0;
    uint64_t window_rows = 0;    // view-delta rows folded
    uint64_t groups_touched = 0; // summary-delta rows merged
  };
  Stats stats() const;

 private:
  AggregateView(const View* base, AggSpec spec)
      : base_(base), spec_(std::move(spec)) {}

  const View* base_;
  AggSpec spec_;

  mutable std::shared_mutex latch_;
  std::unordered_map<Tuple, AggState, TupleHasher> groups_;
  Csn csn_ = kNullCsn;
  Stats stats_;
};

}  // namespace rollview

#endif  // ROLLVIEW_IVM_AGGREGATE_VIEW_H_
