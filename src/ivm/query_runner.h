// Copyright 2026 The rollview Authors.
//
// QueryRunner: the Execute() primitive of Figures 4, 5 and 10. Each call
// evaluates one propagation query as its own serializable transaction,
// inserts the (signed, min-timestamped) result rows into the view delta
// table, commits, and returns the transaction's commit CSN -- the query's
// execution time t_exec, which the compensation machinery reasons about.
//
// In the paper's prototype, propagate discovers its own commit sequence
// number by updating a special global table and waiting for DPropR to
// capture it (Sec. 5). Our engine hands the commit CSN back directly; an
// optional "special table round-trip" mode reproduces the prototype's
// behavior faithfully for demonstration (see RunnerOptions).

#ifndef ROLLVIEW_IVM_QUERY_RUNNER_H_
#define ROLLVIEW_IVM_QUERY_RUNNER_H_

#include <chrono>

#include "common/result.h"
#include "ivm/partition.h"
#include "ivm/prop_query.h"
#include "ivm/region_tracker.h"
#include "ivm/view_manager.h"
#include "obs/trace.h"
#include "ra/executor.h"

namespace rollview {

namespace obs {
class MetricsRegistry;
}  // namespace obs

struct RunnerOptions {
  // Retries on transient errors (deadlock-victim aborts / lock timeouts).
  // 0 disables the per-query retry loop entirely, surfacing every transient
  // to the caller -- the supervised maintenance drivers use this to own the
  // whole backoff policy.
  int max_retries = 64;
  std::chrono::microseconds retry_backoff{200};
  // Bound on waiting for capture to publish the delta ranges a query reads;
  // expiry surfaces as transient Busy (e.g. during a capture-lag spike).
  std::chrono::milliseconds capture_wait_timeout{10000};
  // Reproduce the prototype's CSN discovery: write a marker row into a
  // special captured table and resolve the CSN through the UOW table.
  bool use_special_table_csn_resolution = false;
  // Serve base-table builds from the engine's snapshot-keyed BuildCache
  // (no-op when the engine was created with build_cache_bytes == 0). All
  // queries of a propagation step -- and, while the base tables are quiet,
  // of successive steps -- share one build per table. Off forces the
  // uncached scan/probe paths (the cache-off arm of bench_executor).
  bool use_build_cache = true;
  // Dispatch single-delta-term forward queries through the view's compiled
  // delta programs (ra/delta_program.h) when the view has them
  // (DbOptions::compile_delta_programs). Compensation queries and
  // uncompiled terms always run interpreted; any compiled-path failure
  // falls back to the interpreted executor within the same transaction.
  // Off forces the interpreted path (the interpreted arm of bench_executor).
  bool use_compiled_programs = true;
};

struct RunnerStats {
  uint64_t queries = 0;          // committed propagation queries
  uint64_t forward_queries = 0;  // exactly one delta term
  uint64_t comp_queries = 0;     // more than one delta term
  uint64_t retries = 0;
  uint64_t retries_aborted = 0;  // retries caused by TxnAborted
  uint64_t retries_busy = 0;     // retries caused by Busy
  uint64_t rows_appended = 0;    // view-delta rows written
  ExecStats exec;                // join-executor work
};

// Collects the view-delta rows committed by each successful Execute inside
// one multi-query protocol step. A Figure 5/10 step is *several*
// independently committed transactions (forward query + compensations); if
// one of them fails after earlier ones committed, retrying the whole step
// would duplicate the committed rows. CancelFailedStep appends the exact
// negation of everything recorded (same tuples, same timestamps, negated
// counts), so the net effect of the failed step is zero and the retry is
// safe. Negation at identical timestamps cancels in every scan window, and
// view deltas are not ts-sorted, so the late append is legal.
class StepUndoLog {
 public:
  void Record(DeltaRows rows) {
    rows_.insert(rows_.end(), std::make_move_iterator(rows.begin()),
                 std::make_move_iterator(rows.end()));
  }
  void Clear() { rows_.clear(); }
  bool empty() const { return rows_.empty(); }
  const DeltaRows& rows() const { return rows_; }

 private:
  DeltaRows rows_;
};

class QueryRunner {
 public:
  QueryRunner(ViewManager* views, View* view,
              RunnerOptions options = RunnerOptions{});

  // Executes `q`; returns its execution time (commit CSN). Blocks until the
  // capture high-water mark covers every delta range in the query.
  Result<Csn> Execute(const PropQuery& q);

  ViewManager* views() const { return views_; }
  View* view() const { return view_; }

  const RunnerStats& stats() const { return stats_; }
  void ResetStats() { stats_ = RunnerStats{}; }

  // Registers this runner's RunnerStats counters directly (no mirroring):
  // the stats struct is unsynchronized, so snapshots are only meaningful
  // while the runner is quiescent. Benchmarks driving a raw propagator use
  // this; live scraping goes through MaintenanceService::RegisterMetrics.
  // The caller must DropOwner(owner) before this runner dies.
  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const void* owner) const;

  // Optional geometric instrumentation (Figs 6-9).
  void set_region_tracker(RegionTracker* tracker) { tracker_ = tracker; }

  // Optional step tracing: annotates the caller's open query span with row
  // counts / commit CSN / retry counts, nests a wal_append child span
  // around the view-delta append + commit, and records undo-log
  // cancellation spans. Same single-thread contract as the other setters.
  void set_tracer(obs::StepTracer* tracer) { tracer_ = tracer; }

  // Shedding control: toggles build-cache admission for subsequent queries.
  // Must be called from the thread that calls Execute (the propagate
  // driver), like the other setters here.
  void set_use_build_cache(bool on) { options_.use_build_cache = on; }
  bool use_build_cache() const { return options_.use_build_cache; }

  // Partitioned propagation: while set (and enabled), every delta term of
  // every query is filtered to the slice's partition, and committed
  // view-delta rows are stamped with the slice's partition index so crash
  // recovery attributes them to this strip's (partition, step_seq) chain.
  // The slice must outlive the runner. Same single-thread contract as the
  // other setters.
  void set_partition(const PartitionSlice* slice) { partition_ = slice; }

  // While set, every successful Execute records its committed view-delta
  // rows into `log` (multi-query steps install one around their protocol).
  void set_undo_log(StepUndoLog* log) { undo_log_ = log; }
  // Step sequence number stamped (with the view id) on every view-delta
  // append this runner commits, so crash recovery can attribute WAL-logged
  // rows to propagation steps. The propagator bumps it once per step
  // *attempt*; cancellation negations carry the failed attempt's number.
  void set_step_seq(uint64_t seq) { step_seq_ = seq; }
  uint64_t step_seq() const { return step_seq_; }
  // Cancels a failed step exactly: appends the negation of every recorded
  // row in one transaction (bounded transient retries), then clears the
  // log. A non-OK return means the view delta still holds the partial
  // step -- the caller must treat that as permanent, not retry the step.
  Status CancelFailedStep(StepUndoLog* log);

 private:
  Result<Csn> ExecuteOnce(const PropQuery& q);
  Status EnsureSpecialTable();

  ViewManager* views_;
  View* view_;
  RunnerOptions options_;
  RunnerStats stats_;
  RegionTracker* tracker_ = nullptr;
  obs::StepTracer* tracer_ = nullptr;
  const PartitionSlice* partition_ = nullptr;
  StepUndoLog* undo_log_ = nullptr;
  uint64_t step_seq_ = 0;
  TableId special_table_ = kInvalidTableId;
  int64_t special_seq_ = 0;
};

}  // namespace rollview

#endif  // ROLLVIEW_IVM_QUERY_RUNNER_H_
