// Copyright 2026 The rollview Authors.
//
// Union views: V = V^1 + V^2 + ... + V^m (multiset union of
// schema-compatible SPJ branches). The paper (Sec. 2): "Although rolling
// propagation is presented for select-project-join views, it can be
// extended easily to accommodate views involving union."
//
// The extension is exactly as easy as advertised: each branch is an
// ordinary SPJ view with its own delta tables, propagator (any of
// ComputeDelta / Propagate / RollingPropagate, with independent tuning),
// and timestamped view delta. The union's delta over (a, b] is the
// concatenation of the branches' deltas over (a, b] -- union distributes
// over differencing -- so the union's high-water mark is the minimum of
// the branch marks, and point-in-time refresh selects each branch's window
// and merges them all into one stored extent.

#ifndef ROLLVIEW_IVM_UNION_VIEW_H_
#define ROLLVIEW_IVM_UNION_VIEW_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "ivm/materialized_view.h"
#include "ivm/view.h"

namespace rollview {

class ViewManager;

class UnionView {
 public:
  // All branches must have identical output schemas and must already be
  // registered with a ViewManager. Branches must outlive the union.
  static Result<std::unique_ptr<UnionView>> Create(std::vector<View*> branches);

  const std::vector<View*>& branches() const { return branches_; }
  MaterializedView* mv() { return mv_.get(); }

  // min over branches of their view-delta high-water marks: the furthest
  // point the union can be rolled to.
  Csn high_water_mark() const;

  // Initializes the stored extent as the multiset union of the branches'
  // *materialized* extents. All branches must be materialized at the same
  // CSN (materialize them before updates start, or use AlignAndInitialize).
  Status InitializeFromBranches();

  // Brings every branch's MV to a common CSN -- the latest branch
  // materialization time -- by propagating and applying the laggards, then
  // initializes. Branch materializations commit as separate transactions,
  // so their CSNs rarely line up naturally; this closes the gap.
  Status AlignAndInitialize(ViewManager* views);

  // Rolls the stored extent to `target` <= high_water_mark() by merging
  // every branch's sigma_{cur, target} window.
  Status RollTo(Csn target);

 private:
  explicit UnionView(std::vector<View*> branches)
      : branches_(std::move(branches)) {}

  std::vector<View*> branches_;
  std::unique_ptr<MaterializedView> mv_;
};

}  // namespace rollview

#endif  // ROLLVIEW_IVM_UNION_VIEW_H_
