#include "ivm/interval_policy.h"

namespace rollview {

IntervalController::IntervalController(Options options)
    : options_(options), target_rows_(options.initial_target_rows) {
  if (options_.min_target_rows == 0) options_.min_target_rows = 1;
  if (options_.max_target_rows < options_.min_target_rows) {
    options_.max_target_rows = options_.min_target_rows;
  }
  target_rows_ = std::clamp(target_rows_, options_.min_target_rows,
                            options_.max_target_rows);
}

bool IntervalController::Contended(const Options& opt,
                                   const ContentionSnapshot& s) {
  if (s.oltp_waits + s.oltp_timeouts >= opt.oltp_wait_threshold &&
      opt.oltp_wait_threshold > 0) {
    return true;
  }
  if (s.maintenance_deadlock_victims >= opt.victim_threshold &&
      opt.victim_threshold > 0) {
    return true;
  }
  // Step-level transient failures are deadlock/timeout aborts seen by the
  // driver itself -- contention even if the windowed lock counters were
  // reset by someone else.
  return s.step_transient_failures > 0;
}

void IntervalController::ShrinkLocked() {
  size_t shrunk = static_cast<size_t>(
      static_cast<double>(target_rows_) * options_.shrink_factor);
  target_rows_ = std::max(shrunk, options_.min_target_rows);
}

void IntervalController::EscalatePauseLocked() {
  if (options_.pause_initial.count() == 0) return;
  if (pause_.count() == 0) {
    pause_ = options_.pause_initial;
  } else {
    pause_ = std::min(
        options_.pause_max,
        std::chrono::microseconds(static_cast<int64_t>(
            static_cast<double>(pause_.count()) * options_.pause_multiplier)));
  }
  stats_.pace_escalations++;
}

bool IntervalController::Observe(const ContentionSnapshot& snapshot) {
  std::lock_guard<std::mutex> lk(mu_);
  stats_.observations++;

  const bool contended = Contended(options_, snapshot);
  if (contended) {
    if (target_rows_ > options_.min_target_rows) {
      ShrinkLocked();
      stats_.shrinks++;
    }
    // Space the strips out in time as well: at the row-target floor this is
    // the only lever left against lock-order collisions.
    EscalatePauseLocked();
  } else {
    if (target_rows_ < options_.max_target_rows) {
      target_rows_ = std::min(target_rows_ + options_.grow_rows,
                              options_.max_target_rows);
      stats_.grows++;
    }
    pause_ = std::chrono::microseconds(static_cast<int64_t>(
        static_cast<double>(pause_.count()) * options_.pause_decay));
    if (pause_ < options_.pause_initial) pause_ = std::chrono::microseconds(0);
  }

  if (options_.staleness_slo == 0) return false;

  const bool was_shedding = shedding_;
  if (!shedding_) {
    // Enter shedding only for *contention-driven* staleness: a quiet system
    // with a stale view just needs bigger intervals, not load shedding.
    if (snapshot.staleness > options_.staleness_slo && contended) {
      stats_.slo_violations++;
      if (++consecutive_violations_ >= options_.violations_to_shed) {
        shedding_ = true;
        consecutive_violations_ = 0;
        consecutive_ok_ = 0;
        stats_.shed_entries++;
      }
    } else {
      consecutive_violations_ = 0;
    }
  } else {
    // Hysteretic exit: staleness must fall well below the SLO (not merely
    // under it) for several consecutive windows.
    Csn recover_at = static_cast<Csn>(
        static_cast<double>(options_.staleness_slo) *
        options_.recover_fraction);
    if (snapshot.staleness <= recover_at) {
      if (++consecutive_ok_ >= options_.ok_to_recover) {
        shedding_ = false;
        consecutive_ok_ = 0;
        consecutive_violations_ = 0;
        stats_.shed_exits++;
      }
    } else {
      consecutive_ok_ = 0;
    }
  }
  return shedding_ != was_shedding;
}

void IntervalController::Reset() {
  std::lock_guard<std::mutex> lk(mu_);
  target_rows_ = std::clamp(options_.initial_target_rows,
                            options_.min_target_rows,
                            options_.max_target_rows);
  pause_ = std::chrono::microseconds(0);
  shedding_ = false;
  consecutive_violations_ = 0;
  consecutive_ok_ = 0;
}

void IntervalController::OnTransientStepFailure() {
  std::lock_guard<std::mutex> lk(mu_);
  if (target_rows_ > options_.min_target_rows) {
    ShrinkLocked();
    stats_.transient_shrinks++;
  }
  EscalatePauseLocked();
}

size_t IntervalController::target_rows() const {
  std::lock_guard<std::mutex> lk(mu_);
  return target_rows_;
}

std::chrono::microseconds IntervalController::recommended_pause() const {
  std::lock_guard<std::mutex> lk(mu_);
  return pause_;
}

bool IntervalController::shedding() const {
  std::lock_guard<std::mutex> lk(mu_);
  return shedding_;
}

IntervalController::Stats IntervalController::GetStats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

Csn AdaptiveContentionInterval::NextBoundary(Csn from, Csn ready,
                                             const DeltaTable& delta) {
  if (from >= ready) return from;
  return delta.TsAfterRows(from, controller_->target_rows(), ready);
}

Csn AdaptiveContentionInterval::NextBoundaryFiltered(
    Csn from, Csn ready, const DeltaTable& delta,
    const DeltaPartitionFilter* filter) {
  if (from >= ready) return from;
  return delta.TsAfterRows(from, controller_->target_rows(), ready, filter);
}

}  // namespace rollview
