// Copyright 2026 The rollview Authors.
//
// Propagator: the continuous asynchronous propagation process of Figure 5.
// Each Step() chooses an interval delta and runs
// ComputeDelta(V, [t_cur,...,t_cur], t_cur + delta); after a complete step
// the view delta is accurate from the propagation start to the new t_cur,
// which becomes the view-delta high-water mark (Theorem 4.2).

#ifndef ROLLVIEW_IVM_PROPAGATE_H_
#define ROLLVIEW_IVM_PROPAGATE_H_

#include <memory>

#include "ivm/compute_delta.h"
#include "ivm/interval_policy.h"
#include "ivm/query_runner.h"

namespace rollview {

struct PropagatorOptions {
  RunnerOptions runner;
  ComputeDeltaOptions compute_delta;
};

class Propagator {
 public:
  Propagator(ViewManager* views, View* view,
             std::unique_ptr<IntervalPolicy> policy,
             PropagatorOptions options = PropagatorOptions{});

  // Runs one complete iteration of the Figure 5 loop. Returns true if the
  // high-water mark advanced, false if there was nothing to propagate.
  Result<bool> Step();

  // Steps until the high-water mark reaches `target` (which must become
  // reachable, i.e. capture must eventually pass it).
  Status RunUntil(Csn target);

  Csn high_water_mark() const { return t_cur_; }

  QueryRunner* runner() { return &runner_; }
  const ComputeDeltaStats& compute_delta_stats() const {
    return compute_delta_.stats();
  }

  // Step tracing: each Step() that does work becomes one root span with
  // the interval (t_a, t_b]; ComputeDelta's query tree nests under it. See
  // RollingPropagator::set_tracer.
  void set_tracer(obs::StepTracer* tracer);

 private:
  // Durable cursor publication after a completed step (uniform frontiers:
  // n copies of t_cur_). See RollingPropagator::PublishCursors.
  void PublishCursors(uint64_t completed_seq);

  ViewManager* views_;
  View* view_;
  std::unique_ptr<IntervalPolicy> policy_;
  QueryRunner runner_;
  ComputeDeltaOp compute_delta_;
  StepUndoLog undo_log_;
  uint64_t step_seq_ = 1;
  Csn t_cur_;
  obs::StepTracer* tracer_ = nullptr;
};

}  // namespace rollview

#endif  // ROLLVIEW_IVM_PROPAGATE_H_
