#include "ivm/query_runner.h"

#include <cassert>
#include <thread>

#include "capture/log_capture.h"
#include "common/fault_injector.h"
#include "obs/registry.h"

namespace rollview {

QueryRunner::QueryRunner(ViewManager* views, View* view,
                         RunnerOptions options)
    : views_(views), view_(view), options_(options) {}

void QueryRunner::RegisterMetrics(obs::MetricsRegistry* registry,
                                  const void* owner) const {
  // Same metric schema MaintenanceService::RegisterMetrics exports from its
  // post-step mirrors, sourced straight from the (unsynchronized) stats
  // struct -- quiescent-scrape only.
  const std::string& v = view_->name;
  const RunnerStats* s = &stats_;
  registry->RegisterCounterFn(
      "rollview_queries_total", {{"view", v}, {"kind", "forward"}},
      [s] { return s->forward_queries; }, owner);
  registry->RegisterCounterFn(
      "rollview_queries_total", {{"view", v}, {"kind", "compensation"}},
      [s] { return s->comp_queries; }, owner);
  registry->RegisterCounterFn(
      "rollview_query_retries_total", {{"view", v}, {"cause", "aborted"}},
      [s] { return s->retries_aborted; }, owner);
  registry->RegisterCounterFn(
      "rollview_query_retries_total", {{"view", v}, {"cause", "busy"}},
      [s] { return s->retries_busy; }, owner);
  registry->RegisterCounterFn("rollview_view_delta_rows_total", {{"view", v}},
                              [s] { return s->rows_appended; }, owner);
  registry->RegisterCounterFn(
      "rollview_exec_rows_total", {{"view", v}, {"dir", "in"}},
      [s] { return s->exec.input_rows; }, owner);
  registry->RegisterCounterFn(
      "rollview_exec_rows_total", {{"view", v}, {"dir", "out"}},
      [s] { return s->exec.output_rows; }, owner);
  registry->RegisterCounterFn("rollview_exec_index_probes_total",
                              {{"view", v}},
                              [s] { return s->exec.index_probes; }, owner);
  registry->RegisterCounterFn(
      "rollview_exec_pushdown_filtered_total", {{"view", v}},
      [s] { return s->exec.pushdown_filtered; }, owner);
  registry->RegisterCounterFn(
      "rollview_exec_rows_moved_total", {{"view", v}, {"path", "copied"}},
      [s] { return s->exec.rows_copied; }, owner);
  registry->RegisterCounterFn(
      "rollview_exec_rows_moved_total", {{"view", v}, {"path", "borrowed"}},
      [s] { return s->exec.rows_borrowed; }, owner);
  registry->RegisterCounterFn(
      "rollview_exec_bytes_moved_total", {{"view", v}, {"path", "copied"}},
      [s] { return s->exec.bytes_copied; }, owner);
  registry->RegisterCounterFn(
      "rollview_exec_bytes_moved_total", {{"view", v}, {"path", "borrowed"}},
      [s] { return s->exec.bytes_borrowed; }, owner);
  registry->RegisterCounterFn("rollview_exec_nanos_total", {{"view", v}},
                              [s] { return s->exec.exec_nanos; }, owner);
  registry->RegisterCounterFn(
      "rollview_build_cache_queries_total", {{"view", v}, {"outcome", "hit"}},
      [s] { return s->exec.build_cache_hits; }, owner);
  registry->RegisterCounterFn(
      "rollview_build_cache_queries_total", {{"view", v}, {"outcome", "miss"}},
      [s] { return s->exec.build_cache_misses; }, owner);
  registry->RegisterCounterFn("rollview_build_nanos_total", {{"view", v}},
                              [s] { return s->exec.build_nanos; }, owner);
  registry->RegisterCounterFn("rollview_compiled_queries_total", {{"view", v}},
                              [s] { return s->exec.compiled_queries; }, owner);
  registry->RegisterCounterFn(
      "rollview_compiled_probe_rows_total", {{"view", v}},
      [s] { return s->exec.compiled_probe_rows; }, owner);
  registry->RegisterCounterFn(
      "rollview_compiled_kernel_evals_total", {{"view", v}},
      [s] { return s->exec.compiled_kernel_evals; }, owner);
  registry->RegisterCounterFn(
      "rollview_half_join_probes_total", {{"view", v}, {"outcome", "hit"}},
      [s] { return s->exec.half_join_hits; }, owner);
  registry->RegisterCounterFn(
      "rollview_half_join_probes_total", {{"view", v}, {"outcome", "miss"}},
      [s] { return s->exec.half_join_misses; }, owner);
  registry->RegisterCounterFn(
      "rollview_half_join_maintenance_total",
      {{"view", v}, {"kind", "advance"}},
      [s] { return s->exec.half_join_advances; }, owner);
  registry->RegisterCounterFn(
      "rollview_half_join_maintenance_total",
      {{"view", v}, {"kind", "rebuild"}},
      [s] { return s->exec.half_join_rebuilds; }, owner);
  registry->RegisterCounterFn(
      "rollview_half_join_advance_rows_total", {{"view", v}},
      [s] { return s->exec.half_join_advance_rows; }, owner);
}

Status QueryRunner::EnsureSpecialTable() {
  if (special_table_ != kInvalidTableId) return Status::OK();
  // One probe table per view; capture must be in log mode so that DPropR
  // (LogCapture) resolves the marker's transaction to a CSN.
  std::string name = "__uow_probe_" + view_->name;
  Result<TableId> existing = views_->db()->FindTable(name);
  if (existing.ok()) {
    special_table_ = existing.value();
    return Status::OK();
  }
  Schema schema({Column{"marker", ValueType::kInt64}});
  ROLLVIEW_ASSIGN_OR_RETURN(special_table_,
                            views_->db()->CreateTable(name, schema));
  return Status::OK();
}

Result<Csn> QueryRunner::Execute(const PropQuery& q) {
  assert(q.view == view_);
  // The query may only read delta ranges that capture has fully published.
  Csn need = kNullCsn;
  for (const PropTerm& t : q.terms) {
    if (t.is_delta && t.range.hi > need) need = t.range.hi;
  }
  if (need != kNullCsn && views_->capture() != nullptr) {
    ROLLVIEW_RETURN_NOT_OK(
        views_->capture()->WaitForCsn(need, options_.capture_wait_timeout));
  }

  int attempts = 0;
  while (true) {
    Result<Csn> r = ExecuteOnce(q);
    if (r.ok()) {
      if (tracer_ != nullptr && attempts > 0) {
        tracer_->AttrCurrent("query_retries", attempts);
      }
      return r;
    }
    if (!r.status().IsTransient() || ++attempts > options_.max_retries) {
      return r;
    }
    stats_.retries++;
    if (r.status().IsTxnAborted()) {
      stats_.retries_aborted++;
    } else {
      stats_.retries_busy++;
    }
    std::this_thread::sleep_for(options_.retry_backoff * attempts);
  }
}

Status QueryRunner::CancelFailedStep(StepUndoLog* log) {
  if (log->empty()) return Status::OK();
  Db* db = views_->db();
  obs::ScopedSpan undo_span(tracer_, obs::SpanKind::kUndo);
  undo_span.Attr("rows", static_cast<int64_t>(log->rows().size()));
  if (tracer_ != nullptr) tracer_->MarkUndone();
  // Deliberately NOT inside a FaultInjector::Scope: the cancellation is the
  // recovery path, so injected maintenance faults do not apply to it. Real
  // transient conflicts still can, hence the bounded retry loop.
  Status last;
  const uint32_t part = partition_ != nullptr ? partition_->index : 0;
  for (int attempt = 0; attempt < 64; ++attempt) {
    std::unique_ptr<Txn> txn = db->Begin(TxnClass::kMaintenance);
    for (const DeltaRow& row : log->rows()) {
      DeltaRow neg = row;
      neg.count = -neg.count;
      // Same step sequence as the rows being cancelled: at recovery the pair
      // is included or excluded together, net zero either way.
      db->BufferDeltaAppend(txn.get(), view_->view_delta.get(),
                            std::move(neg), view_->id, step_seq_, part);
    }
    last = db->Commit(txn.get());
    if (last.ok()) {
      log->Clear();
      undo_span.Attr("attempts", attempt + 1);
      return Status::OK();
    }
    db->Abort(txn.get()).ok();
    if (!last.IsTransient()) break;
    std::this_thread::sleep_for(options_.retry_backoff * (attempt + 1));
  }
  undo_span.set_ok(false);
  return Status::Internal(
      "could not cancel a partially committed propagation step: " +
      last.ToString());
}

Result<Csn> QueryRunner::ExecuteOnce(const PropQuery& q) {
  Db* db = views_->db();
  const ResolvedView& rv = view_->resolved;
  // Propagation transactions are the scoped fault-injection target: an
  // armed injector aborts/stalls maintenance here without touching updaters.
  FaultInjector::Scope fault_scope;
  std::unique_ptr<Txn> txn = db->Begin(TxnClass::kMaintenance);

  auto fail = [&](Status s) -> Result<Csn> {
    db->Abort(txn.get()).ok();
    return s;
  };

  // Materialize the delta-range terms as zero-copy borrows: ScanRefs pins
  // the delta store (pruning defers) and the executor reads the rows in
  // place -- the pins outlive the execution below. In trigger-capture mode
  // the delta table is part of updaters' footprints, so reading it requires
  // an S lock on its resource (this is the contention experiment E7
  // measures).
  // Compiled dispatch: forward queries (exactly one delta term) whose term
  // has a compiled delta program probe materialized half-join views instead
  // of re-joining the base terms (ra/delta_program.h).
  size_t delta_term = q.num_terms();
  if (q.NumDeltaTerms() == 1) {
    for (size_t i = 0; i < q.num_terms(); ++i) {
      if (q.terms[i].is_delta) delta_term = i;
    }
  }
  const bool compiled_eligible =
      options_.use_compiled_programs && view_->programs != nullptr &&
      delta_term < q.num_terms() && view_->programs->compiled(delta_term);

  // Compiled compensation (two-term views): drive the smaller delta side
  // and probe the other term's advancing window index instead of re-joining
  // both ranges from scratch -- rolling compensation windows advance
  // monotonically, so the index retires/admits only edge rows. The windowed
  // term is not materialized up front (walking the whole drift range per
  // query is the quadratic cost this path removes); it is filled in lazily
  // if the compiled attempt falls back. Partitioned strips stay
  // interpreted: the shared window is not partition-filtered.
  size_t window_term = q.num_terms();
  if (options_.use_compiled_programs && view_->programs != nullptr &&
      q.num_terms() == 2 && q.NumDeltaTerms() == 2 &&
      (partition_ == nullptr || !partition_->enabled()) &&
      db->delta(rv.table(0)) != nullptr && db->delta(rv.table(1)) != nullptr) {
    const size_t c0 = db->delta(rv.table(0))->CountInRange(q.terms[0].range);
    const size_t c1 = db->delta(rv.table(1))->CountInRange(q.terms[1].range);
    window_term = c0 <= c1 ? 1 : 0;
  }

  std::vector<DeltaRowRefs> materialized(q.num_terms());
  std::vector<DeltaTable::Pin> pins(q.num_terms());
  JoinQuery jq;
  jq.terms.reserve(q.num_terms());
  for (size_t i = 0; i < q.num_terms(); ++i) {
    TableId tid = rv.table(i);
    if (q.terms[i].is_delta) {
      Status s = db->LockDeltaShared(txn.get(), tid);
      if (!s.ok()) return fail(s);
      if (i == window_term) {
        // Served by the compensation window index; materialized lazily only
        // if the compiled attempt falls back (jq holds the vector's address,
        // so filling it later is safe).
      } else if (partition_ != nullptr && partition_->enabled()) {
        DeltaPartitionFilter f = partition_->FilterFor(i);
        materialized[i] =
            db->delta(tid)->ScanRefs(q.terms[i].range, &f, &pins[i]);
      } else {
        materialized[i] = db->delta(tid)->ScanRefs(q.terms[i].range, &pins[i]);
      }
      jq.terms.push_back(TermSource::RowRefs(tid, &materialized[i]));
    } else {
      // Lock before evaluation so every base term is seen at one time (the
      // commit CSN); strict 2PL holds the lock through commit.
      Status s = db->LockTableShared(txn.get(), tid);
      if (!s.ok()) return fail(s);
      if (compiled_eligible) {
        // Half-join freshening reads the member delta tables (telescoping
        // advance); in trigger-capture mode those are part of updaters'
        // footprints and need their own S locks (no-op in log mode).
        s = db->LockDeltaShared(txn.get(), tid);
        if (!s.ok()) return fail(s);
      }
      jq.terms.push_back(TermSource::BaseCurrent(tid));
    }
  }
  jq.equi_joins = rv.def().joins;
  jq.residual = rv.def().selection;
  jq.projection = rv.def().projection;
  jq.sign = q.sign;
  // Every base table is S-locked above and this transaction writes only the
  // view delta, so the current-visible state of each base term equals the
  // snapshot at the stable CSN observed after lock acquisition -- which
  // makes the terms servable from the snapshot-keyed BuildCache.
  jq.current_snapshot_hint = db->stable_csn();

  DeltaRows out_rows;
  bool have_rows = false;
  if (compiled_eligible) {
    // Base tables are S-locked (frozen) and their deltas delta-S-locked, so
    // half-join freshening sees a stable member state; publication through
    // the capture high-water mark decides advance vs. rebuild. Any failure
    // falls through to the interpreted path within the same transaction.
    const Csn delta_ready = views_->capture() != nullptr
                                ? views_->capture()->high_water_mark()
                                : db->stable_csn();
    Result<DeltaRows> cr = view_->programs->ExecuteForward(
        delta_term, materialized[delta_term], q.sign, delta_ready,
        &stats_.exec);
    if (cr.ok()) {
      out_rows = std::move(cr).value();
      have_rows = true;
    }
  }
  if (!have_rows && window_term < q.num_terms()) {
    // Any failure falls through to the interpreted path within the same
    // transaction (after materializing the windowed term it skipped).
    const size_t dt = 1 - window_term;
    Result<DeltaRows> cr = view_->programs->ExecuteCompensation(
        dt, materialized[dt], window_term, q.terms[window_term].range, q.sign,
        &stats_.exec);
    if (cr.ok()) {
      out_rows = std::move(cr).value();
      have_rows = true;
    } else {
      const TableId wt = rv.table(window_term);
      materialized[window_term] =
          db->delta(wt)->ScanRefs(q.terms[window_term].range,
                                  &pins[window_term]);
    }
  }
  if (!have_rows) {
    JoinExecutor exec(db,
                      options_.use_build_cache ? db->build_cache() : nullptr);
    Result<DeltaRows> rows = exec.Execute(jq, txn.get(), &stats_.exec);
    if (!rows.ok()) return fail(rows.status());
    out_rows = std::move(rows).value();
  }

  // When a step-undo log is attached, keep a copy of what this transaction
  // publishes so a later query's failure can cancel it (see StepUndoLog).
  DeltaRows undo_copy;
  if (undo_log_ != nullptr) undo_copy = out_rows;
  size_t appended = out_rows.size();
  Csn csn;
  {
    // The append + commit is where this query's rows become durable
    // (Db::Commit WAL-logs the buffered view-delta appends just before the
    // commit record); the span covers exactly that window.
    obs::ScopedSpan wal_span(tracer_, obs::SpanKind::kWalAppend);
    wal_span.Attr("rows", static_cast<int64_t>(appended));
    const uint32_t part = partition_ != nullptr ? partition_->index : 0;
    for (DeltaRow& row : out_rows) {
      db->BufferDeltaAppend(txn.get(), view_->view_delta.get(),
                            std::move(row), view_->id, step_seq_, part);
    }

    if (options_.use_special_table_csn_resolution) {
      Status es = EnsureSpecialTable();
      if (!es.ok()) {
        wal_span.set_ok(false);
        return fail(es);
      }
      es = db->Insert(txn.get(), special_table_, Tuple{Value(++special_seq_)});
      if (!es.ok()) {
        wal_span.set_ok(false);
        return fail(es);
      }
    }

    Status s = db->Commit(txn.get());
    if (!s.ok()) {
      wal_span.set_ok(false);
      return fail(s);
    }
    csn = txn->commit_csn();
  }
  if (undo_log_ != nullptr) undo_log_->Record(std::move(undo_copy));
  if (tracer_ != nullptr) {
    // Annotate the caller's query span (forward/compensation) and roll the
    // rows into the step's root count.
    tracer_->AttrCurrent("rows", static_cast<int64_t>(appended));
    tracer_->AttrCurrent("csn", static_cast<int64_t>(csn));
    tracer_->AddStepRows(appended);
  }

  if (options_.use_special_table_csn_resolution &&
      views_->capture() != nullptr) {
    // The prototype's round-trip: wait for DPropR to capture the marker,
    // then resolve this transaction's serialization time via the UOW table
    // (Sec. 5). It must agree with the engine-reported commit CSN.
    ROLLVIEW_RETURN_NOT_OK(views_->capture()->WaitForCsn(csn));
    auto entry = db->uow()->LookupTxn(txn->id());
    if (!entry.has_value()) {
      return Status::Internal("UOW table missing propagation transaction");
    }
    if (entry->csn != csn) {
      return Status::Internal("UOW-resolved CSN disagrees with commit CSN");
    }
    csn = entry->csn;
  }

  stats_.queries++;
  stats_.rows_appended += appended;
  if (q.NumDeltaTerms() == 1) {
    stats_.forward_queries++;
  } else {
    stats_.comp_queries++;
  }

  if (tracker_ != nullptr) {
    RegionTracker::Region region;
    region.extent.reserve(q.num_terms());
    for (const PropTerm& t : q.terms) {
      region.extent.push_back(t.is_delta ? t.range : CsnRange{0, csn});
    }
    region.sign = q.sign;
    region.label = q.ToString() + " @t" + std::to_string(csn);
    tracker_->Record(std::move(region));
  }
  return csn;
}

}  // namespace rollview
