#include "ivm/prop_query.h"

namespace rollview {

bool PropQuery::HasBaseTerm() const {
  for (const PropTerm& t : terms) {
    if (!t.is_delta) return true;
  }
  return false;
}

size_t PropQuery::NumDeltaTerms() const {
  size_t n = 0;
  for (const PropTerm& t : terms) {
    if (t.is_delta) ++n;
  }
  return n;
}

std::string PropQuery::ToString() const {
  std::string out = sign < 0 ? "-" : "";
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out += " * ";
    out += "R" + std::to_string(i + 1);
    if (terms[i].is_delta) out += terms[i].range.ToString();
  }
  return out;
}

}  // namespace rollview
