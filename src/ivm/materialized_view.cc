#include "ivm/materialized_view.h"

#include <mutex>

namespace rollview {

void MaterializedView::Replace(CountMap contents, Csn csn) {
  std::unique_lock<std::shared_mutex> lk(latch_);
  map_ = std::move(contents);
  csn_ = csn;
}

Status MaterializedView::Merge(const DeltaRows& delta, Csn new_csn) {
  std::unique_lock<std::shared_mutex> lk(latch_);
  // First pass: validate against a scratch aggregation so a bad delta does
  // not corrupt the view.
  CountMap net = ToCountMap(delta);
  for (const auto& [tuple, count] : net) {
    auto it = map_.find(tuple);
    int64_t existing = (it == map_.end()) ? 0 : it->second;
    if (existing + count < 0) {
      return Status::Internal(
          "merge to csn " + std::to_string(new_csn) +
          " (view at csn " + std::to_string(csn_) +
          ") would drive count of tuple " + TupleToString(tuple) + " to " +
          std::to_string(existing + count));
    }
  }
  for (const auto& [tuple, count] : net) {
    auto [it, inserted] = map_.try_emplace(tuple, count);
    if (!inserted) {
      it->second += count;
      if (it->second == 0) map_.erase(it);
    } else if (count == 0) {
      map_.erase(it);
    }
  }
  csn_ = new_csn;
  return Status::OK();
}

void MaterializedView::Snapshot(CountMap* contents, Csn* csn) const {
  std::shared_lock<std::shared_mutex> lk(latch_);
  *contents = map_;
  *csn = csn_;
}

CountMap MaterializedView::Contents() const {
  std::shared_lock<std::shared_mutex> lk(latch_);
  return map_;
}

DeltaRows MaterializedView::AsDeltaRows() const {
  std::shared_lock<std::shared_mutex> lk(latch_);
  DeltaRows out;
  out.reserve(map_.size());
  for (const auto& [tuple, count] : map_) {
    out.emplace_back(tuple, count, kNullCsn);
  }
  return out;
}

size_t MaterializedView::cardinality() const {
  std::shared_lock<std::shared_mutex> lk(latch_);
  return map_.size();
}

int64_t MaterializedView::TotalCount() const {
  std::shared_lock<std::shared_mutex> lk(latch_);
  int64_t n = 0;
  for (const auto& [tuple, count] : map_) n += count;
  return n;
}

}  // namespace rollview
