#include "ivm/materialized_view.h"

#include <iterator>
#include <mutex>
#include <utility>

namespace rollview {

void MaterializedView::Replace(CountMap contents, Csn csn) {
  std::unique_lock<std::shared_mutex> lk(latch_);
  map_ = std::move(contents);
  digest_ = ViewDigest::Compute(map_);
  csn_ = csn;
}

Status MaterializedView::Merge(const DeltaRows& delta, Csn new_csn) {
  std::unique_lock<std::shared_mutex> lk(latch_);
  // First pass: validate against a scratch aggregation so a bad delta does
  // not corrupt the view.
  CountMap net = ToCountMap(delta);
  for (const auto& [tuple, count] : net) {
    auto it = map_.find(tuple);
    int64_t existing = (it == map_.end()) ? 0 : it->second;
    if (existing + count < 0) {
      return Status::Internal(
          "merge to csn " + std::to_string(new_csn) +
          " (view at csn " + std::to_string(csn_) +
          ") would drive count of tuple " + TupleToString(tuple) + " to " +
          std::to_string(existing + count));
    }
  }
  for (const auto& [tuple, count] : net) {
    if (count == 0) continue;
    auto it = map_.find(tuple);
    const int64_t old_count = (it == map_.end()) ? 0 : it->second;
    const int64_t new_count = old_count + count;
    digest_.Update(tuple, old_count, new_count);
    if (new_count == 0) {
      map_.erase(it);
    } else if (it == map_.end()) {
      map_.emplace(tuple, new_count);
    } else {
      it->second = new_count;
    }
  }
  csn_ = new_csn;
  return Status::OK();
}

void MaterializedView::Snapshot(CountMap* contents, Csn* csn) const {
  std::shared_lock<std::shared_mutex> lk(latch_);
  *contents = map_;
  *csn = csn_;
}

void MaterializedView::SnapshotWithDigest(CountMap* contents, Csn* csn,
                                          ViewDigest* digest) const {
  std::shared_lock<std::shared_mutex> lk(latch_);
  if (contents != nullptr) *contents = map_;
  if (csn != nullptr) *csn = csn_;
  if (digest != nullptr) *digest = digest_;
}

void MaterializedView::ScrubSnapshot(ViewDigest* recomputed,
                                     ViewDigest* incremental,
                                     Csn* csn) const {
  std::shared_lock<std::shared_mutex> lk(latch_);
  if (recomputed != nullptr) *recomputed = ViewDigest::Compute(map_);
  if (incremental != nullptr) *incremental = digest_;
  if (csn != nullptr) *csn = csn_;
}

ViewDigest MaterializedView::digest() const {
  std::shared_lock<std::shared_mutex> lk(latch_);
  return digest_;
}

void MaterializedView::ResetDigest() {
  std::unique_lock<std::shared_mutex> lk(latch_);
  digest_ = ViewDigest::Compute(map_);
}

CountMap MaterializedView::Contents() const {
  std::shared_lock<std::shared_mutex> lk(latch_);
  return map_;
}

DeltaRows MaterializedView::AsDeltaRows() const {
  std::shared_lock<std::shared_mutex> lk(latch_);
  DeltaRows out;
  out.reserve(map_.size());
  for (const auto& [tuple, count] : map_) {
    out.emplace_back(tuple, count, kNullCsn);
  }
  return out;
}

size_t MaterializedView::cardinality() const {
  std::shared_lock<std::shared_mutex> lk(latch_);
  return map_.size();
}

int64_t MaterializedView::TotalCount() const {
  std::shared_lock<std::shared_mutex> lk(latch_);
  int64_t n = 0;
  for (const auto& [tuple, count] : map_) n += count;
  return n;
}

bool MaterializedView::CorruptRowBit(uint64_t seed) {
  std::unique_lock<std::shared_mutex> lk(latch_);
  if (map_.empty()) return false;
  auto it = map_.begin();
  std::advance(it, static_cast<long>(seed % map_.size()));
  // Prefer damaging an integer payload cell: the flipped tuple re-keys the
  // map (possibly colliding with an existing row), exactly what a bit flip
  // in row storage would do to a hash-organized extent.
  Tuple tuple = it->first;
  for (size_t col = 0; col < tuple.size(); ++col) {
    if (tuple[col].type() != ValueType::kInt64) continue;
    const int64_t count = it->second;
    int64_t v = tuple[col].AsInt64();
    v ^= static_cast<int64_t>(1) << ((seed / 7) % 16);
    tuple[col] = Value(v);
    map_.erase(it);
    auto [slot, inserted] = map_.try_emplace(std::move(tuple), count);
    if (!inserted) {
      slot->second += count;
      if (slot->second == 0) map_.erase(slot);
    }
    return true;
  }
  // No integer column: flip a low bit of the multiplicity instead.
  it->second ^= static_cast<int64_t>(1) << (seed % 3);
  if (it->second == 0) map_.erase(it);
  return true;
}

void MaterializedView::TamperDigest(uint64_t seed) {
  std::unique_lock<std::shared_mutex> lk(latch_);
  digest_.FlipBitForTest(seed);
}

}  // namespace rollview
