// Copyright 2026 The rollview Authors.
//
// PropQuery: one propagation query Q^V (paper Sec. 2) -- the view's join
// with one or more base relations replaced by delta-table range selections.
// Q[i] is either the base table R^i (seen at the executing transaction's
// time) or R^i_{lo,hi} = sigma_{lo,hi}(Delta^R_i).
//
// The paper's terminology (Sec. 3.2, footnote 1):
//  * a *forward query* has exactly one delta term;
//  * a *compensation query* has more than one.

#ifndef ROLLVIEW_IVM_PROP_QUERY_H_
#define ROLLVIEW_IVM_PROP_QUERY_H_

#include <string>
#include <vector>

#include "common/csn.h"
#include "ivm/view.h"

namespace rollview {

struct PropTerm {
  bool is_delta = false;
  CsnRange range;  // meaningful iff is_delta

  static PropTerm Base() { return PropTerm{false, {}}; }
  static PropTerm Delta(Csn lo, Csn hi) {
    return PropTerm{true, CsnRange{lo, hi}};
  }
};

struct PropQuery {
  const View* view = nullptr;
  std::vector<PropTerm> terms;  // one per view term
  int64_t sign = +1;

  // The all-base query for `view` (the starting point of ComputeDelta).
  static PropQuery AllBase(const View* view, int64_t sign = +1) {
    PropQuery q;
    q.view = view;
    q.terms.assign(view->resolved.num_terms(), PropTerm::Base());
    q.sign = sign;
    return q;
  }

  size_t num_terms() const { return terms.size(); }
  bool HasBaseTerm() const;
  size_t NumDeltaTerms() const;
  // -Q: flips the sign (the paper's negation operator applied to a query).
  PropQuery Negated() const {
    PropQuery q = *this;
    q.sign = -q.sign;
    return q;
  }

  // E.g. "-R1(3,7] * R2 * R3(0,7]" -- delta terms show their range.
  std::string ToString() const;
};

}  // namespace rollview

#endif  // ROLLVIEW_IVM_PROP_QUERY_H_
