#include "schema/tuple.h"

namespace rollview {

size_t HashTuple(const Tuple& t) {
  size_t h = 0x243f6a8885a308d3ULL;
  for (const Value& v : t) {
    // boost::hash_combine-style mixing.
    h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

std::string TupleToString(const Tuple& t) {
  std::string out = "[";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += t[i].ToString();
  }
  out += "]";
  return out;
}

std::string DeltaRow::ToString() const {
  std::string out = "{";
  out += TupleToString(tuple);
  out += ", count=" + std::to_string(count);
  out += ", ts=";
  out += (ts == kNullCsn) ? "null" : std::to_string(ts);
  out += "}";
  return out;
}

}  // namespace rollview
