// Copyright 2026 The rollview Authors.
//
// Schema: an ordered list of columns. Base tables, delta tables, and view
// results all describe their tuples with a Schema. Per the paper (Sec. 2),
// the count and timestamp attributes of delta tables are *implicit*: they are
// carried on DeltaRow (schema/tuple.h), not modeled as schema columns.

#ifndef ROLLVIEW_SCHEMA_SCHEMA_H_
#define ROLLVIEW_SCHEMA_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "schema/column.h"

namespace rollview {

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  // Index of the column with the given name, or nullopt.
  std::optional<size_t> IndexOf(const std::string& name) const;

  // Concatenation, used when joining: the joined tuple's schema is the
  // left schema followed by the right schema. Duplicate names are permitted
  // (positional resolution disambiguates).
  Schema Concat(const Schema& other) const;

  // Schema containing the given subset of columns, in the given order.
  Schema Project(const std::vector<size_t>& indices) const;

  // Verifies a tuple's cells match the column types (NULL allowed anywhere).
  Status ValidateTuple(const std::vector<Value>& cells) const;

  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.columns_ == b.columns_;
  }

 private:
  std::vector<Column> columns_;
};

}  // namespace rollview

#endif  // ROLLVIEW_SCHEMA_SCHEMA_H_
