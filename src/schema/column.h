// Copyright 2026 The rollview Authors.

#ifndef ROLLVIEW_SCHEMA_COLUMN_H_
#define ROLLVIEW_SCHEMA_COLUMN_H_

#include <string>

#include "common/value.h"

namespace rollview {

// A named, typed column. Columns are identified positionally within a
// Schema; names exist for API ergonomics and debugging output.
struct Column {
  std::string name;
  ValueType type = ValueType::kInt64;

  friend bool operator==(const Column& a, const Column& b) {
    return a.name == b.name && a.type == b.type;
  }
};

}  // namespace rollview

#endif  // ROLLVIEW_SCHEMA_COLUMN_H_
