#include "schema/schema.h"

namespace rollview {

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

Schema Schema::Concat(const Schema& other) const {
  std::vector<Column> cols = columns_;
  cols.insert(cols.end(), other.columns_.begin(), other.columns_.end());
  return Schema(std::move(cols));
}

Schema Schema::Project(const std::vector<size_t>& indices) const {
  std::vector<Column> cols;
  cols.reserve(indices.size());
  for (size_t i : indices) {
    cols.push_back(columns_[i]);
  }
  return Schema(std::move(cols));
}

Status Schema::ValidateTuple(const std::vector<Value>& cells) const {
  if (cells.size() != columns_.size()) {
    return Status::InvalidArgument(
        "tuple has " + std::to_string(cells.size()) + " cells, schema has " +
        std::to_string(columns_.size()) + " columns");
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].is_null()) continue;
    if (cells[i].type() != columns_[i].type) {
      return Status::InvalidArgument(
          "column '" + columns_[i].name + "' expects " +
          ValueTypeName(columns_[i].type) + ", got " +
          ValueTypeName(cells[i].type()));
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += ValueTypeName(columns_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace rollview
