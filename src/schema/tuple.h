// Copyright 2026 The rollview Authors.
//
// Tuple: a row of Values. DeltaRow: a tuple plus the paper's implicit
// (count, timestamp) attributes (Sec. 2):
//   * count +n  = insertion of n copies;  -n = deletion of n copies
//   * timestamp = commit time (CSN) of the transaction that made the change;
//     kNullCsn for base-table tuples (their timestamp is implicitly null)
//
// Base tables are represented uniformly as count=+1, ts=null rows wherever
// the relational operators need a common currency.

#ifndef ROLLVIEW_SCHEMA_TUPLE_H_
#define ROLLVIEW_SCHEMA_TUPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/csn.h"
#include "common/value.h"

namespace rollview {

using Tuple = std::vector<Value>;

size_t HashTuple(const Tuple& t);
std::string TupleToString(const Tuple& t);

struct TupleHasher {
  size_t operator()(const Tuple& t) const { return HashTuple(t); }
};

struct DeltaRow {
  Tuple tuple;
  int64_t count = 0;
  Csn ts = kNullCsn;

  DeltaRow() = default;
  DeltaRow(Tuple tuple_in, int64_t count_in, Csn ts_in)
      : tuple(std::move(tuple_in)), count(count_in), ts(ts_in) {}

  friend bool operator==(const DeltaRow& a, const DeltaRow& b) {
    return a.count == b.count && a.ts == b.ts && a.tuple == b.tuple;
  }

  std::string ToString() const;
};

// A multiset of delta rows: the common representation of delta-table
// contents and of propagation-query results.
using DeltaRows = std::vector<DeltaRow>;

// Borrowed view of delta rows owned elsewhere (see DeltaTable::ScanRefs):
// the zero-copy counterpart of DeltaRows for read-only consumers.
using DeltaRowRefs = std::vector<const DeltaRow*>;

}  // namespace rollview

#endif  // ROLLVIEW_SCHEMA_TUPLE_H_
