// Copyright 2026 The rollview Authors.

#include "obs/registry.h"

#include <algorithm>
#include <cstdio>

namespace rollview {
namespace obs {

namespace {

Labels Canonical(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '"':
        *out += "\\\"";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
}

// Prometheus label block: {k1="v1",k2="v2"}, empty string for no labels.
// `extra` appends one more pair (used for quantile labels).
std::string LabelBlock(const Labels& labels,
                       const std::pair<std::string, std::string>* extra =
                           nullptr) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    AppendEscaped(&out, v);
    out += "\"";
  }
  if (extra != nullptr) {
    if (!first) out += ",";
    out += extra->first;
    out += "=\"";
    AppendEscaped(&out, extra->second);
    out += "\"";
  }
  out += "}";
  return out;
}

void AppendJsonString(std::string* out, const std::string& s) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '"':
        *out += "\\\"";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

std::string JsonLabels(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    AppendJsonString(&out, k);
    out += ":";
    AppendJsonString(&out, v);
  }
  out += "}";
  return out;
}

HistogramSummary Summarize(const LatencyHistogram& h) {
  HistogramSummary s;
  s.count = h.count();
  s.sum_nanos = h.sum_nanos();
  s.max_nanos = h.max_nanos();
  s.p50 = h.Percentile(0.50);
  s.p95 = h.Percentile(0.95);
  s.p99 = h.Percentile(0.99);
  return s;
}

}  // namespace

const Sample* MetricsSnapshot::Find(const std::string& name,
                                    const Labels& labels) const {
  Labels canon = Canonical(labels);
  for (const Sample& s : samples_) {
    if (s.name == name && s.labels == canon) return &s;
  }
  return nullptr;
}

uint64_t MetricsSnapshot::CounterValue(const std::string& name,
                                       const Labels& labels) const {
  const Sample* s = Find(name, labels);
  return (s != nullptr && s->kind == MetricKind::kCounter) ? s->counter : 0;
}

uint64_t MetricsSnapshot::CounterTotal(const std::string& name) const {
  uint64_t total = 0;
  for (const Sample& s : samples_) {
    if (s.name == name && s.kind == MetricKind::kCounter) total += s.counter;
  }
  return total;
}

int64_t MetricsSnapshot::GaugeValue(const std::string& name,
                                    const Labels& labels) const {
  const Sample* s = Find(name, labels);
  return (s != nullptr && s->kind == MetricKind::kGauge) ? s->gauge : 0;
}

const HistogramSummary* MetricsSnapshot::Histogram(const std::string& name,
                                                   const Labels& labels) const {
  const Sample* s = Find(name, labels);
  return (s != nullptr && s->kind == MetricKind::kHistogram) ? &s->hist
                                                             : nullptr;
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  const std::string* last_name = nullptr;
  for (const Sample& s : samples_) {
    if (last_name == nullptr || *last_name != s.name) {
      out += "# TYPE ";
      out += s.name;
      switch (s.kind) {
        case MetricKind::kCounter:
          out += " counter\n";
          break;
        case MetricKind::kGauge:
          out += " gauge\n";
          break;
        case MetricKind::kHistogram:
          out += " summary\n";
          break;
      }
      last_name = &s.name;
    }
    switch (s.kind) {
      case MetricKind::kCounter:
        out += s.name + LabelBlock(s.labels) + " " + std::to_string(s.counter) +
               "\n";
        break;
      case MetricKind::kGauge:
        out += s.name + LabelBlock(s.labels) + " " + std::to_string(s.gauge) +
               "\n";
        break;
      case MetricKind::kHistogram: {
        static const std::pair<double, const char*> kQuantiles[] = {
            {0.5, "0.5"}, {0.95, "0.95"}, {0.99, "0.99"}};
        const uint64_t qv[] = {s.hist.p50, s.hist.p95, s.hist.p99};
        for (size_t i = 0; i < 3; ++i) {
          std::pair<std::string, std::string> q{"quantile",
                                                kQuantiles[i].second};
          out += s.name + LabelBlock(s.labels, &q) + " " +
                 std::to_string(qv[i]) + "\n";
        }
        out += s.name + "_sum" + LabelBlock(s.labels) + " " +
               std::to_string(s.hist.sum_nanos) + "\n";
        out += s.name + "_count" + LabelBlock(s.labels) + " " +
               std::to_string(s.hist.count) + "\n";
        out += s.name + "_max" + LabelBlock(s.labels) + " " +
               std::to_string(s.hist.max_nanos) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"metrics\": [\n";
  for (size_t i = 0; i < samples_.size(); ++i) {
    const Sample& s = samples_[i];
    out += "    {\"name\": ";
    AppendJsonString(&out, s.name);
    out += ", \"labels\": " + JsonLabels(s.labels);
    switch (s.kind) {
      case MetricKind::kCounter:
        out += ", \"kind\": \"counter\", \"value\": " +
               std::to_string(s.counter);
        break;
      case MetricKind::kGauge:
        out += ", \"kind\": \"gauge\", \"value\": " + std::to_string(s.gauge);
        break;
      case MetricKind::kHistogram:
        out += ", \"kind\": \"histogram\", \"count\": " +
               std::to_string(s.hist.count) +
               ", \"sum_nanos\": " + std::to_string(s.hist.sum_nanos) +
               ", \"max_nanos\": " + std::to_string(s.hist.max_nanos) +
               ", \"p50\": " + std::to_string(s.hist.p50) +
               ", \"p95\": " + std::to_string(s.hist.p95) +
               ", \"p99\": " + std::to_string(s.hist.p99);
        break;
    }
    out += "}";
    if (i + 1 < samples_.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string MetricsRegistry::Key(const std::string& name,
                                 const Labels& labels) {
  std::string key = name;
  key += '\x01';
  for (const auto& [k, v] : labels) {
    key += k;
    key += '\x02';
    key += v;
    key += '\x03';
  }
  return key;
}

MetricsRegistry::Entry& MetricsRegistry::Upsert(const std::string& name,
                                                Labels labels, MetricKind kind,
                                                const void* owner) {
  labels = Canonical(std::move(labels));
  std::string key = Key(name, labels);
  Entry& e = entries_[key];
  // Re-registration replaces the previous source wholesale (a component
  // restarting re-points the registry at its new instruments).
  e = Entry{};
  e.name = name;
  e.labels = std::move(labels);
  e.kind = kind;
  e.owner = owner;
  return e;
}

Counter* MetricsRegistry::GetCounter(const std::string& name, Labels labels) {
  std::lock_guard<std::mutex> g(mu_);
  labels = Canonical(std::move(labels));
  std::string key = Key(name, labels);
  auto it = entries_.find(key);
  if (it != entries_.end() && it->second.owned_counter != nullptr) {
    return it->second.owned_counter.get();
  }
  Entry& e = Upsert(name, std::move(labels), MetricKind::kCounter, nullptr);
  e.owned_counter = std::make_unique<Counter>();
  e.counter = e.owned_counter.get();
  return e.owned_counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, Labels labels) {
  std::lock_guard<std::mutex> g(mu_);
  labels = Canonical(std::move(labels));
  std::string key = Key(name, labels);
  auto it = entries_.find(key);
  if (it != entries_.end() && it->second.owned_gauge != nullptr) {
    return it->second.owned_gauge.get();
  }
  Entry& e = Upsert(name, std::move(labels), MetricKind::kGauge, nullptr);
  e.owned_gauge = std::make_unique<Gauge>();
  e.gauge = e.owned_gauge.get();
  return e.owned_gauge.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                                Labels labels) {
  std::lock_guard<std::mutex> g(mu_);
  labels = Canonical(std::move(labels));
  std::string key = Key(name, labels);
  auto it = entries_.find(key);
  if (it != entries_.end() && it->second.owned_hist != nullptr) {
    return it->second.owned_hist.get();
  }
  Entry& e = Upsert(name, std::move(labels), MetricKind::kHistogram, nullptr);
  e.owned_hist = std::make_unique<LatencyHistogram>();
  e.hist = e.owned_hist.get();
  return e.owned_hist.get();
}

void MetricsRegistry::RegisterCounter(const std::string& name, Labels labels,
                                      const Counter* counter,
                                      const void* owner) {
  std::lock_guard<std::mutex> g(mu_);
  Upsert(name, std::move(labels), MetricKind::kCounter, owner).counter =
      counter;
}

void MetricsRegistry::RegisterGauge(const std::string& name, Labels labels,
                                    const Gauge* gauge, const void* owner) {
  std::lock_guard<std::mutex> g(mu_);
  Upsert(name, std::move(labels), MetricKind::kGauge, owner).gauge = gauge;
}

void MetricsRegistry::RegisterHistogram(const std::string& name, Labels labels,
                                        const LatencyHistogram* hist,
                                        const void* owner) {
  std::lock_guard<std::mutex> g(mu_);
  Upsert(name, std::move(labels), MetricKind::kHistogram, owner).hist = hist;
}

void MetricsRegistry::RegisterCounterFn(const std::string& name, Labels labels,
                                        std::function<uint64_t()> fn,
                                        const void* owner) {
  std::lock_guard<std::mutex> g(mu_);
  Upsert(name, std::move(labels), MetricKind::kCounter, owner).counter_fn =
      std::move(fn);
}

void MetricsRegistry::RegisterGaugeFn(const std::string& name, Labels labels,
                                      std::function<int64_t()> fn,
                                      const void* owner) {
  std::lock_guard<std::mutex> g(mu_);
  Upsert(name, std::move(labels), MetricKind::kGauge, owner).gauge_fn =
      std::move(fn);
}

void MetricsRegistry::DropOwner(const void* owner) {
  if (owner == nullptr) return;
  std::lock_guard<std::mutex> g(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.owner == owner) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> g(mu_);
  snap.samples_.reserve(entries_.size());
  for (const auto& [key, e] : entries_) {
    Sample s;
    s.name = e.name;
    s.labels = e.labels;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        s.counter = e.counter_fn ? e.counter_fn()
                                 : (e.counter != nullptr ? e.counter->value()
                                                         : 0);
        break;
      case MetricKind::kGauge:
        s.gauge = e.gauge_fn ? e.gauge_fn()
                             : (e.gauge != nullptr ? e.gauge->value() : 0);
        break;
      case MetricKind::kHistogram:
        if (e.hist != nullptr) s.hist = Summarize(*e.hist);
        break;
    }
    snap.samples_.push_back(std::move(s));
  }
  return snap;
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> g(mu_);
  return entries_.size();
}

}  // namespace obs
}  // namespace rollview
