// Copyright 2026 The rollview Authors.

#include "obs/freshness.h"

#include <algorithm>
#include <chrono>

namespace rollview {
namespace obs {

uint64_t SteadyClockNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const char* FreshnessStageName(FreshnessStage stage) {
  switch (stage) {
    case FreshnessStage::kDurable:
      return "durable";
    case FreshnessStage::kPickup:
      return "pickup";
    case FreshnessStage::kPropagate:
      return "propagate";
    case FreshnessStage::kApply:
      return "apply";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// BoundarySeries

void BoundarySeries::Push(Csn boundary, uint64_t nanos) {
  if (boundary == kNullCsn) return;
  if (!events_.empty() && boundary <= events_.back().first) return;
  events_.emplace_back(boundary, nanos);
  while (events_.size() > capacity_) events_.pop_front();
}

uint64_t BoundarySeries::StampFor(Csn csn) const {
  // First event whose boundary covers csn is the moment the frontier
  // passed it.
  auto it = std::lower_bound(
      events_.begin(), events_.end(), csn,
      [](const std::pair<Csn, uint64_t>& e, Csn c) { return e.first < c; });
  if (it == events_.end()) return 0;
  return it->second;
}

void BoundarySeries::DropCoveredThrough(Csn through) {
  while (!events_.empty() && events_.front().first <= through) {
    events_.pop_front();
  }
}

// ---------------------------------------------------------------------------
// FreshnessTracker

FreshnessTracker::FreshnessTracker(FreshnessOptions options)
    : clock_(options.clock ? std::move(options.clock) : SteadyClockNanos),
      slots_(std::max<size_t>(1, options.commit_capacity)),
      durable_(std::max<size_t>(1, options.boundary_capacity)),
      boundary_capacity_(std::max<size_t>(1, options.boundary_capacity)) {}

FreshnessTracker::~FreshnessTracker() = default;

void FreshnessTracker::OnCommit(Csn csn) {
  if (csn == kNullCsn) return;
  const uint64_t now = clock_();
  {
    std::lock_guard<std::mutex> lk(mu_);
    CommitSlot& slot = slots_[csn % slots_.size()];
    slot.csn = csn;
    slot.nanos = now;
  }
  // Committers can race past each other between CSN assignment and the
  // stamp; fold the max so last_commit_ stays the true frontier.
  Csn prev = last_commit_.load(std::memory_order_relaxed);
  while (csn > prev && !last_commit_.compare_exchange_weak(
                           prev, csn, std::memory_order_release,
                           std::memory_order_relaxed)) {
  }
  stamped_.fetch_add(1, std::memory_order_relaxed);
}

void FreshnessTracker::OnDurable(Csn up_to) {
  if (up_to == kNullCsn) return;
  const uint64_t now = clock_();
  std::lock_guard<std::mutex> lk(mu_);
  durable_.Push(up_to, now);
}

Csn FreshnessTracker::durable_frontier() const {
  std::lock_guard<std::mutex> lk(mu_);
  return durable_.frontier();
}

void FreshnessTracker::StampRange(Csn from, Csn to,
                                  std::vector<Stamp>* out) const {
  out->clear();
  if (to < from) return;
  out->reserve(static_cast<size_t>(to - from) + 1);
  std::lock_guard<std::mutex> lk(mu_);
  for (Csn csn = from; csn <= to; ++csn) {
    const CommitSlot& slot = slots_[csn % slots_.size()];
    Stamp s;
    if (slot.csn == csn) {
      s.commit = slot.nanos;
      s.durable = durable_.StampFor(csn);
    } else if (slot.csn > csn) {
      // Within a capacity-bounded window only a CSN past the window's end
      // can share this slot, so a larger occupant means csn's stamp was
      // reclaimed before measurement -- evicted, not untracked.
      s.evicted = true;
    }
    out->push_back(s);
    if (csn == kMaxCsn) break;
  }
}

ViewFreshness* FreshnessTracker::RegisterView(const std::string& view_name,
                                              Csn visible_start) {
  std::lock_guard<std::mutex> lk(views_mu_);
  for (const auto& v : views_) {
    if (v->name_ == view_name) return v.get();
  }
  views_.push_back(std::unique_ptr<ViewFreshness>(
      new ViewFreshness(this, view_name, visible_start, boundary_capacity_)));
  return views_.back().get();
}

ViewFreshness* FreshnessTracker::FindView(const std::string& view_name) const {
  std::lock_guard<std::mutex> lk(views_mu_);
  for (const auto& v : views_) {
    if (v->name_ == view_name) return v.get();
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// ViewFreshness

ViewFreshness::ViewFreshness(FreshnessTracker* tracker, std::string name,
                             Csn visible_start, size_t boundary_capacity)
    : tracker_(tracker),
      name_(std::move(name)),
      visible_(visible_start),
      pickup_(boundary_capacity),
      comp_(boundary_capacity) {}

void ViewFreshness::OnStripStart(uint64_t start_nanos, Csn boundary) {
  std::lock_guard<std::mutex> lk(mu_);
  pickup_.Push(boundary, start_nanos);
}

void ViewFreshness::OnHwmAdvance(Csn hwm, uint64_t nanos) {
  std::lock_guard<std::mutex> lk(mu_);
  comp_.Push(hwm, nanos);
}

ViewFreshness::VisibleReport ViewFreshness::OnVisible(Csn mv_csn) {
  VisibleReport report;
  if (mv_csn <= visible_.load(std::memory_order_relaxed)) return report;
  const uint64_t now = tracker_->Now();

  std::lock_guard<std::mutex> lk(mu_);
  const Csn from = visible_.load(std::memory_order_relaxed);
  if (mv_csn <= from) return report;

  // Anything older than the commit ring can hold was lost unmeasured.
  // Counted as evicted wholesale -- an upper bound, since untracked
  // (non-delta) commits in the skipped range are indistinguishable from
  // reclaimed stamps once the slots are gone.
  const Csn cap = static_cast<Csn>(tracker_->commit_capacity());
  Csn first = from + 1;
  if (mv_csn - from > cap) {
    report.evicted += (mv_csn - from) - cap;
    first = mv_csn - cap + 1;
  }

  std::vector<FreshnessTracker::Stamp> stamps;
  tracker_->StampRange(first, mv_csn, &stamps);

  for (Csn csn = first; csn <= mv_csn; ++csn) {
    uint64_t commit_ts = stamps[static_cast<size_t>(csn - first)].commit;
    uint64_t durable_ts = stamps[static_cast<size_t>(csn - first)].durable;
    if (commit_ts == 0) {
      // Never stamped (a commit that carried no delta) -- no freshness
      // obligation -- unless the slot was reclaimed, which loses a stamp
      // we owed a measurement.
      if (stamps[static_cast<size_t>(csn - first)].evicted) ++report.evicted;
      continue;
    }
    // Clamp each stage monotone so the four lags telescope to exactly
    // visible - commit. A zero (missing) stamp clamps to the previous
    // stage, i.e. contributes zero lag.
    if (durable_ts < commit_ts) durable_ts = commit_ts;
    uint64_t pickup_ts = pickup_.StampFor(csn);
    if (pickup_ts < durable_ts) pickup_ts = durable_ts;
    uint64_t comp_ts = comp_.StampFor(csn);
    if (comp_ts < pickup_ts) comp_ts = pickup_ts;
    uint64_t visible_ts = now;
    if (visible_ts < comp_ts) visible_ts = comp_ts;

    const uint64_t e2e = visible_ts - commit_ts;
    e2e_.Record(e2e);
    stages_[static_cast<size_t>(FreshnessStage::kDurable)].Record(durable_ts -
                                                                  commit_ts);
    stages_[static_cast<size_t>(FreshnessStage::kPickup)].Record(pickup_ts -
                                                                 durable_ts);
    stages_[static_cast<size_t>(FreshnessStage::kPropagate)].Record(comp_ts -
                                                                    pickup_ts);
    stages_[static_cast<size_t>(FreshnessStage::kApply)].Record(visible_ts -
                                                                comp_ts);
    ++report.commits;
    if (e2e > report.max_e2e_nanos) report.max_e2e_nanos = e2e;
  }

  commits_.Add(report.commits);
  evicted_.Add(report.evicted);
  visible_.store(mv_csn, std::memory_order_release);
  // Events covering only <= mv_csn can never be selected again.
  pickup_.DropCoveredThrough(mv_csn);
  comp_.DropCoveredThrough(mv_csn);
  return report;
}

void ViewFreshness::OnRead() { read_staleness_.Record(StalenessNanos()); }

uint64_t ViewFreshness::StalenessNanos() const {
  const Csn last = tracker_->last_commit_csn();
  const Csn seen = visible_.load(std::memory_order_acquire);
  if (last == kNullCsn || seen >= last) return 0;
  // Age of the oldest unseen commit. If it was evicted from the ring the
  // oldest *retained* stamp stands in (a lower bound on true staleness).
  const Csn cap = static_cast<Csn>(tracker_->commit_capacity());
  Csn oldest = seen + 1;
  if (last - seen > cap) oldest = last - cap + 1;
  std::vector<std::pair<uint64_t, uint64_t>> stamps;
  uint64_t oldest_ts = 0;
  {
    std::lock_guard<std::mutex> lk(tracker_->mu_);
    for (Csn csn = oldest; csn <= last && oldest_ts == 0; ++csn) {
      const FreshnessTracker::CommitSlot& slot =
          tracker_->slots_[csn % tracker_->slots_.size()];
      if (slot.csn == csn) oldest_ts = slot.nanos;
    }
  }
  if (oldest_ts == 0) return 0;
  const uint64_t now = tracker_->Now();
  return now > oldest_ts ? now - oldest_ts : 0;
}

// ---------------------------------------------------------------------------
// FreshnessSlo

FreshnessSlo::FreshnessSlo(FreshnessSloOptions options)
    : options_(options) {
  if (options_.budget_fraction <= 0.0) options_.budget_fraction = 1e-9;
  if (options_.max_samples == 0) options_.max_samples = 1;
  if (options_.window_nanos == 0) options_.window_nanos = 1;
}

bool FreshnessSlo::Observe(uint64_t staleness_nanos, uint64_t now_nanos) {
  if (!enabled()) return false;
  const bool violated = staleness_nanos > options_.target_staleness_nanos;
  breaching_.store(violated, std::memory_order_relaxed);

  std::lock_guard<std::mutex> lk(mu_);
  ++stats_.evals;
  if (violated) ++stats_.violations;
  window_.emplace_back(now_nanos, violated);
  const uint64_t horizon =
      now_nanos > options_.window_nanos ? now_nanos - options_.window_nanos : 0;
  while (!window_.empty() &&
         (window_.front().first < horizon || window_.size() > options_.max_samples)) {
    window_.pop_front();
  }

  size_t bad = 0;
  for (const auto& s : window_) bad += s.second ? 1 : 0;
  const double frac =
      window_.empty() ? 0.0 : static_cast<double>(bad) / window_.size();
  const double burn = frac / options_.budget_fraction;
  burn_x1000_.store(static_cast<int64_t>(burn * 1000.0),
                    std::memory_order_relaxed);

  if (window_.size() < options_.min_samples) return false;

  const bool was = shedding_.load(std::memory_order_relaxed);
  bool now_shed = was;
  if (!was && burn >= options_.shed_burn) now_shed = true;
  if (was && burn <= options_.recover_burn) now_shed = false;
  if (now_shed == was) return false;
  shedding_.store(now_shed, std::memory_order_release);
  if (now_shed) {
    ++stats_.shed_entries;
  } else {
    ++stats_.shed_exits;
  }
  return true;
}

FreshnessSlo::Stats FreshnessSlo::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace obs
}  // namespace rollview
