// Copyright 2026 The rollview Authors.
//
// Step tracing: every propagation step emits a span tree recording how the
// paper's decomposed machinery actually executed -- the forward query over
// one relation's delta strip, each recursively generated compensation
// query (tagged with its relation and ComputeDelta depth), undo-log
// cancellation, the WAL append, and cadence checkpoints -- plus root-level
// context from the supervisor (retry count, driver health, the adaptive
// rows-per-query target).
//
// Two pieces:
//  - StepTracer: a single-threaded builder owned by one driver loop. All
//    calls are no-ops while no journal is attached or no step is active,
//    so instrumentation compiled into the hot path costs one branch when
//    tracing is off.
//  - TraceJournal: a bounded, mutex-guarded ring buffer of finished step
//    traces -- O(capacity * kMaxSpansPerStep) memory no matter how long a
//    maintenance process runs -- with DumpTrace()/ToJson() exporters.
//
// Failed step attempts end their trace with an error outcome (and, once
// the undo log cancels their partial rows, the undo activity appears in
// the *retrying* attempt's trace, which is when cancellation actually
// runs). Each retry is its own trace carrying `retries` from the
// supervisor, so a fault-injected run yields one trace per attempt.

#ifndef ROLLVIEW_OBS_TRACE_H_
#define ROLLVIEW_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace rollview {
namespace obs {

enum class SpanKind : uint8_t {
  kStep,          // root: one propagation step attempt
  kForward,       // a forward query (single delta term)
  kCompensation,  // a ComputeDelta-generated compensation query (>= 2 terms)
  kUndo,          // undo-log cancellation of a failed step's rows
  kWalAppend,     // view-delta buffer append + commit inside a query txn
  kCheckpoint,    // root: a cadence checkpoint after a step
  kApply,         // root: the apply driver rolling the MV forward
  kScrub,         // root: one scrub pass (digest check, possibly repair)
  kWalFlush,      // root: one group-commit flusher batch (carries the
                  // csn_min/csn_max it made durable -- the cross-thread
                  // link from the flusher to the step traces whose
                  // t_a/t_b ranges it covers)
  kFreshness,     // child of kApply: the commit range that became visible,
                  // with its freshness accounting
};

const char* SpanKindName(SpanKind kind);

enum class StepOutcome : uint8_t {
  kOk,            // frontier advanced, rows published
  kSkippedEmpty,  // empty delta strip: cursors advanced without queries
  kTransientError,
  kPermanentError,
};

const char* StepOutcomeName(StepOutcome outcome);

// One node of a step's span tree. Attribute keys are string literals
// (static storage), values are int64 -- enough for relations, depths, CSNs
// and row counts without allocation on the hot path.
struct Span {
  uint32_t id = 0;      // 1-based; spans[id - 1]
  uint32_t parent = 0;  // 0 = no parent (root)
  SpanKind kind = SpanKind::kStep;
  bool ok = true;
  uint64_t start_nanos = 0;  // relative to the trace's first span
  uint64_t end_nanos = 0;
  std::vector<std::pair<const char*, int64_t>> attrs;

  int64_t Attr(const char* key, int64_t missing = -1) const;
};

// One finished step attempt: root context plus the span tree.
struct StepTrace {
  uint64_t trace_id = 0;  // journal-assigned, monotonic
  SpanKind root_kind = SpanKind::kStep;
  uint32_t view_id = 0;
  std::string view;
  uint64_t seq = 0;  // undo-log step sequence (kStep) or driver step count
  StepOutcome outcome = StepOutcome::kOk;
  // Supervisor context at attempt start.
  uint64_t retries = 0;        // consecutive transient failures so far
  const char* health = "";     // DriverHealthName at attempt start
  int64_t target_rows = 0;     // adaptive rows-per-query target (0 = n/a)
  uint64_t rows = 0;           // delta rows appended / MV rows applied
  bool undone = false;         // this attempt's rows were cancelled
  std::string error;           // status message when outcome is an error
  uint64_t dropped_spans = 0;  // spans beyond kMaxSpansPerStep
  std::vector<Span> spans;     // spans[0] is the root

  const Span& root() const { return spans.front(); }
};

// Bounded ring buffer of finished traces. Thread-safe; O(1) memory.
class TraceJournal {
 public:
  explicit TraceJournal(size_t capacity) : capacity_(capacity) {}

  void Record(StepTrace&& trace);

  // Oldest-to-newest copy of the retained traces.
  std::vector<StepTrace> Snapshot() const;
  // The most recent `n` traces, oldest first.
  std::vector<StepTrace> Last(size_t n) const;

  size_t capacity() const { return capacity_; }
  // Total traces ever recorded (retained + overwritten).
  uint64_t recorded() const;

  // Human-readable tree rendering of the last `n` traces.
  std::string DumpTrace(size_t n) const;
  // Structured JSON array of the last `n` traces.
  std::string ToJson(size_t n) const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<StepTrace> ring_;
  size_t next_ = 0;          // ring insertion point once full
  uint64_t next_trace_id_ = 1;
};

// Renders one trace as an indented span tree (shared by DumpTrace and the
// rollview_inspect CLI).
std::string RenderTrace(const StepTrace& trace);

// Single-threaded span-tree builder for one driver loop. Instrumentation
// sites call OpenSpan/CloseSpan (or ScopedSpan); the innermost open span
// is the implicit parent. Every method is a no-op when no journal is
// attached (tracing disabled) or, for span calls, when no step is active.
class StepTracer {
 public:
  // Spans beyond this many per step are counted in dropped_spans instead
  // of recorded, bounding per-trace memory.
  static constexpr size_t kMaxSpansPerStep = 256;

  void set_journal(TraceJournal* journal) { journal_ = journal; }
  TraceJournal* journal() const { return journal_; }
  bool enabled() const { return journal_ != nullptr; }
  bool active() const { return active_; }

  // Supervisor context stamped onto the next BeginStep (the supervisor
  // sits above the propagator, which is who begins the step).
  void SetNextStepContext(uint64_t retries, const char* health,
                          int64_t target_rows);

  // Starts a trace with a root span of `root_kind`. Drops any trace left
  // active by an abandoned step.
  void BeginStep(SpanKind root_kind, uint32_t view_id,
                 const std::string& view_name, uint64_t seq);

  // Opens a child of the innermost open span. Returns 0 (a no-op handle)
  // when inactive or over the span budget.
  uint32_t OpenSpan(SpanKind kind);
  void CloseSpan(uint32_t id, bool ok);
  // Attaches an attribute to span `id` (no-op for id 0).
  void Attr(uint32_t id, const char* key, int64_t value);
  // Attaches an attribute to the innermost open span.
  void AttrCurrent(const char* key, int64_t value);
  // Accumulates rows into the step's root row count.
  void AddStepRows(uint64_t n);
  // Marks the active step as having had its rows cancelled by the undo
  // log.
  void MarkUndone();

  // Closes the root span and commits the trace to the journal.
  void EndStep(StepOutcome outcome, const std::string& error = "");

 private:
  uint64_t NowNanos() const;

  TraceJournal* journal_ = nullptr;
  bool active_ = false;
  StepTrace cur_;
  std::vector<uint32_t> open_;  // stack of open span ids
  std::chrono::steady_clock::time_point begin_;
  // Pending supervisor context for the next BeginStep.
  uint64_t next_retries_ = 0;
  const char* next_health_ = "";
  int64_t next_target_rows_ = 0;
};

// RAII child span: opens on construction (if a step is active), closes on
// destruction with the last set_ok value.
class ScopedSpan {
 public:
  ScopedSpan(StepTracer* tracer, SpanKind kind) : tracer_(tracer) {
    if (tracer_ != nullptr && tracer_->active()) id_ = tracer_->OpenSpan(kind);
  }
  ~ScopedSpan() {
    if (id_ != 0) tracer_->CloseSpan(id_, ok_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void Attr(const char* key, int64_t value) {
    if (id_ != 0) tracer_->Attr(id_, key, value);
  }
  void set_ok(bool ok) { ok_ = ok; }
  uint32_t id() const { return id_; }

 private:
  StepTracer* tracer_;
  uint32_t id_ = 0;
  bool ok_ = true;
};

}  // namespace obs
}  // namespace rollview

#endif  // ROLLVIEW_OBS_TRACE_H_
