// Copyright 2026 The rollview Authors.
//
// MetricsRegistry: one named, labeled home for the Counter/Gauge/
// LatencyHistogram primitives scattered across the maintenance stack, so a
// single Snapshot() answers "why is this view stale right now?" instead of
// five bespoke per-bench serializers.
//
// Three registration styles:
//  - Owned:   GetCounter/GetGauge/GetHistogram create (or return) an
//             instrument owned by the registry. The returned pointer is
//             stable for the registry's lifetime and updates are plain
//             relaxed atomics -- the hot path never touches the registry
//             mutex.
//  - Borrowed: Register{Counter,Gauge,Histogram} point the registry at an
//             instrument a component already owns (e.g. LockManager's
//             per-class WaitHistogram). The component passes an `owner`
//             cookie and must call DropOwner(owner) before the instrument
//             dies.
//  - Callback: Register{Counter,Gauge}Fn sample a value at Snapshot()
//             time (e.g. Wal::next_lsn). Callbacks run under the registry
//             mutex: they must be cheap and must not call back into the
//             registry. Same owner/DropOwner lifetime contract.
//
// Snapshot() renders both Prometheus-style text and structured JSON, with
// samples sorted by (name, labels) so exporters are byte-stable and
// golden-testable. Histograms export as summaries (p50/p95/p99 quantiles
// plus _sum/_count/_max).

#ifndef ROLLVIEW_OBS_REGISTRY_H_
#define ROLLVIEW_OBS_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"

namespace rollview {
namespace obs {

// A label set as (key, value) pairs; canonicalized (sorted by key) at
// registration, so callers may list labels in any order.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind { kCounter, kGauge, kHistogram };

// Report-time summary of one LatencyHistogram.
struct HistogramSummary {
  uint64_t count = 0;
  uint64_t sum_nanos = 0;
  uint64_t max_nanos = 0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
};

// One (metric, label set) observation inside a snapshot.
struct Sample {
  std::string name;
  Labels labels;  // canonical (sorted by key)
  MetricKind kind = MetricKind::kCounter;
  uint64_t counter = 0;     // kind == kCounter
  int64_t gauge = 0;        // kind == kGauge
  HistogramSummary hist;    // kind == kHistogram
};

// An immutable point-in-time view of every registered instrument, sorted
// by (name, labels). Safe to use after the registry (or the instruments)
// are gone.
class MetricsSnapshot {
 public:
  const std::vector<Sample>& samples() const { return samples_; }

  // Lookups. `labels` may be in any order; missing entries return
  // 0 / nullptr.
  const Sample* Find(const std::string& name, const Labels& labels) const;
  uint64_t CounterValue(const std::string& name, const Labels& labels) const;
  // Sum of a counter across all label sets (e.g. total transient errors
  // over both drivers).
  uint64_t CounterTotal(const std::string& name) const;
  int64_t GaugeValue(const std::string& name, const Labels& labels) const;
  const HistogramSummary* Histogram(const std::string& name,
                                    const Labels& labels) const;

  // Prometheus exposition-style text: `# TYPE` header per metric name,
  // one `name{labels} value` line per sample, histograms as summaries.
  std::string ToPrometheusText() const;
  // Structured JSON: {"metrics": [{name, labels, kind, ...}, ...]}, one
  // metric per line, stable ordering.
  std::string ToJson() const;

 private:
  friend class MetricsRegistry;
  std::vector<Sample> samples_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Owned instruments. Repeated calls with the same (name, labels) return
  // the same pointer; pointers stay valid for the registry's lifetime.
  Counter* GetCounter(const std::string& name, Labels labels = {});
  Gauge* GetGauge(const std::string& name, Labels labels = {});
  LatencyHistogram* GetHistogram(const std::string& name, Labels labels = {});

  // Borrowed instruments (component-owned). Re-registering the same
  // (name, labels) replaces the previous source.
  void RegisterCounter(const std::string& name, Labels labels,
                       const Counter* counter, const void* owner);
  void RegisterGauge(const std::string& name, Labels labels,
                     const Gauge* gauge, const void* owner);
  void RegisterHistogram(const std::string& name, Labels labels,
                         const LatencyHistogram* hist, const void* owner);

  // Callback instruments, sampled at Snapshot() time.
  void RegisterCounterFn(const std::string& name, Labels labels,
                         std::function<uint64_t()> fn, const void* owner);
  void RegisterGaugeFn(const std::string& name, Labels labels,
                       std::function<int64_t()> fn, const void* owner);

  // Drops every borrowed/callback instrument registered with `owner`.
  // Components call this from their destructor (or unregistration hook)
  // so a later Snapshot() never dereferences a dead instrument.
  void DropOwner(const void* owner);

  MetricsSnapshot Snapshot() const;

  // Number of registered instruments; for tests.
  size_t size() const;

 private:
  struct Entry {
    std::string name;
    Labels labels;
    MetricKind kind = MetricKind::kCounter;
    const void* owner = nullptr;  // nullptr => registry-owned
    // Owned storage (at most one set, matching `kind`).
    std::unique_ptr<Counter> owned_counter;
    std::unique_ptr<Gauge> owned_gauge;
    std::unique_ptr<LatencyHistogram> owned_hist;
    // Live sources (point at owned storage or a borrowed instrument).
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const LatencyHistogram* hist = nullptr;
    std::function<uint64_t()> counter_fn;
    std::function<int64_t()> gauge_fn;
  };

  static std::string Key(const std::string& name, const Labels& labels);
  Entry& Upsert(const std::string& name, Labels labels, MetricKind kind,
                const void* owner);  // requires mu_ held

  mutable std::mutex mu_;
  // Ordered by key = name + '\x01' + canonical labels, so Snapshot() comes
  // out sorted without re-sorting.
  std::map<std::string, Entry> entries_;
};

}  // namespace obs
}  // namespace rollview

#endif  // ROLLVIEW_OBS_REGISTRY_H_
