// Copyright 2026 The rollview Authors.

#include "obs/trace.h"

#include <algorithm>
#include <string_view>

namespace rollview {
namespace obs {

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kStep:
      return "step";
    case SpanKind::kForward:
      return "forward";
    case SpanKind::kCompensation:
      return "compensation";
    case SpanKind::kUndo:
      return "undo";
    case SpanKind::kWalAppend:
      return "wal_append";
    case SpanKind::kCheckpoint:
      return "checkpoint";
    case SpanKind::kApply:
      return "apply";
    case SpanKind::kScrub:
      return "scrub";
    case SpanKind::kWalFlush:
      return "wal_flush";
    case SpanKind::kFreshness:
      return "freshness";
  }
  return "unknown";
}

const char* StepOutcomeName(StepOutcome outcome) {
  switch (outcome) {
    case StepOutcome::kOk:
      return "ok";
    case StepOutcome::kSkippedEmpty:
      return "skipped_empty";
    case StepOutcome::kTransientError:
      return "transient_error";
    case StepOutcome::kPermanentError:
      return "permanent_error";
  }
  return "unknown";
}

int64_t Span::Attr(const char* key, int64_t missing) const {
  for (const auto& [k, v] : attrs) {
    // Attribute keys are string literals, but compare by content so tests
    // and exporters can probe with their own strings.
    if (std::string_view(k) == key) return v;
  }
  return missing;
}

void TraceJournal::Record(StepTrace&& trace) {
  std::lock_guard<std::mutex> g(mu_);
  trace.trace_id = next_trace_id_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(trace));
  } else if (capacity_ > 0) {
    ring_[next_] = std::move(trace);
    next_ = (next_ + 1) % capacity_;
  }
}

std::vector<StepTrace> TraceJournal::Snapshot() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<StepTrace> out;
  out.reserve(ring_.size());
  // `next_` is the oldest entry once the ring has wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<StepTrace> TraceJournal::Last(size_t n) const {
  std::vector<StepTrace> all = Snapshot();
  if (all.size() > n) all.erase(all.begin(), all.end() - n);
  return all;
}

uint64_t TraceJournal::recorded() const {
  std::lock_guard<std::mutex> g(mu_);
  return next_trace_id_ - 1;
}

std::string RenderTrace(const StepTrace& trace) {
  std::string out;
  out += "trace #" + std::to_string(trace.trace_id) + " view=" + trace.view +
         " seq=" + std::to_string(trace.seq) +
         " outcome=" + StepOutcomeName(trace.outcome);
  if (trace.retries > 0) out += " retries=" + std::to_string(trace.retries);
  if (trace.health[0] != '\0') out += " health=" + std::string(trace.health);
  if (trace.target_rows > 0) {
    out += " target_rows=" + std::to_string(trace.target_rows);
  }
  out += " rows=" + std::to_string(trace.rows);
  if (trace.undone) out += " undone=true";
  if (!trace.error.empty()) out += " error=\"" + trace.error + "\"";
  if (trace.dropped_spans > 0) {
    out += " dropped_spans=" + std::to_string(trace.dropped_spans);
  }
  out += "\n";
  // Depth-first render; children appear after their parent in id order, so
  // one pass with a depth lookup suffices.
  std::vector<int> depth(trace.spans.size(), 0);
  for (const Span& s : trace.spans) {
    int d = 0;
    if (s.parent != 0) d = depth[s.parent - 1] + 1;
    depth[s.id - 1] = d;
    out.append(static_cast<size_t>(2 * (d + 1)), ' ');
    out += SpanKindName(s.kind);
    if (!s.ok) out += " FAILED";
    out += " [" + std::to_string((s.end_nanos - s.start_nanos) / 1000) + "us]";
    for (const auto& [k, v] : s.attrs) {
      out += " ";
      out += k;
      out += "=" + std::to_string(v);
    }
    out += "\n";
  }
  return out;
}

std::string TraceJournal::DumpTrace(size_t n) const {
  std::string out;
  for (const StepTrace& t : Last(n)) out += RenderTrace(t);
  return out;
}

std::string TraceJournal::ToJson(size_t n) const {
  std::vector<StepTrace> traces = Last(n);
  std::string out = "{\n  \"traces\": [\n";
  for (size_t ti = 0; ti < traces.size(); ++ti) {
    const StepTrace& t = traces[ti];
    out += "    {\"trace_id\": " + std::to_string(t.trace_id) +
           ", \"kind\": \"" + SpanKindName(t.root_kind) + "\", \"view\": \"" +
           t.view + "\", \"seq\": " + std::to_string(t.seq) +
           ", \"outcome\": \"" + StepOutcomeName(t.outcome) + "\"" +
           ", \"retries\": " + std::to_string(t.retries) + ", \"health\": \"" +
           t.health + "\", \"target_rows\": " + std::to_string(t.target_rows) +
           ", \"rows\": " + std::to_string(t.rows) +
           ", \"undone\": " + (t.undone ? "true" : "false") +
           ", \"dropped_spans\": " + std::to_string(t.dropped_spans) +
           ", \"spans\": [\n";
    for (size_t si = 0; si < t.spans.size(); ++si) {
      const Span& s = t.spans[si];
      out += "      {\"id\": " + std::to_string(s.id) +
             ", \"parent\": " + std::to_string(s.parent) + ", \"kind\": \"" +
             SpanKindName(s.kind) + "\", \"ok\": " + (s.ok ? "true" : "false") +
             ", \"nanos\": " + std::to_string(s.end_nanos - s.start_nanos);
      for (const auto& [k, v] : s.attrs) {
        out += ", \"";
        out += k;
        out += "\": " + std::to_string(v);
      }
      out += "}";
      if (si + 1 < t.spans.size()) out += ",";
      out += "\n";
    }
    out += "    ]}";
    if (ti + 1 < traces.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

uint64_t StepTracer::NowNanos() const {
  return static_cast<uint64_t>(std::chrono::duration_cast<
                                   std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - begin_)
                                   .count());
}

void StepTracer::SetNextStepContext(uint64_t retries, const char* health,
                                    int64_t target_rows) {
  if (!enabled()) return;
  next_retries_ = retries;
  next_health_ = health != nullptr ? health : "";
  next_target_rows_ = target_rows;
}

void StepTracer::BeginStep(SpanKind root_kind, uint32_t view_id,
                           const std::string& view_name, uint64_t seq) {
  if (!enabled()) return;
  cur_ = StepTrace{};
  open_.clear();
  cur_.root_kind = root_kind;
  cur_.view_id = view_id;
  cur_.view = view_name;
  cur_.seq = seq;
  cur_.retries = next_retries_;
  cur_.health = next_health_;
  cur_.target_rows = next_target_rows_;
  begin_ = std::chrono::steady_clock::now();
  Span root;
  root.id = 1;
  root.parent = 0;
  root.kind = root_kind;
  root.start_nanos = 0;
  cur_.spans.push_back(std::move(root));
  open_.push_back(1);
  active_ = true;
}

uint32_t StepTracer::OpenSpan(SpanKind kind) {
  if (!active_) return 0;
  if (cur_.spans.size() >= kMaxSpansPerStep) {
    ++cur_.dropped_spans;
    return 0;
  }
  Span s;
  s.id = static_cast<uint32_t>(cur_.spans.size() + 1);
  s.parent = open_.empty() ? 1 : open_.back();
  s.kind = kind;
  s.start_nanos = NowNanos();
  cur_.spans.push_back(std::move(s));
  open_.push_back(cur_.spans.back().id);
  return cur_.spans.back().id;
}

void StepTracer::CloseSpan(uint32_t id, bool ok) {
  if (!active_ || id == 0 || id > cur_.spans.size()) return;
  Span& s = cur_.spans[id - 1];
  s.ok = ok;
  s.end_nanos = NowNanos();
  // Pop through the stack down to (and including) this span, closing any
  // abandoned children left open by error paths.
  while (!open_.empty()) {
    uint32_t top = open_.back();
    open_.pop_back();
    if (top == id) break;
    Span& child = cur_.spans[top - 1];
    if (child.end_nanos == 0) child.end_nanos = s.end_nanos;
  }
}

void StepTracer::Attr(uint32_t id, const char* key, int64_t value) {
  if (!active_ || id == 0 || id > cur_.spans.size()) return;
  cur_.spans[id - 1].attrs.emplace_back(key, value);
}

void StepTracer::AttrCurrent(const char* key, int64_t value) {
  if (!active_ || open_.empty()) return;
  Attr(open_.back(), key, value);
}

void StepTracer::AddStepRows(uint64_t n) {
  if (!active_) return;
  cur_.rows += n;
}

void StepTracer::MarkUndone() {
  if (!active_) return;
  cur_.undone = true;
}

void StepTracer::EndStep(StepOutcome outcome, const std::string& error) {
  if (!active_) return;
  cur_.outcome = outcome;
  cur_.error = error;
  bool root_ok = outcome == StepOutcome::kOk ||
                 outcome == StepOutcome::kSkippedEmpty;
  CloseSpan(1, root_ok);
  active_ = false;
  if (journal_ != nullptr) journal_->Record(std::move(cur_));
  cur_ = StepTrace{};
  open_.clear();
}

}  // namespace obs
}  // namespace rollview
