#include "obs/inspect.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <set>
#include <vector>

namespace rollview {
namespace obs {

namespace {

std::string LabelsText(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + labels[i].second + "\"";
  }
  out += "}";
  return out;
}

void Append(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  *out += buf;
}

}  // namespace

std::string RenderSnapshot(const MetricsSnapshot& snapshot) {
  std::string out;
  const std::string* current = nullptr;
  for (const Sample& s : snapshot.samples()) {
    if (current == nullptr || *current != s.name) {
      if (current != nullptr) out += "\n";
      const char* kind = s.kind == MetricKind::kCounter   ? "counter"
                         : s.kind == MetricKind::kGauge   ? "gauge"
                                                          : "histogram";
      Append(&out, "%s (%s)\n", s.name.c_str(), kind);
      current = &s.name;
    }
    std::string labels = LabelsText(s.labels);
    switch (s.kind) {
      case MetricKind::kCounter:
        Append(&out, "  %-56s %" PRIu64 "\n", labels.c_str(), s.counter);
        break;
      case MetricKind::kGauge:
        Append(&out, "  %-56s %" PRId64 "\n", labels.c_str(), s.gauge);
        break;
      case MetricKind::kHistogram:
        Append(&out,
               "  %-56s count=%" PRIu64 " p50=%.1fus p95=%.1fus p99=%.1fus"
               " max=%.1fus\n",
               labels.c_str(), s.hist.count,
               static_cast<double>(s.hist.p50) / 1e3,
               static_cast<double>(s.hist.p95) / 1e3,
               static_cast<double>(s.hist.p99) / 1e3,
               static_cast<double>(s.hist.max_nanos) / 1e3);
        break;
    }
  }
  return out;
}

std::string RenderViewDigest(const MetricsSnapshot& snapshot) {
  // The views present are exactly the label values of the hwm gauge every
  // maintained view registers.
  std::set<std::string> views;
  for (const Sample& s : snapshot.samples()) {
    if (s.name != "rollview_view_hwm_csn") continue;
    for (const auto& [k, v] : s.labels) {
      if (k == "view") views.insert(v);
    }
  }
  if (views.empty()) return "";

  std::string out = "views:\n";
  for (const std::string& view : views) {
    const Labels lv{{"view", view}};
    Append(&out,
           "  %-12s hwm=%" PRId64 " mv=%" PRId64 " staleness=%" PRId64
           " target_rows=%" PRId64 " backlog=%" PRId64 " shedding=%s\n",
           view.c_str(), snapshot.GaugeValue("rollview_view_hwm_csn", lv),
           snapshot.GaugeValue("rollview_view_mv_csn", lv),
           snapshot.GaugeValue("rollview_view_staleness_csn", lv),
           snapshot.GaugeValue("rollview_view_target_rows", lv),
           snapshot.GaugeValue("rollview_view_backlog_rows", lv),
           snapshot.GaugeValue("rollview_view_shedding", lv) != 0 ? "yes"
                                                                  : "no");
    // Compiled delta-program digest, present only when the view ran any
    // compiled forward queries (half-join residency rides along).
    const uint64_t compiled =
        snapshot.CounterValue("rollview_compiled_queries_total", lv);
    if (compiled > 0) {
      Append(&out,
             "  %-12s compiled=%" PRIu64 " probe_rows=%" PRIu64
             " kernel_evals=%" PRIu64 " hj_hits=%" PRIu64 " hj_misses=%" PRIu64
             " hj_rows=%" PRId64 " hj_bytes=%" PRId64 "\n",
             "", compiled,
             snapshot.CounterValue("rollview_compiled_probe_rows_total", lv),
             snapshot.CounterValue("rollview_compiled_kernel_evals_total", lv),
             snapshot.CounterValue("rollview_half_join_probes_total",
                                   {{"outcome", "hit"}, {"view", view}}),
             snapshot.CounterValue("rollview_half_join_probes_total",
                                   {{"outcome", "miss"}, {"view", view}}),
             snapshot.GaugeValue("rollview_half_join_rows", lv),
             snapshot.GaugeValue("rollview_half_join_bytes", lv));
    }
  }
  return out;
}

std::string RenderInspectReport(const MetricsSnapshot& snapshot,
                                const TraceJournal* journal, size_t last_n) {
  std::string out;
  std::string digest = RenderViewDigest(snapshot);
  if (!digest.empty()) {
    out += digest;
    out += "\n";
  }
  out += RenderSnapshot(snapshot);
  if (journal != nullptr && last_n > 0) {
    Append(&out, "\nlast %zu step traces (%" PRIu64 " recorded, %zu retained):\n",
           last_n, journal->recorded(), journal->Snapshot().size());
    out += journal->DumpTrace(last_n);
  }
  return out;
}

}  // namespace obs
}  // namespace rollview
