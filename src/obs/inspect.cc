#include "obs/inspect.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <set>
#include <vector>

namespace rollview {
namespace obs {

namespace {

std::string LabelsText(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + labels[i].second + "\"";
  }
  out += "}";
  return out;
}

void Append(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  *out += buf;
}

// A gauge cell for the digest: the value when the sample exists, `-` when
// the metric is absent from the snapshot. GaugeValue alone cannot tell an
// absent gauge from a true zero.
std::string GaugeCell(const MetricsSnapshot& snapshot, const std::string& name,
                      const Labels& labels) {
  const Sample* s = snapshot.Find(name, labels);
  if (s == nullptr) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, s->gauge);
  return buf;
}

std::string CounterCell(const MetricsSnapshot& snapshot,
                        const std::string& name, const Labels& labels) {
  const Sample* s = snapshot.Find(name, labels);
  if (s == nullptr) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, s->counter);
  return buf;
}

// Milliseconds with one decimal, from nanos.
std::string MillisCell(uint64_t nanos) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", static_cast<double>(nanos) / 1e6);
  return buf;
}

// The views present in a snapshot: the label values of the hwm gauge every
// maintained view registers.
std::set<std::string> ViewsIn(const MetricsSnapshot& snapshot) {
  std::set<std::string> views;
  for (const Sample& s : snapshot.samples()) {
    if (s.name != "rollview_view_hwm_csn") continue;
    for (const auto& [k, v] : s.labels) {
      if (k == "view") views.insert(v);
    }
  }
  return views;
}

}  // namespace

std::string RenderSnapshot(const MetricsSnapshot& snapshot) {
  std::string out;
  const std::string* current = nullptr;
  for (const Sample& s : snapshot.samples()) {
    if (current == nullptr || *current != s.name) {
      if (current != nullptr) out += "\n";
      const char* kind = s.kind == MetricKind::kCounter   ? "counter"
                         : s.kind == MetricKind::kGauge   ? "gauge"
                                                          : "histogram";
      Append(&out, "%s (%s)\n", s.name.c_str(), kind);
      current = &s.name;
    }
    std::string labels = LabelsText(s.labels);
    switch (s.kind) {
      case MetricKind::kCounter:
        Append(&out, "  %-56s %" PRIu64 "\n", labels.c_str(), s.counter);
        break;
      case MetricKind::kGauge:
        Append(&out, "  %-56s %" PRId64 "\n", labels.c_str(), s.gauge);
        break;
      case MetricKind::kHistogram:
        Append(&out,
               "  %-56s count=%" PRIu64 " p50=%.1fus p95=%.1fus p99=%.1fus"
               " max=%.1fus\n",
               labels.c_str(), s.hist.count,
               static_cast<double>(s.hist.p50) / 1e3,
               static_cast<double>(s.hist.p95) / 1e3,
               static_cast<double>(s.hist.p99) / 1e3,
               static_cast<double>(s.hist.max_nanos) / 1e3);
        break;
    }
  }
  return out;
}

std::string RenderViewDigest(const MetricsSnapshot& snapshot) {
  std::set<std::string> views = ViewsIn(snapshot);
  if (views.empty()) return "";

  std::string out = "views:\n";
  for (const std::string& view : views) {
    const Labels lv{{"view", view}};
    // Find-based cells: a gauge the view never registered (e.g. shedding
    // telemetry on a non-adaptive service snapshotted by a bare registry)
    // renders as `-`, not a fake 0.
    const Sample* shed = snapshot.Find("rollview_view_shedding", lv);
    Append(&out,
           "  %-12s hwm=%s mv=%s staleness=%s target_rows=%s backlog=%s"
           " shedding=%s\n",
           view.c_str(),
           GaugeCell(snapshot, "rollview_view_hwm_csn", lv).c_str(),
           GaugeCell(snapshot, "rollview_view_mv_csn", lv).c_str(),
           GaugeCell(snapshot, "rollview_view_staleness_csn", lv).c_str(),
           GaugeCell(snapshot, "rollview_view_target_rows", lv).c_str(),
           GaugeCell(snapshot, "rollview_view_backlog_rows", lv).c_str(),
           shed == nullptr ? "-" : (shed->gauge != 0 ? "yes" : "no"));
    // Freshness digest, present only when the view exports the pipeline.
    const HistogramSummary* e2e =
        snapshot.Histogram("rollview_freshness_e2e_nanos", lv);
    if (e2e != nullptr) {
      Append(&out,
             "  %-12s staleness=%sus e2e p50=%sms p99=%sms commits=%s"
             " evicted=%s slo_burn=%s\n",
             "",
             GaugeCell(snapshot, "rollview_view_staleness_usec", lv).c_str(),
             MillisCell(e2e->p50).c_str(), MillisCell(e2e->p99).c_str(),
             CounterCell(snapshot, "rollview_freshness_commits_total", lv)
                 .c_str(),
             CounterCell(snapshot, "rollview_freshness_evicted_total", lv)
                 .c_str(),
             GaugeCell(snapshot, "rollview_slo_burn_x1000", lv).c_str());
    }
    // Compiled delta-program digest, present only when the view ran any
    // compiled forward queries (half-join residency rides along).
    const uint64_t compiled =
        snapshot.CounterValue("rollview_compiled_queries_total", lv);
    if (compiled > 0) {
      Append(&out,
             "  %-12s compiled=%" PRIu64 " probe_rows=%" PRIu64
             " kernel_evals=%" PRIu64 " hj_hits=%" PRIu64 " hj_misses=%" PRIu64
             " hj_rows=%" PRId64 " hj_bytes=%" PRId64 "\n",
             "", compiled,
             snapshot.CounterValue("rollview_compiled_probe_rows_total", lv),
             snapshot.CounterValue("rollview_compiled_kernel_evals_total", lv),
             snapshot.CounterValue("rollview_half_join_probes_total",
                                   {{"outcome", "hit"}, {"view", view}}),
             snapshot.CounterValue("rollview_half_join_probes_total",
                                   {{"outcome", "miss"}, {"view", view}}),
             snapshot.GaugeValue("rollview_half_join_rows", lv),
             snapshot.GaugeValue("rollview_half_join_bytes", lv));
    }
  }
  return out;
}

std::string RenderWatchFrame(const MetricsSnapshot& snapshot, uint64_t frame) {
  std::set<std::string> views = ViewsIn(snapshot);
  std::string out;
  Append(&out, "rollview watch  frame=%" PRIu64 "  views=%zu\n", frame,
         views.size());
  if (views.empty()) {
    out += "  (no per-view gauges in snapshot)\n";
    return out;
  }
  for (const std::string& view : views) {
    const Labels lv{{"view", view}};
    const Sample* shed = snapshot.Find("rollview_view_shedding", lv);
    Append(&out,
           "%-12s hwm=%s mv=%s staleness=%scsn/%sus backlog=%s shedding=%s\n",
           view.c_str(),
           GaugeCell(snapshot, "rollview_view_hwm_csn", lv).c_str(),
           GaugeCell(snapshot, "rollview_view_mv_csn", lv).c_str(),
           GaugeCell(snapshot, "rollview_view_staleness_csn", lv).c_str(),
           GaugeCell(snapshot, "rollview_view_staleness_usec", lv).c_str(),
           GaugeCell(snapshot, "rollview_view_backlog_rows", lv).c_str(),
           shed == nullptr ? "-" : (shed->gauge != 0 ? "YES" : "no"));
    const HistogramSummary* e2e =
        snapshot.Histogram("rollview_freshness_e2e_nanos", lv);
    if (e2e == nullptr) {
      Append(&out, "  freshness  -\n");
    } else {
      Append(&out,
             "  freshness  p50=%sms p95=%sms p99=%sms max=%sms"
             "  commits=%s evicted=%s\n",
             MillisCell(e2e->p50).c_str(), MillisCell(e2e->p95).c_str(),
             MillisCell(e2e->p99).c_str(), MillisCell(e2e->max_nanos).c_str(),
             CounterCell(snapshot, "rollview_freshness_commits_total", lv)
                 .c_str(),
             CounterCell(snapshot, "rollview_freshness_evicted_total", lv)
                 .c_str());
      // Stage shares: the stage sums telescope to the e2e sum exactly, so
      // each stage's share of total time is its sum over the e2e sum.
      static const char* kStages[] = {"durable", "pickup", "propagate",
                                      "apply"};
      out += "  stages    ";
      for (const char* stage : kStages) {
        const HistogramSummary* h =
            snapshot.Histogram("rollview_freshness_stage_nanos",
                               {{"view", view}, {"stage", stage}});
        if (h == nullptr || e2e->sum_nanos == 0) {
          Append(&out, " %s=-", stage);
        } else {
          Append(&out, " %s=%.0f%%", stage,
                 100.0 * static_cast<double>(h->sum_nanos) /
                     static_cast<double>(e2e->sum_nanos));
        }
      }
      out += "\n";
    }
    const Sample* burn = snapshot.Find("rollview_slo_burn_x1000", lv);
    if (burn != nullptr) {
      const Sample* breaching = snapshot.Find("rollview_slo_breaching", lv);
      Append(&out, "  slo        target=%sus burn=%.2f breaching=%s sheds=%s\n",
             GaugeCell(snapshot, "rollview_slo_target_usec", lv).c_str(),
             static_cast<double>(burn->gauge) / 1000.0,
             breaching == nullptr ? "-"
                                  : (breaching->gauge != 0 ? "YES" : "no"),
             CounterCell(snapshot, "rollview_slo_events_total",
                         {{"view", view}, {"event", "shed_entry"}})
                 .c_str());
    }
    Append(&out, "  drivers    propagate ok=%s err=%s  apply ok=%s err=%s\n",
           CounterCell(snapshot, "rollview_step_total",
                       {{"view", view}, {"driver", "propagate"},
                        {"outcome", "ok"}})
               .c_str(),
           CounterCell(snapshot, "rollview_step_total",
                       {{"view", view}, {"driver", "propagate"},
                        {"outcome", "transient_error"}})
               .c_str(),
           CounterCell(snapshot, "rollview_step_total",
                       {{"view", view}, {"driver", "apply"},
                        {"outcome", "ok"}})
               .c_str(),
           CounterCell(snapshot, "rollview_step_total",
                       {{"view", view}, {"driver", "apply"},
                        {"outcome", "transient_error"}})
               .c_str());
  }
  return out;
}

std::string RenderInspectReport(const MetricsSnapshot& snapshot,
                                const TraceJournal* journal, size_t last_n) {
  std::string out;
  std::string digest = RenderViewDigest(snapshot);
  if (!digest.empty()) {
    out += digest;
    out += "\n";
  }
  out += RenderSnapshot(snapshot);
  if (journal != nullptr && last_n > 0) {
    Append(&out, "\nlast %zu step traces (%" PRIu64 " recorded, %zu retained):\n",
           last_n, journal->recorded(), journal->Snapshot().size());
    out += journal->DumpTrace(last_n);
  }
  return out;
}

}  // namespace obs
}  // namespace rollview
