// Copyright 2026 The rollview Authors.
//
// Human-oriented renderers over the telemetry layer's two export surfaces:
// a MetricsSnapshot (registry scrape) and a TraceJournal (retained step
// traces). The machine formats live next to the data they serialize
// (MetricsSnapshot::ToPrometheusText/ToJson, TraceJournal::ToJson); these
// functions produce the operator view the rollview_inspect CLI prints --
// metrics grouped by name with aligned values, and a per-view staleness
// digest pulled from the derived gauges.

#ifndef ROLLVIEW_OBS_INSPECT_H_
#define ROLLVIEW_OBS_INSPECT_H_

#include <cstddef>
#include <string>

#include "obs/registry.h"
#include "obs/trace.h"

namespace rollview {
namespace obs {

// Renders every sample grouped by metric name: one header line per metric,
// one indented `{labels} value` line per sample (histograms as
// count/p50/p95/p99/max). Sorted like the snapshot itself, so output is
// stable across scrapes of the same state.
std::string RenderSnapshot(const MetricsSnapshot& snapshot);

// One line per view found in the snapshot's derived gauges: hwm / mv CSN /
// staleness / rows-per-query target / backlog / shedding flag, plus a
// freshness line (time-domain staleness, e2e percentiles, SLO burn) when
// the view exports the freshness pipeline. Empty string when the snapshot
// has no per-view gauges. A metric absent from the snapshot renders as `-`
// -- distinguishable from a true zero.
std::string RenderViewDigest(const MetricsSnapshot& snapshot);

// One `--watch` dashboard frame: per-view freshness percentiles, stage
// breakdown (share of end-to-end time per pipeline stage), backlog and
// shedding/SLO state, plus driver step counters. `frame` is the refresh
// counter shown in the header. Metrics a view does not export render as
// `-`, like the digest.
std::string RenderWatchFrame(const MetricsSnapshot& snapshot, uint64_t frame);

// The full inspect report: view digest, grouped metrics, then the last
// `last_n` step traces from `journal` (skipped when null -- tracing
// disabled). This is exactly what rollview_inspect prints.
std::string RenderInspectReport(const MetricsSnapshot& snapshot,
                                const TraceJournal* journal, size_t last_n);

}  // namespace obs
}  // namespace rollview

#endif  // ROLLVIEW_OBS_INSPECT_H_
