// Copyright 2026 The rollview Authors.
//
// End-to-end freshness pipeline: per-CSN wall-time stamps at every stage a
// committed delta passes through on its way into a materialized view.
//
// The asynchronous maintenance pipeline (Def. 4.2) is
//
//   commit ack --> WAL durable --> strip pickup --> t_comp --> MV visible
//
// and `rollview_view_staleness_csn` only measures the gap in CSN units.
// The FreshnessTracker measures it in *time*: Db::Commit stamps a bounded
// per-CSN ring at commit ack, the WAL group-commit flusher stamps the
// durable frontier, each propagation strip stamps the range it picked up
// and the t_comp it reached, and the apply driver closes the loop when the
// MV becomes visible at a CSN. At visibility time every commit in the
// newly visible range is decomposed into four stage lags
//
//   durable    commit ack -> group-commit fsync covering the CSN
//   pickup     durable    -> start of the strip that consumed the CSN
//   propagate  pickup     -> hwm advance past the CSN (strip t_comp folded
//                            across partitions in parallel mode)
//   apply      propagate  -> MV visible at/after the CSN
//
// Each stage stamp is clamped to be >= the previous stage's stamp, so the
// four stage lags sum to the end-to-end commit-to-visibility latency
// *exactly* by construction (a missing stamp -- e.g. no durable WAL, or a
// strip that raced ahead of its own bookkeeping -- contributes a zero-lag
// stage instead of skewing the sum). E17 leans on this identity.
//
// All time flows through one injectable monotonic clock
// (FreshnessOptions::clock), so unit tests drive every stamp from a fake
// clock and assert exact latencies without sleeping.
//
// Threading: OnCommit is called by committers, OnDurable by the WAL
// flusher thread, OnStripStart/OnHwmAdvance by maintenance/worker-pool
// threads, OnVisible by the apply driver, OnRead by reader threads. The
// tracker and each per-view channel are internally synchronized; the
// histograms/counters they own are safe to scrape concurrently.

#ifndef ROLLVIEW_OBS_FRESHNESS_H_
#define ROLLVIEW_OBS_FRESHNESS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/csn.h"
#include "common/metrics.h"

namespace rollview {
namespace obs {

// Monotonic wall time in nanoseconds (std::chrono::steady_clock). The
// default clock when FreshnessOptions::clock is not set.
uint64_t SteadyClockNanos();

// The four measured stage lags, in pipeline order. Stage k's lag is the
// time from stage k-1's stamp to stage k's stamp (stage 0 starts at
// commit ack).
enum class FreshnessStage : uint8_t {
  kDurable = 0,    // commit ack -> WAL group-commit fsync
  kPickup = 1,     // durable -> strip start that consumed the CSN
  kPropagate = 2,  // strip start -> hwm advance past the CSN (t_comp)
  kApply = 3,      // hwm advance -> MV visible
};
inline constexpr size_t kFreshnessStageCount = 4;
const char* FreshnessStageName(FreshnessStage stage);

struct FreshnessOptions {
  // Monotonic nanosecond clock; tests inject a fake. Null uses
  // SteadyClockNanos.
  std::function<uint64_t()> clock;
  // Per-CSN commit-stamp ring: the last `commit_capacity` commits are
  // retained. A commit evicted before its view made it visible is counted
  // (rollview_freshness_evicted_total) instead of measured.
  size_t commit_capacity = 1 << 14;
  // Bound on retained stage-boundary events (durable frontier, per-view
  // pickup/t_comp series). Eviction rounds stamps toward "earlier", which
  // over-reports the evicted stage and under-reports the ones before it;
  // the end-to-end sum is unaffected.
  size_t boundary_capacity = 1024;
};

// A bounded series of monotone frontier events "boundary advanced to csn B
// at time t". The stamp for a CSN is the time of the *earliest* retained
// event whose boundary covers it -- the moment the frontier first passed
// the CSN. Not internally synchronized; callers hold their own mutex.
class BoundarySeries {
 public:
  explicit BoundarySeries(size_t capacity) : capacity_(capacity) {}

  // Records that the frontier reached `boundary` at `nanos`. Events that
  // do not advance the frontier are ignored (first stamp per boundary
  // wins: re-announcing an already-covered CSN never moves its stamp).
  void Push(Csn boundary, uint64_t nanos);

  // Time the frontier first covered `csn`; 0 when no retained event
  // covers it (not yet reached, or evicted -- callers clamp).
  uint64_t StampFor(Csn csn) const;

  // Drops events that can no longer be selected by StampFor for any
  // csn > through (i.e. events with boundary <= through).
  void DropCoveredThrough(Csn through);

  Csn frontier() const { return events_.empty() ? kNullCsn : events_.back().first; }
  size_t size() const { return events_.size(); }

 private:
  size_t capacity_;
  std::deque<std::pair<Csn, uint64_t>> events_;  // (boundary, nanos), ascending
};

class ViewFreshness;

// Process-wide stamp store shared by every view: the commit-ack ring and
// the durable frontier. Views register a ViewFreshness channel that owns
// the per-view series and instruments.
class FreshnessTracker {
 public:
  FreshnessTracker() : FreshnessTracker(FreshnessOptions{}) {}
  explicit FreshnessTracker(FreshnessOptions options);
  ~FreshnessTracker();

  FreshnessTracker(const FreshnessTracker&) = delete;
  FreshnessTracker& operator=(const FreshnessTracker&) = delete;

  uint64_t Now() const { return clock_(); }

  // Commit ack: called by Db::Commit once the CSN is assigned and the
  // transaction is committed (before the group-commit fsync wait, which
  // is durability, not ack). Safe from concurrent committers; CSNs may
  // arrive slightly out of order.
  void OnCommit(Csn csn);

  // Durable frontier: the WAL flusher advanced the fsynced prefix to
  // cover every commit <= up_to. Called from the flusher thread.
  void OnDurable(Csn up_to);

  // Returns the stable channel for `view_name`, creating it on first use
  // (same name returns the same channel). `visible_start` seeds the
  // visibility cursor: commits <= visible_start predate tracking.
  ViewFreshness* RegisterView(const std::string& view_name, Csn visible_start);
  ViewFreshness* FindView(const std::string& view_name) const;

  Csn last_commit_csn() const { return last_commit_.load(std::memory_order_acquire); }
  Csn durable_frontier() const;
  uint64_t commits_stamped() const { return stamped_.load(std::memory_order_relaxed); }
  size_t commit_capacity() const { return slots_.size(); }

 private:
  friend class ViewFreshness;

  struct CommitSlot {
    Csn csn = kNullCsn;
    uint64_t nanos = 0;
  };

  struct Stamp {
    uint64_t commit = 0;   // 0: never stamped (non-UOW commit) or evicted
    uint64_t durable = 0;  // 0: not yet durable (or commit missing)
    bool evicted = false;  // slot overwritten by a newer CSN
  };

  // Fills stamps for csns in [from, to], one lock acquisition for the
  // whole range. A missing commit stamp distinguishes "never stamped"
  // (commits that carry no delta are not tracked) from "evicted" (the
  // ring slot was reclaimed by a newer CSN before measurement).
  void StampRange(Csn from, Csn to, std::vector<Stamp>* out) const;

  std::function<uint64_t()> clock_;
  std::atomic<Csn> last_commit_{kNullCsn};
  std::atomic<uint64_t> stamped_{0};

  mutable std::mutex mu_;              // guards slots_, durable_
  std::vector<CommitSlot> slots_;      // ring keyed by csn % capacity
  BoundarySeries durable_;
  size_t boundary_capacity_;           // for per-view series

  mutable std::mutex views_mu_;        // guards views_
  std::vector<std::unique_ptr<ViewFreshness>> views_;  // stable pointers
};

// Per-view freshness channel: strip pickup + t_comp series, the
// visibility cursor, and the owned instruments
// (rollview_freshness_e2e_nanos, rollview_freshness_stage_nanos{stage},
// rollview_read_staleness_nanos, commit/eviction counters). Obtained from
// FreshnessTracker::RegisterView; pointer stable for the tracker's life.
class ViewFreshness {
 public:
  const std::string& view_name() const { return name_; }
  uint64_t Now() const { return tracker_->Now(); }
  FreshnessTracker* tracker() const { return tracker_; }

  // A propagation strip that started at `start_nanos` finished having
  // consumed every delta <= boundary. Called after the strip completes
  // (the boundary is only known then); `start_nanos` is taken before the
  // strip runs so queueing inside the strip counts as propagation, not
  // pickup.
  void OnStripStart(uint64_t start_nanos, Csn boundary);

  // The view's hwm (min over partition t_comp in parallel mode) advanced
  // to `hwm` at `nanos`.
  void OnHwmAdvance(Csn hwm, uint64_t nanos);

  struct VisibleReport {
    uint64_t commits = 0;        // commits measured into the histograms
    uint64_t evicted = 0;        // commits whose stamps were evicted
    uint64_t max_e2e_nanos = 0;  // slowest commit in this batch
  };

  // The MV became visible at mv_csn: decompose every commit in
  // (previous visible, mv_csn] into stage lags and record them. Called by
  // the apply driver (one thread at a time per view).
  VisibleReport OnVisible(Csn mv_csn);

  // A reader observed the view; records the staleness the reader saw.
  void OnRead();

  // Time-domain staleness right now: age of the oldest commit not yet
  // visible in this view (0 when fully caught up). An evicted oldest
  // commit falls back to the oldest retained stamp (under-estimates).
  uint64_t StalenessNanos() const;
  int64_t StalenessMicros() const {
    return static_cast<int64_t>(StalenessNanos() / 1000);
  }

  Csn visible_csn() const { return visible_.load(std::memory_order_acquire); }

  // Owned instruments, for registry registration (borrowed form).
  LatencyHistogram* e2e_hist() { return &e2e_; }
  LatencyHistogram* stage_hist(FreshnessStage stage) {
    return &stages_[static_cast<size_t>(stage)];
  }
  LatencyHistogram* read_staleness_hist() { return &read_staleness_; }
  uint64_t commits_total() const { return commits_.value(); }
  uint64_t evicted_total() const { return evicted_.value(); }

 private:
  friend class FreshnessTracker;
  ViewFreshness(FreshnessTracker* tracker, std::string name, Csn visible_start,
                size_t boundary_capacity);

  FreshnessTracker* tracker_;
  std::string name_;
  std::atomic<Csn> visible_;

  mutable std::mutex mu_;  // guards pickup_, comp_, serializes OnVisible
  BoundarySeries pickup_;
  BoundarySeries comp_;

  LatencyHistogram e2e_;
  LatencyHistogram stages_[kFreshnessStageCount];
  LatencyHistogram read_staleness_;
  Counter commits_;
  Counter evicted_;
};

// ---------------------------------------------------------------------------
// SLO evaluation.

struct FreshnessSloOptions {
  // Staleness target; 0 disables SLO evaluation entirely.
  uint64_t target_staleness_nanos = 0;
  // Sliding evaluation window.
  uint64_t window_nanos = 1'000'000'000ull;  // 1s
  // Error budget: the fraction of window samples allowed over target.
  // burn rate = violating-fraction / budget_fraction, so burn 1.0 means
  // the budget is being consumed exactly as fast as it accrues.
  double budget_fraction = 0.1;
  // Enter shedding at burn >= shed_burn, leave at burn <= recover_burn
  // (hysteresis so the controller doesn't flap at the boundary).
  double shed_burn = 1.0;
  double recover_burn = 0.5;
  // Minimum window samples before the evaluator acts.
  size_t min_samples = 4;
  // Bound on retained window samples.
  size_t max_samples = 256;
};

// Windowed burn-rate evaluator over observed staleness samples. Clock-free
// (times are passed in), so tests drive it deterministically. One caller
// thread observes; any thread may read the gauges.
class FreshnessSlo {
 public:
  explicit FreshnessSlo(FreshnessSloOptions options);

  bool enabled() const { return options_.target_staleness_nanos > 0; }
  const FreshnessSloOptions& options() const { return options_; }

  // Feeds one staleness sample taken at `now_nanos`. Returns true when
  // the shedding state flipped (caller re-applies shedding policy).
  bool Observe(uint64_t staleness_nanos, uint64_t now_nanos);

  bool shedding() const { return shedding_.load(std::memory_order_acquire); }
  // Whether the most recent sample violated the target.
  bool breaching() const { return breaching_.load(std::memory_order_relaxed); }
  // Burn rate scaled by 1000 (gauges are integral).
  int64_t burn_x1000() const { return burn_x1000_.load(std::memory_order_relaxed); }

  struct Stats {
    uint64_t evals = 0;
    uint64_t violations = 0;
    uint64_t shed_entries = 0;
    uint64_t shed_exits = 0;
  };
  Stats stats() const;

 private:
  FreshnessSloOptions options_;
  std::atomic<bool> shedding_{false};
  std::atomic<bool> breaching_{false};
  std::atomic<int64_t> burn_x1000_{0};

  mutable std::mutex mu_;
  std::deque<std::pair<uint64_t, bool>> window_;  // (nanos, violated)
  Stats stats_;
};

}  // namespace obs
}  // namespace rollview

#endif  // ROLLVIEW_OBS_FRESHNESS_H_
