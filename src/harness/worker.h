// Copyright 2026 The rollview Authors.
//
// Worker: a generic benchmark-harness thread running a work item in a loop
// -- updater transactions, MV reader queries, propagation steps, apply
// rolls. Records per-iteration latency and supports optional pacing (target
// iterations/second) so experiments can fix offered load.

#ifndef ROLLVIEW_HARNESS_WORKER_H_
#define ROLLVIEW_HARNESS_WORKER_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>

#include "common/metrics.h"
#include "common/status.h"

namespace rollview {

class Worker {
 public:
  struct Options {
    std::string name = "worker";
    // 0 = unpaced (run flat out).
    double target_ops_per_sec = 0.0;
    // When true, a transient body error (Status::IsTransient) does not stop
    // the worker: it is counted in transient_errors() and the loop goes on.
    // Permanent errors always stop the worker and surface through Join().
    bool retry_transient_errors = false;
    // Backpressure hook, polled before every iteration. While it returns
    // true the worker sleeps backpressure_delay instead of running the
    // body (counted in throttled_iterations). The shedding wiring point: a
    // load generator passes [&svc] { return svc.shedding(); } so capture
    // intake slows while maintenance digs out of its backlog.
    std::function<bool()> backpressure;
    std::chrono::microseconds backpressure_delay{1000};
  };

  // `body` runs once per iteration; a non-OK status stops the worker and is
  // reported by Join().
  explicit Worker(std::function<Status()> body)
      : Worker(std::move(body), Options{}) {}
  Worker(std::function<Status()> body, Options options)
      : body_(std::move(body)), options_(std::move(options)) {}

  ~Worker() { Join().ok(); }  // stop AND join: the thread uses our members

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  void Start();
  void Stop();            // request stop; does not join
  Status Join();          // stop and wait; returns first error (or OK)

  uint64_t iterations() const {
    return iterations_.load(std::memory_order_relaxed);
  }
  uint64_t transient_errors() const {
    return transient_errors_.load(std::memory_order_relaxed);
  }
  uint64_t throttled_iterations() const {
    return throttled_.load(std::memory_order_relaxed);
  }
  const LatencyHistogram& latency() const { return latency_; }
  const std::string& name() const { return options_.name; }

 private:
  void Run();

  std::function<Status()> body_;
  Options options_;

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> iterations_{0};
  std::atomic<uint64_t> transient_errors_{0};
  std::atomic<uint64_t> throttled_{0};
  LatencyHistogram latency_;
  Status error_;
};

}  // namespace rollview

#endif  // ROLLVIEW_HARNESS_WORKER_H_
