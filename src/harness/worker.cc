#include "harness/worker.h"

namespace rollview {

void Worker::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  thread_ = std::thread([this] { Run(); });
}

void Worker::Stop() { running_.store(false, std::memory_order_relaxed); }

Status Worker::Join() {
  Stop();
  if (thread_.joinable()) thread_.join();
  return error_;
}

void Worker::Run() {
  using Clock = std::chrono::steady_clock;
  const bool paced = options_.target_ops_per_sec > 0.0;
  const auto period =
      paced ? std::chrono::nanoseconds(static_cast<int64_t>(
                  1e9 / options_.target_ops_per_sec))
            : std::chrono::nanoseconds(0);
  auto next_due = Clock::now();

  while (running_.load(std::memory_order_relaxed)) {
    if (options_.backpressure && options_.backpressure()) {
      throttled_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(options_.backpressure_delay);
      // Do not bank missed slots while throttled.
      if (paced) next_due = Clock::now();
      continue;
    }
    if (paced) {
      auto now = Clock::now();
      if (now < next_due) {
        std::this_thread::sleep_until(next_due);
      }
      next_due += period;
      // Do not accumulate unbounded backlog when the body is slower than
      // the pace: reset the schedule if we fall more than one period behind.
      if (Clock::now() > next_due + period) next_due = Clock::now();
    }
    auto start = Clock::now();
    Status s = body_();
    auto end = Clock::now();
    latency_.Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count()));
    iterations_.fetch_add(1, std::memory_order_relaxed);
    if (!s.ok()) {
      if (options_.retry_transient_errors && s.IsTransient()) {
        transient_errors_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      error_ = s;
      running_.store(false, std::memory_order_relaxed);
      break;
    }
  }
}

}  // namespace rollview
