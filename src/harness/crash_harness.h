// Copyright 2026 The rollview Authors.
//
// Crash-injection harness: kills a live engine at an arbitrary WAL position
// and brings up a replacement from the surviving log bytes, exercising the
// whole recovery stack (wal_codec prefix decode -> Db::Recover ->
// LogCapture::CatchUp -> view re-registration -> ViewManager::Recover).
//
// A "crash" here is byte-level, not process-level: the harness snapshots the
// encoded WAL, then optionally truncates it mid-record (a torn tail) or
// flips a single bit (media corruption), then discards every in-memory
// structure and recovers into a fresh Db/ViewManager. Tests drive crash
// points from FaultInjector::MaybeCrashPoint so a fixed seed gives a fixed
// crash schedule.

#ifndef ROLLVIEW_HARNESS_CRASH_HARNESS_H_
#define ROLLVIEW_HARNESS_CRASH_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "capture/log_capture.h"
#include "ivm/view_manager.h"
#include "storage/db.h"

namespace rollview {

// How the durable log is damaged at the crash.
struct CrashSpec {
  // Keep only the first `keep_bytes` of the encoded WAL (values >= the log
  // size keep everything). Cutting inside a record produces a torn tail.
  size_t keep_bytes = static_cast<size_t>(-1);
  // Flip one bit (at byte flip_offset, bit flip_offset % 8) after the
  // truncation. Recovery must stop cleanly at the damaged record.
  bool flip_bit = false;
  size_t flip_offset = 0;
};

// A view definition to re-register after the crash (SpjViewDef holds
// expression trees, so definitions live in code, not in the log).
struct ViewDefSpec {
  std::string name;
  SpjViewDef def;
};

// Everything that survived the crash.
struct RecoveredSystem {
  std::unique_ptr<Db> db;
  std::unique_ptr<LogCapture> capture;  // constructed but not started
  std::unique_ptr<ViewManager> views;
  ViewManager::RecoveryReport report;
  size_t records_recovered = 0;
  bool torn_tail = false;       // the log ended mid-record
  std::string corruption;       // non-empty: tail dropped at a damaged record
  // Views whose re-registration failed (e.g. a base table's creation record
  // was lost to the tail cut); absent from `views`.
  std::vector<std::string> unregistered_views;
};

// Serializes the engine's full WAL to its on-disk byte encoding. Requires
// capture with truncate_wal=false (the log must still hold history from
// LSN 0 -- it IS the durable state).
std::string SnapshotEncodedWal(Db* db);

// Applies the damage described by `spec` to an encoded WAL image.
std::string ApplyCrashSpec(const std::string& encoded, const CrashSpec& spec);

// Tears a system down to `encoded_wal` and recovers: decodes the longest
// valid prefix, replays it into a fresh engine, catches capture up,
// re-registers `defs` by name, and runs ViewManager::Recover. Returns the
// recovered bundle; per-view outcomes are in `report` /
// `unregistered_views`. The capture is constructed with truncate_wal=false
// so the result can itself be crashed again.
Result<RecoveredSystem> CrashAndRecover(const std::string& encoded_wal,
                                        const std::vector<ViewDefSpec>& defs,
                                        DbOptions db_options = DbOptions{});

// File-backed analogue of CrashAndRecover, for crashes that left their
// damage in a durable WAL directory (storage/wal_segment.h) rather than an
// encoded byte string: scans the directory (latest checkpoint image +
// retained segment suffix), replays both through the same recovery stack,
// then re-attaches the directory at the next generation --
// ivm/checkpoint.h AttachDurableWalDir publishes the recovered engine's
// checkpoint as the commit point of recovery and starts the group-commit
// flusher. The returned system is immediately writable; crashing it again
// is just dropping it and calling RecoverFromWalDir on the same directory,
// which also makes a crash *during* recovery (before the publish lands)
// idempotent. `db_options.wal_segment_bytes` / `wal_group_commit` shape the
// re-attached store; `wal_dir` in the options is ignored (the `dir`
// argument wins). `records_recovered` counts image + suffix records;
// `torn_tail` reports a cut in the last segment.
Result<RecoveredSystem> RecoverFromWalDir(const std::string& dir,
                                          const std::vector<ViewDefSpec>& defs,
                                          DbOptions db_options = DbOptions{});

}  // namespace rollview

#endif  // ROLLVIEW_HARNESS_CRASH_HARNESS_H_
