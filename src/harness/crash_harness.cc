#include "harness/crash_harness.h"

#include "ivm/checkpoint.h"
#include "storage/wal_codec.h"
#include "storage/wal_segment.h"

namespace rollview {

std::string SnapshotEncodedWal(Db* db) {
  std::vector<WalRecord> records;
  db->wal()->ReadFrom(0, static_cast<size_t>(-1), &records);
  return EncodeWal(records);
}

std::string ApplyCrashSpec(const std::string& encoded,
                           const CrashSpec& spec) {
  std::string damaged =
      spec.keep_bytes < encoded.size() ? encoded.substr(0, spec.keep_bytes)
                                       : encoded;
  if (spec.flip_bit && !damaged.empty()) {
    size_t at = spec.flip_offset % damaged.size();
    damaged[at] = static_cast<char>(
        static_cast<unsigned char>(damaged[at]) ^
        (1u << (spec.flip_offset % 8)));
  }
  return damaged;
}

Result<RecoveredSystem> CrashAndRecover(const std::string& encoded_wal,
                                        const std::vector<ViewDefSpec>& defs,
                                        DbOptions db_options) {
  RecoveredSystem sys;

  // The longest cleanly decodable prefix is the durable truth; everything
  // after a torn or corrupt record is gone (a fsync'd log never has valid
  // records after a damaged one).
  WalPrefix prefix = DecodeWalPrefix(encoded_wal);
  sys.records_recovered = prefix.records.size();
  sys.torn_tail = prefix.torn_tail;
  if (!prefix.corruption.ok()) sys.corruption = prefix.corruption.ToString();

  ROLLVIEW_ASSIGN_OR_RETURN(sys.db,
                            Db::Recover(prefix.records, db_options));

  CaptureOptions copts;
  copts.truncate_wal = false;  // keep the log replayable for the next crash
  sys.capture = std::make_unique<LogCapture>(sys.db.get(), copts);
  sys.capture->CatchUp();

  sys.views = std::make_unique<ViewManager>(sys.db.get(), sys.capture.get());
  for (const ViewDefSpec& spec : defs) {
    Result<View*> v = sys.views->CreateView(spec.name, spec.def);
    if (!v.ok()) {
      // Typically a base table whose creation record fell past the cut;
      // the caller decides whether that is fatal for the scenario.
      sys.unregistered_views.push_back(spec.name);
    }
  }

  ROLLVIEW_RETURN_NOT_OK(
      sys.views->Recover(prefix.records, &sys.report));
  return std::move(sys);
}

Result<RecoveredSystem> RecoverFromWalDir(const std::string& dir,
                                          const std::vector<ViewDefSpec>& defs,
                                          DbOptions db_options) {
  ROLLVIEW_ASSIGN_OR_RETURN(WalDirScan scan, ScanWalDir(dir));
  std::vector<WalRecord> records = std::move(scan.image);
  records.insert(records.end(), scan.suffix.begin(), scan.suffix.end());

  RecoveredSystem sys;
  sys.records_recovered = records.size();
  sys.torn_tail = scan.torn_tail;

  // Replay runs against the in-memory log (Db::Recover clears wal_dir);
  // the directory is re-attached once the replayed state is complete.
  ROLLVIEW_ASSIGN_OR_RETURN(sys.db, Db::Recover(records, db_options));

  CaptureOptions copts;
  copts.truncate_wal = false;  // the reattach snapshots the log from LSN 0
  sys.capture = std::make_unique<LogCapture>(sys.db.get(), copts);
  sys.capture->CatchUp();

  sys.views = std::make_unique<ViewManager>(sys.db.get(), sys.capture.get());
  for (const ViewDefSpec& spec : defs) {
    Result<View*> v = sys.views->CreateView(spec.name, spec.def);
    if (!v.ok()) {
      sys.unregistered_views.push_back(spec.name);
    }
  }
  ROLLVIEW_RETURN_NOT_OK(sys.views->Recover(records, &sys.report));

  DurableWalOptions wopts;
  wopts.dir = dir;
  wopts.segment_bytes = db_options.wal_segment_bytes;
  wopts.group_commit = db_options.wal_group_commit;
  ROLLVIEW_RETURN_NOT_OK(AttachDurableWalDir(
      sys.db.get(), sys.views.get(), wopts, scan.max_generation + 1));
  return std::move(sys);
}

}  // namespace rollview
