// Copyright 2026 The rollview Authors.
//
// MvReader: a query workload against a materialized view. Each query takes
// an S lock on the view's resource (serializing with the apply driver's X
// lock) and scans the MV contents -- the reader side of the paper's
// refresh-vs-read contention story.
//
// Reads against a quarantined view (scrub detected corruption, repair
// pending) obey DbOptions::quarantine_read_policy: fail-fast returns a
// transient Busy so callers retry past the repair; serve-stale reads the
// damaged extent anyway.

#ifndef ROLLVIEW_HARNESS_MV_READER_H_
#define ROLLVIEW_HARNESS_MV_READER_H_

#include "common/status.h"
#include "ivm/view_manager.h"

namespace rollview {

namespace obs {
class ViewFreshness;
}  // namespace obs

class MvReader {
 public:
  MvReader(ViewManager* views, View* view) : views_(views), view_(view) {}

  // One read query: S-lock the view, aggregate its contents. Returns the
  // observed multiset size through `out` (optional).
  Status ReadOnce(int64_t* out_total_count = nullptr);

  // Freshness channel (obs/freshness.h): each successful read records the
  // staleness the reader observed into rollview_read_staleness_nanos --
  // the user-facing side of the freshness SLO. Null disables (default).
  void set_freshness(obs::ViewFreshness* channel) { freshness_ = channel; }

  uint64_t reads() const { return reads_; }
  // Reads rejected by the fail-fast quarantine gate.
  uint64_t quarantine_rejects() const { return quarantine_rejects_; }

 private:
  ViewManager* views_;
  View* view_;
  obs::ViewFreshness* freshness_ = nullptr;
  uint64_t reads_ = 0;
  uint64_t quarantine_rejects_ = 0;
};

}  // namespace rollview

#endif  // ROLLVIEW_HARNESS_MV_READER_H_
