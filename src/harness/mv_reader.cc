#include "harness/mv_reader.h"

#include "obs/freshness.h"

namespace rollview {

Status MvReader::ReadOnce(int64_t* out_total_count) {
  // Quarantine gate: a view the scrubber has marked damaged either rejects
  // the read with a transient error (the default -- readers retry and
  // succeed once repair clears it) or knowingly serves the damaged extent,
  // per the engine-wide policy.
  if (view_->quarantined() &&
      views_->db()->options().quarantine_read_policy ==
          QuarantineReadPolicy::kFailFast) {
    ++quarantine_rejects_;
    return Status::Busy("view '" + view_->name +
                        "' is quarantined pending scrub repair");
  }
  std::unique_ptr<Txn> txn = views_->db()->Begin();
  Status s = views_->db()->LockNamedShared(txn.get(), view_->mv_lock_resource);
  if (!s.ok()) {
    views_->db()->Abort(txn.get()).ok();
    return s;
  }
  int64_t total = view_->mv->TotalCount();
  s = views_->db()->Commit(txn.get());
  if (!s.ok()) {
    views_->db()->Abort(txn.get()).ok();  // failed commit leaves it active
    return s;
  }
  if (out_total_count != nullptr) *out_total_count = total;
  ++reads_;
  if (freshness_ != nullptr) freshness_->OnRead();
  return Status::OK();
}

}  // namespace rollview
