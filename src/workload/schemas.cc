#include "workload/schemas.h"

#include <memory>

namespace rollview {

namespace {

// Deterministic 64-bit mix for deriving payload fields from keys.
int64_t MixKey(int64_t key, uint64_t salt) {
  uint64_t x = static_cast<uint64_t>(key) * 0x9e3779b97f4a7c15ULL + salt;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  return static_cast<int64_t>(x & 0x7fffffffffffffffULL);
}

constexpr int64_t kPartitionStride = 1'000'000'000'000LL;

}  // namespace

// --- TwoTableWorkload ---

Result<TwoTableWorkload> TwoTableWorkload::Create(
    Db* db, int64_t r_rows, int64_t s_rows, int64_t join_domain,
    uint64_t seed, CaptureMode capture_mode, const std::string& prefix) {
  TwoTableWorkload w;
  w.join_domain = join_domain;

  Schema r_schema({Column{"rkey", ValueType::kInt64},
                   Column{"jkey", ValueType::kInt64},
                   Column{"rval", ValueType::kInt64}});
  Schema s_schema({Column{"skey", ValueType::kInt64},
                   Column{"jkey", ValueType::kInt64},
                   Column{"sval", ValueType::kInt64}});
  TableOptions options;
  options.capture_mode = capture_mode;
  options.indexed_columns = {0, 1};  // key and join column
  ROLLVIEW_ASSIGN_OR_RETURN(w.r,
                            db->CreateTable(prefix + "R", r_schema, options));
  ROLLVIEW_ASSIGN_OR_RETURN(w.s,
                            db->CreateTable(prefix + "S", s_schema, options));

  Rng rng(seed);
  std::unique_ptr<Txn> txn = db->Begin();
  for (int64_t k = 0; k < r_rows; ++k) {
    ROLLVIEW_RETURN_NOT_OK(db->Insert(
        txn.get(), w.r,
        Tuple{Value(k), Value(rng.Uniform(0, join_domain - 1)),
              Value(MixKey(k, 1))}));
  }
  for (int64_t k = 0; k < s_rows; ++k) {
    ROLLVIEW_RETURN_NOT_OK(db->Insert(
        txn.get(), w.s,
        Tuple{Value(k), Value(rng.Uniform(0, join_domain - 1)),
              Value(MixKey(k, 2))}));
  }
  ROLLVIEW_RETURN_NOT_OK(db->Commit(txn.get()));
  return w;
}

SpjViewDef TwoTableWorkload::ViewDef() const {
  return ChainJoin({r, s}, {{1, 1}});  // R.jkey = S.jkey
}

UpdateStreamConfig TwoTableWorkload::RStream(int64_t partition,
                                             uint64_t seed) const {
  UpdateStreamConfig cfg;
  cfg.table = r;
  cfg.first_key = (partition + 1) * kPartitionStride;
  int64_t domain = join_domain;
  auto rng = std::make_shared<Rng>(seed);
  cfg.make_tuple = [rng, domain](int64_t key) {
    return Tuple{Value(key), Value(rng->Uniform(0, domain - 1)),
                 Value(MixKey(key, 1))};
  };
  return cfg;
}

UpdateStreamConfig TwoTableWorkload::SStream(int64_t partition,
                                             uint64_t seed) const {
  UpdateStreamConfig cfg = RStream(partition, seed);
  cfg.table = s;
  int64_t domain = join_domain;
  auto rng = std::make_shared<Rng>(seed ^ 0xabcdef);
  cfg.make_tuple = [rng, domain](int64_t key) {
    return Tuple{Value(key), Value(rng->Uniform(0, domain - 1)),
                 Value(MixKey(key, 2))};
  };
  return cfg;
}

// --- StarSchemaWorkload ---

Result<StarSchemaWorkload> StarSchemaWorkload::Create(Db* db,
                                                      StarSchemaConfig config,
                                                      uint64_t seed) {
  StarSchemaWorkload w;
  w.config = config;
  if (w.config.fact_fanout == 0) w.config.fact_fanout = config.dim_rows;

  TableOptions dim_options;
  dim_options.capture_mode = config.capture_mode;
  dim_options.indexed_columns = {0};
  Schema dim_schema({Column{"dkey", ValueType::kInt64},
                     Column{"attr", ValueType::kInt64},
                     Column{"label", ValueType::kString}});
  for (size_t d = 0; d < config.num_dims; ++d) {
    ROLLVIEW_ASSIGN_OR_RETURN(
        TableId id,
        db->CreateTable(config.prefix + "dim" + std::to_string(d), dim_schema,
                        dim_options));
    w.dims.push_back(id);
  }

  std::vector<Column> fact_cols{Column{"fkey", ValueType::kInt64}};
  TableOptions fact_options;
  fact_options.capture_mode = config.capture_mode;
  fact_options.indexed_columns = {0};
  for (size_t d = 0; d < config.num_dims; ++d) {
    fact_cols.push_back(Column{"d" + std::to_string(d), ValueType::kInt64});
    fact_options.indexed_columns.push_back(d + 1);
  }
  fact_cols.push_back(Column{"amount", ValueType::kDouble});
  ROLLVIEW_ASSIGN_OR_RETURN(
      w.fact, db->CreateTable(config.prefix + "fact", Schema(fact_cols),
                              fact_options));

  // Bulk load.
  Rng rng(seed);
  Zipf zipf(w.config.fact_fanout, config.zipf_theta);
  std::unique_ptr<Txn> txn = db->Begin();
  for (size_t d = 0; d < config.num_dims; ++d) {
    for (int64_t k = 0; k < config.dim_rows; ++k) {
      ROLLVIEW_RETURN_NOT_OK(db->Insert(
          txn.get(), w.dims[d],
          Tuple{Value(k), Value(MixKey(k, d)),
                Value("d" + std::to_string(d) + "_" + std::to_string(k))}));
    }
  }
  for (int64_t k = 0; k < config.fact_rows; ++k) {
    Tuple t{Value(k)};
    for (size_t d = 0; d < config.num_dims; ++d) {
      t.push_back(Value(zipf.Sample(rng)));
    }
    t.push_back(Value(static_cast<double>(rng.Uniform(1, 10000)) / 100.0));
    ROLLVIEW_RETURN_NOT_OK(db->Insert(txn.get(), w.fact, std::move(t)));
  }
  ROLLVIEW_RETURN_NOT_OK(db->Commit(txn.get()));
  return w;
}

SpjViewDef StarSchemaWorkload::ViewDef() const {
  std::vector<size_t> fact_cols;
  std::vector<size_t> dim_keys;
  for (size_t d = 0; d < dims.size(); ++d) {
    fact_cols.push_back(d + 1);  // fact.d<d>
    dim_keys.push_back(0);       // dim.dkey
  }
  return StarJoin(fact, dims, fact_cols, dim_keys);
}

UpdateStreamConfig StarSchemaWorkload::FactStream(int64_t partition,
                                                  uint64_t seed) const {
  UpdateStreamConfig cfg;
  cfg.table = fact;
  cfg.first_key = (partition + 1) * kPartitionStride;
  cfg.delete_prob = 0.2;
  cfg.update_prob = 0.2;
  size_t num_dims = dims.size();
  auto rng = std::make_shared<Rng>(seed);
  auto zipf = std::make_shared<Zipf>(config.fact_fanout, config.zipf_theta);
  cfg.make_tuple = [rng, zipf, num_dims](int64_t key) {
    Tuple t{Value(key)};
    for (size_t d = 0; d < num_dims; ++d) {
      t.push_back(Value(zipf->Sample(*rng)));
    }
    t.push_back(Value(static_cast<double>(rng->Uniform(1, 10000)) / 100.0));
    return t;
  };
  return cfg;
}

UpdateStreamConfig StarSchemaWorkload::DimStream(size_t d, int64_t partition,
                                                 uint64_t /*seed*/) const {
  UpdateStreamConfig cfg;
  cfg.table = dims[d];
  cfg.first_key = (partition + 1) * kPartitionStride;
  // Dimensions churn by in-place attribute updates (key preserved).
  cfg.delete_prob = 0.0;
  cfg.update_prob = 1.0;
  cfg.make_tuple = [d](int64_t key) {
    return Tuple{Value(key), Value(MixKey(key, d)),
                 Value("d" + std::to_string(d) + "_" + std::to_string(key))};
  };
  cfg.mutate_tuple = [](const Tuple& old_tuple, int64_t fresh) {
    Tuple t = old_tuple;
    t[1] = Value(MixKey(fresh, 99));
    return t;
  };
  return cfg;
}

}  // namespace rollview
