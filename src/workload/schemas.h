// Copyright 2026 The rollview Authors.
//
// Canned workload schemas used by tests, examples, and benchmarks:
//
//  * TwoTableWorkload -- R(rkey, jkey, rval) |><| S(jkey, sval) on jkey.
//    Small and easy to reason about; the unit/property tests' workhorse.
//
//  * StarSchemaWorkload -- sales fact table joined to `num_dims` dimension
//    tables. The paper's motivating case for per-relation propagation
//    intervals (Sec. 3.4): "a star schema in which the central fact table
//    is frequently updated and the surrounding dimension tables are rarely
//    updated."

#ifndef ROLLVIEW_WORKLOAD_SCHEMAS_H_
#define ROLLVIEW_WORKLOAD_SCHEMAS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "ivm/view_def.h"
#include "storage/db.h"
#include "workload/update_stream.h"

namespace rollview {

// --- Two-table chain ---

struct TwoTableWorkload {
  TableId r = kInvalidTableId;  // R(rkey INT64, jkey INT64, rval INT64)
  TableId s = kInvalidTableId;  // S(skey INT64, jkey INT64, sval INT64)
  int64_t join_domain = 64;     // jkey drawn from [0, join_domain)

  // Creates the tables (indexes on key and join columns) and bulk-loads
  // `r_rows` / `s_rows` seeded rows.
  static Result<TwoTableWorkload> Create(Db* db, int64_t r_rows,
                                         int64_t s_rows, int64_t join_domain,
                                         uint64_t seed,
                                         CaptureMode capture_mode =
                                             CaptureMode::kLog,
                                         const std::string& prefix = "");

  // V = R |><|_{jkey} S.
  SpjViewDef ViewDef() const;

  // Update stream over R or S; `partition` picks a disjoint key range.
  UpdateStreamConfig RStream(int64_t partition, uint64_t seed) const;
  UpdateStreamConfig SStream(int64_t partition, uint64_t seed) const;
};

// --- Star schema ---

struct StarSchemaConfig {
  size_t num_dims = 2;
  int64_t dim_rows = 200;       // rows per dimension table
  int64_t fact_rows = 2000;     // initial fact rows
  int64_t fact_fanout = 0;      // fact fk domain; 0 = dim_rows (all keys)
  double zipf_theta = 0.8;      // fk skew when sampling dimension keys
  CaptureMode capture_mode = CaptureMode::kLog;
  std::string prefix;           // table-name prefix (multiple instances)
};

struct StarSchemaWorkload {
  TableId fact = kInvalidTableId;
  // fact schema: (fkey INT64, d0 INT64, ..., d{n-1} INT64, amount DOUBLE)
  std::vector<TableId> dims;
  // dim schema: (dkey INT64, attr INT64, label STRING)
  StarSchemaConfig config;

  static Result<StarSchemaWorkload> Create(Db* db, StarSchemaConfig config,
                                           uint64_t seed);

  // V = fact |><| dim_0 |><| ... |><| dim_{n-1}.
  SpjViewDef ViewDef() const;

  UpdateStreamConfig FactStream(int64_t partition, uint64_t seed) const;
  UpdateStreamConfig DimStream(size_t d, int64_t partition,
                               uint64_t seed) const;
};

}  // namespace rollview

#endif  // ROLLVIEW_WORKLOAD_SCHEMAS_H_
