// Copyright 2026 The rollview Authors.
//
// TableMirror: a client-side mirror of the tuples a workload generator has
// inserted into (a partition of) a table, so deletes and updates can target
// rows that actually exist. Each generator thread owns a disjoint key
// partition and therefore its own mirror; mirrors never race.

#ifndef ROLLVIEW_WORKLOAD_MIRROR_H_
#define ROLLVIEW_WORKLOAD_MIRROR_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "schema/tuple.h"

namespace rollview {

class TableMirror {
 public:
  void Add(Tuple tuple) { tuples_.push_back(std::move(tuple)); }

  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  const Tuple& Peek(size_t i) const { return tuples_[i]; }

  // Removes and returns a uniformly random tuple (swap-remove).
  Tuple TakeRandom(Rng& rng) {
    size_t i = static_cast<size_t>(rng.Uniform(0, static_cast<int64_t>(
                                                      tuples_.size() - 1)));
    Tuple out = std::move(tuples_[i]);
    tuples_[i] = std::move(tuples_.back());
    tuples_.pop_back();
    return out;
  }

 private:
  std::vector<Tuple> tuples_;
};

}  // namespace rollview

#endif  // ROLLVIEW_WORKLOAD_MIRROR_H_
