#include "workload/update_stream.h"

#include <cassert>
#include <thread>

namespace rollview {

UpdateStream::UpdateStream(Db* db, UpdateStreamConfig config, uint64_t seed)
    : db_(db),
      config_(std::move(config)),
      rng_(seed),
      next_key_(config_.first_key) {
  assert(config_.make_tuple && "UpdateStreamConfig::make_tuple is required");
  assert(config_.delete_prob + config_.update_prob <= 1.0);
}

std::vector<UpdateStream::PlannedOp> UpdateStream::Plan() {
  std::vector<PlannedOp> ops;
  ops.reserve(config_.ops_per_txn);
  // Victims are removed from the mirror at plan time so one transaction
  // never targets the same row twice; if the transaction ultimately fails
  // (after retries) the stream is unusable and should be discarded.
  for (size_t k = 0; k < config_.ops_per_txn; ++k) {
    double roll = rng_.NextDouble();
    bool can_mutate = !mirror_.empty();
    if (can_mutate && roll < config_.delete_prob) {
      Tuple victim = mirror_.TakeRandom(rng_);
      ops.push_back(PlannedOp{PlannedOp::Kind::kDelete, std::move(victim),
                              {}});
    } else if (can_mutate &&
               roll < config_.delete_prob + config_.update_prob) {
      Tuple old_tuple = mirror_.TakeRandom(rng_);
      Tuple new_tuple = config_.mutate_tuple
                            ? config_.mutate_tuple(old_tuple, next_key_++)
                            : config_.make_tuple(next_key_++);
      ops.push_back(PlannedOp{PlannedOp::Kind::kUpdate, old_tuple,
                              new_tuple});
    } else {
      Tuple fresh = config_.make_tuple(next_key_++);
      ops.push_back(
          PlannedOp{PlannedOp::Kind::kInsert, std::move(fresh), {}});
    }
  }
  return ops;
}

Status UpdateStream::Apply(Txn* txn, const std::vector<PlannedOp>& ops) {
  for (const PlannedOp& op : ops) {
    switch (op.kind) {
      case PlannedOp::Kind::kInsert:
        ROLLVIEW_RETURN_NOT_OK(db_->Insert(txn, config_.table, op.tuple));
        break;
      case PlannedOp::Kind::kDelete: {
        ROLLVIEW_ASSIGN_OR_RETURN(
            int64_t n, db_->DeleteTuple(txn, config_.table, op.tuple, 1));
        if (n != 1) {
          return Status::Internal("workload delete victim missing");
        }
        break;
      }
      case PlannedOp::Kind::kUpdate:
        ROLLVIEW_RETURN_NOT_OK(
            db_->Update(txn, config_.table, op.tuple, op.new_tuple));
        break;
    }
  }
  return Status::OK();
}

Status UpdateStream::RunTransaction(int max_retries) {
  std::vector<PlannedOp> ops = Plan();
  int attempts = 0;
  while (true) {
    std::unique_ptr<Txn> txn = db_->Begin();
    Status s = Apply(txn.get(), ops);
    if (s.ok()) s = db_->Commit(txn.get());
    if (s.ok()) break;
    if (txn->state() == TxnState::kActive) db_->Abort(txn.get()).ok();
    if (!(s.IsTxnAborted() || s.IsBusy()) || ++attempts > max_retries) {
      return s;
    }
    stats_.aborts_retried++;
    std::this_thread::sleep_for(std::chrono::microseconds(100) * attempts);
  }

  // Success: sync the mirror.
  for (const PlannedOp& op : ops) {
    switch (op.kind) {
      case PlannedOp::Kind::kInsert:
        mirror_.Add(op.tuple);
        stats_.inserts++;
        break;
      case PlannedOp::Kind::kDelete:
        stats_.deletes++;  // victim already removed from the mirror by Plan
        break;
      case PlannedOp::Kind::kUpdate:
        mirror_.Add(op.new_tuple);
        stats_.updates++;
        break;
    }
    stats_.ops++;
  }
  stats_.txns++;
  return Status::OK();
}

Status UpdateStream::RunTransactions(size_t n, int max_retries) {
  for (size_t i = 0; i < n; ++i) {
    ROLLVIEW_RETURN_NOT_OK(RunTransaction(max_retries));
  }
  return Status::OK();
}

}  // namespace rollview
