// Copyright 2026 The rollview Authors.
//
// UpdateStream: a deterministic, seeded generator of update transactions
// against one base table. Each transaction performs a configurable number of
// operations drawn from an insert/delete/update mix; deletes and updates
// target rows previously inserted by this stream (its key partition), so
// transactions never fail for want of a victim.

#ifndef ROLLVIEW_WORKLOAD_UPDATE_STREAM_H_
#define ROLLVIEW_WORKLOAD_UPDATE_STREAM_H_

#include <functional>

#include "common/rng.h"
#include "common/status.h"
#include "storage/db.h"
#include "workload/mirror.h"

namespace rollview {

struct UpdateStreamConfig {
  TableId table = kInvalidTableId;
  // Operation mix; must sum to <= 1, remainder goes to insert.
  double delete_prob = 0.2;
  double update_prob = 0.3;
  // Operations per transaction.
  size_t ops_per_txn = 4;
  // Produces a fresh tuple for key `k` (keys are unique per stream).
  std::function<Tuple(int64_t key)> make_tuple;
  // Optional: derive an update's new row from the old one (e.g. to preserve
  // the primary key while changing attributes -- dimension-table updates).
  // When unset, updates insert make_tuple(fresh_key) instead.
  std::function<Tuple(const Tuple& old_tuple, int64_t fresh_key)> mutate_tuple;
  // First key this stream allocates; streams sharing a table use disjoint
  // ranges (e.g. thread t starts at t * 1'000'000'000).
  int64_t first_key = 0;
};

class UpdateStream {
 public:
  UpdateStream(Db* db, UpdateStreamConfig config, uint64_t seed);

  // Pre-populates the mirror with rows that already exist in the table
  // (e.g. bulk-loaded dimension rows), making them eligible as update and
  // delete victims. The rows must belong exclusively to this stream.
  void SeedMirror(std::vector<Tuple> rows) {
    for (Tuple& t : rows) mirror_.Add(std::move(t));
  }

  // Runs one transaction. Deadlock-victim aborts are retried internally up
  // to `max_retries`; other errors propagate.
  Status RunTransaction(int max_retries = 32);

  // Runs `n` transactions back to back.
  Status RunTransactions(size_t n, int max_retries = 32);

  struct Stats {
    uint64_t txns = 0;
    uint64_t ops = 0;
    uint64_t inserts = 0;
    uint64_t deletes = 0;
    uint64_t updates = 0;
    uint64_t aborts_retried = 0;
  };
  const Stats& stats() const { return stats_; }
  size_t live_rows() const { return mirror_.size(); }

 private:
  struct PlannedOp {
    enum class Kind { kInsert, kDelete, kUpdate } kind;
    Tuple tuple;      // insert: new row; delete: victim; update: old row
    Tuple new_tuple;  // update only
  };

  // Plans a transaction against the mirror (mirror mutated only on success).
  std::vector<PlannedOp> Plan();
  Status Apply(Txn* txn, const std::vector<PlannedOp>& ops);

  Db* db_;
  UpdateStreamConfig config_;
  Rng rng_;
  TableMirror mirror_;
  int64_t next_key_;
  Stats stats_;
};

}  // namespace rollview

#endif  // ROLLVIEW_WORKLOAD_UPDATE_STREAM_H_
