// Copyright 2026 The rollview Authors.
//
// Txn: a transaction handle. Created by Db::Begin and finished by
// Db::Commit or Db::Abort. A Txn is used by one thread at a time.

#ifndef ROLLVIEW_STORAGE_TXN_H_
#define ROLLVIEW_STORAGE_TXN_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/csn.h"
#include "schema/tuple.h"
#include "storage/ids.h"

namespace rollview {

class VersionedTable;
class DeltaTable;

enum class TxnState : uint8_t { kActive, kCommitted, kAborted };

class Txn {
 public:
  explicit Txn(TxnId id, TxnClass cls = TxnClass::kOltp)
      : id_(id), cls_(cls) {}

  Txn(const Txn&) = delete;
  Txn& operator=(const Txn&) = delete;

  TxnId id() const { return id_; }
  // Contention class (Sec. 3.3): the Db layer threads it into every lock
  // acquisition so the lock manager can account waits per class and prefer
  // maintenance transactions as deadlock victims.
  TxnClass cls() const { return cls_; }
  TxnState state() const { return state_; }
  // Commit CSN; kNullCsn until committed.
  Csn commit_csn() const { return commit_csn_; }

  // True if this transaction has an uncommitted insert or delete on `table`.
  // The executor uses this to decide whether a current-state read may be
  // served from the stable snapshot (JoinQuery::current_snapshot_hint): a
  // pending write makes current-visible state differ from any snapshot.
  bool HasPendingWriteOn(const VersionedTable* table) const {
    for (const WriteOp& op : write_ops_) {
      if (op.table == table) return true;
    }
    return false;
  }

 private:
  friend class Db;

  struct WriteOp {
    VersionedTable* table = nullptr;
    size_t slot = 0;
    bool is_delete = false;
  };

  // A delta-table append buffered until commit. Trigger-capture rows are
  // stamped with the commit CSN at commit time; view-delta rows produced by
  // propagation queries keep their precomputed (min-rule) timestamps.
  struct PendingDeltaAppend {
    DeltaTable* delta = nullptr;
    DeltaRow row;
    bool stamp_with_commit_csn = false;
    // View-delta rows additionally log a kViewDeltaAppend WAL record at
    // commit so crash recovery can rebuild the timed view delta. wal_view
    // is the owning view's id (0 = not a view row, nothing logged);
    // step_seq tags the propagation step that produced the row, which is
    // how recovery discards rows of a step whose cursor advance never made
    // it to the log (the durable analogue of StepUndoLog).
    uint32_t wal_view = 0;
    uint64_t step_seq = 0;
    // Partition of the producing strip (0 = unpartitioned); logged with the
    // row so recovery attributes it to the right per-partition cursor chain.
    uint32_t partition = 0;
  };

  TxnId id_;
  TxnClass cls_ = TxnClass::kOltp;
  TxnState state_ = TxnState::kActive;
  Csn commit_csn_ = kNullCsn;
  std::vector<WriteOp> write_ops_;
  std::vector<PendingDeltaAppend> pending_delta_appends_;
  // Lock-escalation bookkeeping (see DbOptions::lock_escalation_threshold).
  std::unordered_map<TableId, size_t> row_lock_counts_;
  std::unordered_set<TableId> escalated_tables_;
};

}  // namespace rollview

#endif  // ROLLVIEW_STORAGE_TXN_H_
