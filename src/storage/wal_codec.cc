#include "storage/wal_codec.h"

#include <cassert>
#include <cstring>
#include <fstream>

namespace rollview {

namespace {

// Little-endian primitives. memcpy keeps this alignment-safe; the hosts we
// target are little-endian (a big-endian port would byte-swap here).
template <typename T>
void PutFixed(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
bool GetFixed(const std::string& data, size_t* pos, T* v) {
  if (*pos + sizeof(T) > data.size()) return false;
  std::memcpy(v, data.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

}  // namespace

// The exported primitives double as the codec's own building blocks so the
// ivm blob payloads and the WAL bodies share one wire dialect.
namespace wal_io {

void PutU8(std::string* out, uint8_t v) { PutFixed<uint8_t>(out, v); }
void PutU32(std::string* out, uint32_t v) { PutFixed<uint32_t>(out, v); }
void PutU64(std::string* out, uint64_t v) { PutFixed<uint64_t>(out, v); }
void PutI64(std::string* out, int64_t v) { PutFixed<int64_t>(out, v); }
bool GetU8(const std::string& data, size_t* pos, uint8_t* v) {
  return GetFixed(data, pos, v);
}
bool GetU32(const std::string& data, size_t* pos, uint32_t* v) {
  return GetFixed(data, pos, v);
}
bool GetU64(const std::string& data, size_t* pos, uint64_t* v) {
  return GetFixed(data, pos, v);
}
bool GetI64(const std::string& data, size_t* pos, int64_t* v) {
  return GetFixed(data, pos, v);
}

void PutString(std::string* out, const std::string& s) {
  PutFixed<uint32_t>(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool GetString(const std::string& data, size_t* pos, std::string* s) {
  uint32_t len = 0;
  if (!GetFixed(data, pos, &len)) return false;
  if (*pos + len > data.size()) return false;
  s->assign(data.data() + *pos, len);
  *pos += len;
  return true;
}

}  // namespace wal_io

namespace {

using wal_io::GetString;
using wal_io::PutString;

void PutValue(std::string* out, const Value& v) {
  PutFixed<uint8_t>(out, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64:
      PutFixed<int64_t>(out, v.AsInt64());
      break;
    case ValueType::kDouble:
      PutFixed<double>(out, v.AsDouble());
      break;
    case ValueType::kString:
      PutString(out, v.AsString());
      break;
  }
}

bool GetValue(const std::string& data, size_t* pos, Value* v) {
  uint8_t tag = 0;
  if (!GetFixed(data, pos, &tag)) return false;
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *v = Value::Null();
      return true;
    case ValueType::kInt64: {
      int64_t x;
      if (!GetFixed(data, pos, &x)) return false;
      *v = Value(x);
      return true;
    }
    case ValueType::kDouble: {
      double x;
      if (!GetFixed(data, pos, &x)) return false;
      *v = Value(x);
      return true;
    }
    case ValueType::kString: {
      std::string s;
      if (!GetString(data, pos, &s)) return false;
      *v = Value(std::move(s));
      return true;
    }
  }
  return false;
}

void PutTuple(std::string* out, const Tuple& t) {
  PutFixed<uint32_t>(out, static_cast<uint32_t>(t.size()));
  for (const Value& v : t) PutValue(out, v);
}

bool GetTuple(const std::string& data, size_t* pos, Tuple* t) {
  uint32_t n = 0;
  if (!GetFixed(data, pos, &n)) return false;
  t->clear();
  t->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Value v;
    if (!GetValue(data, pos, &v)) return false;
    t->push_back(std::move(v));
  }
  return true;
}

void PutCreatePayload(std::string* out, const CreateTablePayload& p) {
  PutString(out, p.name);
  PutFixed<uint32_t>(out, static_cast<uint32_t>(p.schema.num_columns()));
  for (const Column& c : p.schema.columns()) {
    PutString(out, c.name);
    PutFixed<uint8_t>(out, static_cast<uint8_t>(c.type));
  }
  PutFixed<uint8_t>(out, static_cast<uint8_t>(p.capture_mode));
  PutFixed<uint32_t>(out, static_cast<uint32_t>(p.indexed_columns.size()));
  for (size_t col : p.indexed_columns) {
    PutFixed<uint32_t>(out, static_cast<uint32_t>(col));
  }
}

bool GetCreatePayload(const std::string& data, size_t* pos,
                      CreateTablePayload* p) {
  if (!GetString(data, pos, &p->name)) return false;
  uint32_t ncols = 0;
  if (!GetFixed(data, pos, &ncols)) return false;
  std::vector<Column> cols;
  cols.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    Column c;
    uint8_t type = 0;
    if (!GetString(data, pos, &c.name)) return false;
    if (!GetFixed(data, pos, &type)) return false;
    c.type = static_cast<ValueType>(type);
    cols.push_back(std::move(c));
  }
  p->schema = Schema(std::move(cols));
  uint8_t mode = 0;
  if (!GetFixed(data, pos, &mode)) return false;
  p->capture_mode = static_cast<CaptureMode>(mode);
  uint32_t nidx = 0;
  if (!GetFixed(data, pos, &nidx)) return false;
  p->indexed_columns.clear();
  for (uint32_t i = 0; i < nidx; ++i) {
    uint32_t col = 0;
    if (!GetFixed(data, pos, &col)) return false;
    p->indexed_columns.push_back(col);
  }
  return true;
}

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

}  // namespace

uint32_t Crc32(const char* data, size_t n) {
  static const Crc32Table table;
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table.entries[(c ^ static_cast<uint8_t>(data[i])) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

namespace wal_io {

void PutTuple(std::string* out, const Tuple& t) {
  rollview::PutTuple(out, t);
}

bool GetTuple(const std::string& data, size_t* pos, Tuple* t) {
  return rollview::GetTuple(data, pos, t);
}

void PutDeltaRow(std::string* out, const DeltaRow& r) {
  PutTuple(out, r.tuple);
  PutI64(out, r.count);
  PutU64(out, r.ts);
}

bool GetDeltaRow(const std::string& data, size_t* pos, DeltaRow* r) {
  if (!GetTuple(data, pos, &r->tuple)) return false;
  if (!GetI64(data, pos, &r->count)) return false;
  return GetU64(data, pos, &r->ts);
}

}  // namespace wal_io

void EncodeWalRecord(const WalRecord& record, std::string* out) {
  std::string body;
  PutFixed<uint8_t>(&body, static_cast<uint8_t>(record.kind));
  PutFixed<uint64_t>(&body, record.lsn);
  PutFixed<uint64_t>(&body, record.txn);
  PutFixed<uint32_t>(&body, record.table);
  PutFixed<uint64_t>(&body, record.commit_csn);
  int64_t nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      record.commit_time.time_since_epoch())
                      .count();
  PutFixed<int64_t>(&body, nanos);
  switch (record.kind) {
    case WalRecord::Kind::kInsert:
    case WalRecord::Kind::kDelete:
      PutTuple(&body, record.tuple);
      break;
    case WalRecord::Kind::kCreateTable:
      assert(record.create != nullptr &&
             "kCreateTable record requires a catalog payload");
      PutCreatePayload(&body, *record.create);
      break;
    case WalRecord::Kind::kCommit:
    case WalRecord::Kind::kAbort:
      break;
    case WalRecord::Kind::kCreateView:
    case WalRecord::Kind::kViewDeltaAppend:
    case WalRecord::Kind::kViewCursor:
    case WalRecord::Kind::kViewApplied:
    case WalRecord::Kind::kViewCheckpoint:
    case WalRecord::Kind::kViewScrub:
    case WalRecord::Kind::kViewQuarantine:
      PutFixed<uint32_t>(&body, record.view);
      PutString(&body, record.blob == nullptr ? std::string() : *record.blob);
      break;
  }
  PutFixed<uint32_t>(out, static_cast<uint32_t>(body.size()));
  PutFixed<uint32_t>(out, Crc32(body.data(), body.size()));
  out->append(body);
}

Result<WalRecord> DecodeWalRecord(const std::string& data, size_t offset,
                                  size_t* consumed) {
  size_t pos = offset;
  uint32_t len = 0;
  uint32_t crc = 0;
  if (!GetFixed(data, &pos, &len) || !GetFixed(data, &pos, &crc)) {
    return Status::OutOfRange("truncated record header");
  }
  if (pos + len > data.size()) {
    return Status::OutOfRange("truncated record body");
  }
  size_t end = pos + len;
  uint32_t actual = Crc32(data.data() + pos, len);
  if (actual != crc) {
    return Status::Internal("crc mismatch: record claims " +
                            std::to_string(crc) + ", body hashes to " +
                            std::to_string(actual));
  }

  WalRecord rec;
  uint8_t kind = 0;
  int64_t nanos = 0;
  if (!GetFixed(data, &pos, &kind) || !GetFixed(data, &pos, &rec.lsn) ||
      !GetFixed(data, &pos, &rec.txn) || !GetFixed(data, &pos, &rec.table) ||
      !GetFixed(data, &pos, &rec.commit_csn) ||
      !GetFixed(data, &pos, &nanos)) {
    return Status::Internal("corrupt record header");
  }
  rec.kind = static_cast<WalRecord::Kind>(kind);
  rec.commit_time = std::chrono::system_clock::time_point(
      std::chrono::duration_cast<std::chrono::system_clock::duration>(
          std::chrono::nanoseconds(nanos)));
  switch (rec.kind) {
    case WalRecord::Kind::kInsert:
    case WalRecord::Kind::kDelete:
      if (!GetTuple(data, &pos, &rec.tuple)) {
        return Status::Internal("corrupt tuple payload");
      }
      break;
    case WalRecord::Kind::kCreateTable: {
      auto payload = std::make_shared<CreateTablePayload>();
      if (!GetCreatePayload(data, &pos, payload.get())) {
        return Status::Internal("corrupt catalog payload");
      }
      rec.create = std::move(payload);
      break;
    }
    case WalRecord::Kind::kCommit:
    case WalRecord::Kind::kAbort:
      break;
    case WalRecord::Kind::kCreateView:
    case WalRecord::Kind::kViewDeltaAppend:
    case WalRecord::Kind::kViewCursor:
    case WalRecord::Kind::kViewApplied:
    case WalRecord::Kind::kViewCheckpoint:
    case WalRecord::Kind::kViewScrub:
    case WalRecord::Kind::kViewQuarantine: {
      auto blob = std::make_shared<std::string>();
      if (!GetFixed(data, &pos, &rec.view) ||
          !GetString(data, &pos, blob.get())) {
        return Status::Internal("corrupt view payload");
      }
      rec.blob = std::move(blob);
      break;
    }
    default:
      return Status::Internal("unknown record kind " + std::to_string(kind));
  }
  if (pos != end) {
    return Status::Internal("record length mismatch");
  }
  *consumed = end - offset;
  return rec;
}

std::string EncodeWal(const std::vector<WalRecord>& records) {
  std::string out;
  for (const WalRecord& r : records) EncodeWalRecord(r, &out);
  return out;
}

Result<std::vector<WalRecord>> DecodeWal(const std::string& data) {
  std::vector<WalRecord> out;
  size_t pos = 0;
  while (pos < data.size()) {
    size_t consumed = 0;
    Result<WalRecord> r = DecodeWalRecord(data, pos, &consumed);
    if (!r.ok()) {
      if (r.status().IsOutOfRange()) break;  // torn tail: stop cleanly
      return r.status();
    }
    out.push_back(std::move(r).value());
    pos += consumed;
  }
  return out;
}

WalPrefix DecodeWalPrefix(const std::string& data) {
  WalPrefix out;
  size_t pos = 0;
  while (pos < data.size()) {
    size_t consumed = 0;
    Result<WalRecord> r = DecodeWalRecord(data, pos, &consumed);
    if (!r.ok()) {
      if (r.status().IsOutOfRange()) {
        out.torn_tail = true;
      } else {
        out.corruption = r.status();
      }
      break;
    }
    out.records.push_back(std::move(r).value());
    pos += consumed;
  }
  out.valid_bytes = pos;
  return out;
}

std::string EncodeViewDeltaBlob(const DeltaRow& row, uint64_t step_seq,
                                uint32_t partition) {
  std::string out;
  wal_io::PutDeltaRow(&out, row);
  wal_io::PutU64(&out, step_seq);
  wal_io::PutU32(&out, partition);
  return out;
}

bool DecodeViewDeltaBlob(const std::string& blob, DeltaRow* row,
                         uint64_t* step_seq, uint32_t* partition) {
  size_t pos = 0;
  if (!wal_io::GetDeltaRow(blob, &pos, row)) return false;
  if (!wal_io::GetU64(blob, &pos, step_seq)) return false;
  uint32_t part = 0;
  // Pre-partition logs end here; treat them as partition 0.
  if (pos != blob.size() && !wal_io::GetU32(blob, &pos, &part)) return false;
  if (partition != nullptr) *partition = part;
  return pos == blob.size();
}

Status WriteWalFile(const std::string& path,
                    const std::vector<WalRecord>& records) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return Status::Internal("cannot open '" + path + "' for write");
  std::string encoded = EncodeWal(records);
  f.write(encoded.data(), static_cast<std::streamsize>(encoded.size()));
  f.flush();
  if (!f) return Status::Internal("write to '" + path + "' failed");
  return Status::OK();
}

Result<std::vector<WalRecord>> ReadWalFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::NotFound("cannot open '" + path + "'");
  std::string data((std::istreambuf_iterator<char>(f)),
                   std::istreambuf_iterator<char>());
  return DecodeWal(data);
}

}  // namespace rollview
