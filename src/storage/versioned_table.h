// Copyright 2026 The rollview Authors.
//
// VersionedTable: a multi-version heap for one base table.
//
// Each logical insert creates a version; each delete closes one. Versions
// carry [begin_csn, end_csn) commit-time validity. Uncommitted changes are
// marked with the writing transaction's id and stamped with the commit CSN
// at commit time, under the transaction manager's commit mutex -- so a
// version's CSN window becomes visible atomically with the commit.
//
// Two read paths:
//  * Current reads (inside a transaction holding at least an S table lock):
//    see all committed versions plus the reader's own pending writes. Under
//    strict 2PL no *other* transaction's pending writes can exist while the
//    S lock is held.
//  * Snapshot reads at CSN c <= the manager's stable CSN: lock-free
//    time-travel, used by tests to validate the golden invariant
//    phi(sigma_{a,b}(Delta^V) + V_a) = phi(V_b) and by the Eq. 2 baseline,
//    which the paper notes is realizable only "if historical snapshots of
//    base relations are maintained" (Sec. 2) -- our MVCC maintains them.
//
// A per-table shared_mutex latch protects physical structure (the versions
// vector and indexes); it is unrelated to logical 2PL locks.

#ifndef ROLLVIEW_STORAGE_VERSIONED_TABLE_H_
#define ROLLVIEW_STORAGE_VERSIONED_TABLE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/csn.h"
#include "common/status.h"
#include "schema/schema.h"
#include "schema/tuple.h"
#include "storage/ids.h"

namespace rollview {

class VersionedTable {
 public:
  struct Version {
    Tuple tuple;
    Csn begin_csn = kNullCsn;   // kNullCsn while the insert is uncommitted
    Csn end_csn = kMaxCsn;      // kMaxCsn while live
    TxnId begin_txn = kInvalidTxnId;
    TxnId end_txn = kInvalidTxnId;  // set while a delete is pending
    bool insert_aborted = false;    // insert rolled back; version is dead
  };

  VersionedTable(TableId id, std::string name, Schema schema,
                 std::vector<size_t> indexed_columns);

  TableId id() const { return id_; }
  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const std::vector<size_t>& indexed_columns() const {
    return indexed_columns_;
  }

  // --- Write path (caller holds the appropriate logical locks) ---

  // Appends an uncommitted insert by `txn`. Returns the version slot.
  size_t AddPendingInsert(TxnId txn, Tuple tuple);

  // Marks up to `limit` (-1 = all) current-visible copies of rows matching
  // `pred` as pending-deleted by `txn`. Appends the affected slots to
  // `slots` and the deleted tuples to `tuples`. Returns the number marked.
  int64_t MarkPendingDeletes(TxnId txn,
                             const std::function<bool(const Tuple&)>& pred,
                             int64_t limit, std::vector<size_t>* slots,
                             std::vector<Tuple>* tuples);

  // Commit stamping / rollback (called under the commit mutex).
  void CommitInsert(size_t slot, Csn csn);
  void CommitDelete(size_t slot, Csn csn);
  void AbortInsert(size_t slot);
  void AbortDelete(size_t slot);

  // --- Read path ---

  // Visitor scans/probes: invoke `fn` on every visible tuple while holding
  // the shared latch, without copying. The `const Tuple&` passed to `fn` is
  // valid ONLY for the duration of the callback -- callers that need the
  // tuple afterwards must copy it (version slots can move under concurrent
  // appends and GC compaction once the latch drops). `fn` must not re-enter
  // this table (the latch is held) and must not block. The optional `pred`
  // filters before `fn` sees the tuple.
  void ScanVisitCurrent(
      TxnId txn, const std::function<void(const Tuple&)>& fn,
      const std::function<bool(const Tuple&)>* pred = nullptr) const;
  void ScanVisitSnapshot(
      Csn csn, const std::function<void(const Tuple&)>& fn,
      const std::function<bool(const Tuple&)>* pred = nullptr) const;
  // Index-probe visitors; `col` must be one of indexed_columns().
  void ProbeVisitCurrent(TxnId txn, size_t col, const Value& key,
                         const std::function<void(const Tuple&)>& fn) const;
  void ProbeVisitSnapshot(Csn csn, size_t col, const Value& key,
                          const std::function<void(const Tuple&)>& fn) const;

  // Visits every committed, non-aborted version with its validity interval
  // [begin_csn, end_csn) -- end_csn is kMaxCsn for live versions and for
  // versions whose delete is still pending. The durable-checkpoint image
  // builder (ivm/checkpoint.cc) regenerates the table's full committed
  // history from these intervals. Same latch contract as the visitors
  // above: `fn` must not re-enter this table or block.
  void VisitVersions(
      const std::function<void(const Tuple&, Csn begin, Csn end)>& fn) const;

  // All tuples visible to `txn` right now (committed + own pending).
  std::vector<Tuple> CurrentScan(TxnId txn) const;
  // Visible tuples matching `pred`.
  std::vector<Tuple> CurrentScanWhere(
      TxnId txn, const std::function<bool(const Tuple&)>& pred) const;
  // Visible tuples whose indexed column `col` equals `key` (index probe;
  // `col` must be one of indexed_columns()).
  std::vector<Tuple> CurrentProbe(TxnId txn, size_t col,
                                  const Value& key) const;

  // Time-travel variants; `csn` must be <= the manager's stable CSN.
  std::vector<Tuple> SnapshotScan(Csn csn) const;
  std::vector<Tuple> SnapshotProbe(Csn csn, size_t col,
                                   const Value& key) const;

  // Highest commit CSN stamped on any version (insert or delete) of this
  // table; kNullCsn if never written. For any csn c <= the manager's stable
  // CSN with last_change_csn() <= c, the table's content at c equals its
  // content at last_change_csn() -- the BuildCache uses this to canonicalize
  // snapshot keys so queries at successive quiescent CSNs share one entry.
  Csn last_change_csn() const;

  // Number of currently committed-visible rows (approximate live size).
  size_t LiveSize() const;
  // Total versions retained (live + historical).
  size_t VersionCount() const;

  // Drops versions whose end_csn <= horizon (no snapshot reader needs them).
  // Index entries pointing at dropped versions are purged as well.
  void GarbageCollect(Csn horizon);

 private:
  bool VisibleToTxn(const Version& v, TxnId txn) const;
  bool VisibleAt(const Version& v, Csn csn) const;

  template <typename Visible>
  void ScanVisitImpl(Visible visible,
                     const std::function<bool(const Tuple&)>* pred,
                     const std::function<void(const Tuple&)>& fn) const;
  template <typename Visible>
  void ProbeVisitImpl(Visible visible, size_t col, const Value& key,
                      const std::function<void(const Tuple&)>& fn) const;

  TableId id_;
  std::string name_;
  Schema schema_;
  std::vector<size_t> indexed_columns_;

  mutable std::shared_mutex latch_;
  std::vector<Version> versions_;
  Csn last_change_csn_ = kNullCsn;  // max CSN ever stamped (guarded by latch_)
  // One hash index per indexed column: key value -> version slots. Entries
  // are added at insert time and filtered through visibility at probe time;
  // GarbageCollect purges dead entries.
  std::vector<std::unordered_map<Value, std::vector<size_t>, ValueHasher>>
      indexes_;
};

}  // namespace rollview

#endif  // ROLLVIEW_STORAGE_VERSIONED_TABLE_H_
