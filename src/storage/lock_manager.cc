#include "storage/lock_manager.h"

#include <algorithm>
#include <cassert>
#include <tuple>

#include "obs/registry.h"

namespace rollview {

const char* LockModeName(LockMode mode) {
  switch (mode) {
    case LockMode::kIS:
      return "IS";
    case LockMode::kIX:
      return "IX";
    case LockMode::kS:
      return "S";
    case LockMode::kSIX:
      return "SIX";
    case LockMode::kX:
      return "X";
  }
  return "?";
}

bool LockCompatible(LockMode a, LockMode b) {
  // Rows: holder mode; columns: requested mode. Standard matrix.
  static constexpr bool kCompat[5][5] = {
      //            IS     IX     S      SIX    X
      /* IS  */ {true, true, true, true, false},
      /* IX  */ {true, true, false, false, false},
      /* S   */ {true, false, true, false, false},
      /* SIX */ {true, false, false, false, false},
      /* X   */ {false, false, false, false, false},
  };
  return kCompat[static_cast<int>(a)][static_cast<int>(b)];
}

LockMode LockSupremum(LockMode a, LockMode b) {
  if (a == b) return a;
  auto is = [](LockMode m, LockMode x) { return m == x; };
  // X absorbs everything.
  if (is(a, LockMode::kX) || is(b, LockMode::kX)) return LockMode::kX;
  // SIX with anything but X is SIX.
  if (is(a, LockMode::kSIX) || is(b, LockMode::kSIX)) return LockMode::kSIX;
  // S + IX = SIX; S + IS = S.
  if ((is(a, LockMode::kS) && is(b, LockMode::kIX)) ||
      (is(a, LockMode::kIX) && is(b, LockMode::kS))) {
    return LockMode::kSIX;
  }
  if (is(a, LockMode::kS) || is(b, LockMode::kS)) return LockMode::kS;
  if (is(a, LockMode::kIX) || is(b, LockMode::kIX)) return LockMode::kIX;
  return LockMode::kIS;
}

LockManager::Queue* LockManager::GetQueue(const ResourceId& res) {
  auto it = queues_.find(res);
  if (it != queues_.end()) return it->second.get();
  auto q = std::make_unique<Queue>();
  Queue* raw = q.get();
  queues_.emplace(res, std::move(q));
  return raw;
}

const LockManager::Request* LockManager::FindGranted(const Queue& q,
                                                     TxnId txn) const {
  for (const Request& r : q.granted) {
    if (r.txn == txn) return &r;
  }
  return nullptr;
}

bool LockManager::CanGrantFresh(const Queue& q, LockMode mode) const {
  // FIFO fairness: a fresh request is granted only when compatible with all
  // granted holders AND no one is already waiting (prevents a stream of S
  // requests from starving a waiting X).
  if (!q.waiting.empty()) return false;
  for (const Request& r : q.granted) {
    if (!LockCompatible(r.mode, mode)) return false;
  }
  return true;
}

bool LockManager::CanGrantUpgrade(const Queue& q, TxnId txn,
                                  LockMode mode) const {
  for (const Request& r : q.granted) {
    if (r.txn == txn) continue;  // own old entry does not block the upgrade
    if (!LockCompatible(r.mode, mode)) return false;
  }
  return true;
}

void LockManager::PromoteWaiters(const ResourceId& res, Queue* q) {
  bool granted_any = false;
  // Upgrades first: they hold a granted entry already and other waiters may
  // be queued behind the very lock the upgrader holds.
  for (auto it = q->waiting.begin(); it != q->waiting.end();) {
    if (it->is_upgrade && CanGrantUpgrade(*q, it->txn, it->mode)) {
      for (Request& g : q->granted) {
        if (g.txn == it->txn) g.mode = it->mode;
      }
      it->granted = true;  // signals the waiting thread
      waiting_on_.erase(it->txn);
      it = q->waiting.erase(it);
      granted_any = true;
    } else {
      ++it;
    }
  }
  // Then FIFO for fresh requests: grant a prefix of compatible waiters.
  while (!q->waiting.empty()) {
    Request& front = q->waiting.front();
    if (front.is_upgrade) break;  // blocked upgrade keeps FIFO order
    bool ok = true;
    for (const Request& r : q->granted) {
      if (!LockCompatible(r.mode, front.mode)) {
        ok = false;
        break;
      }
    }
    if (!ok) break;
    front.granted = true;
    q->granted.push_back(front);
    held_[front.txn].push_back(res);
    waiting_on_.erase(front.txn);
    q->waiting.pop_front();
    granted_any = true;
  }
  if (granted_any) q->cv.notify_all();
}

std::unordered_set<TxnId> LockManager::BlockersOf(TxnId txn,
                                                  const Queue& q) const {
  // A waiter is blocked behind (a) granted holders whose mode conflicts and
  // (b) any request queued ahead of it (FIFO order blocks regardless of
  // compatibility; this slightly over-approximates, trading spurious victim
  // aborts for guaranteed progress).
  std::unordered_set<TxnId> out;
  LockMode mode = LockMode::kIS;
  bool is_upgrade = false;
  bool seen_self = false;
  for (const Request& w : q.waiting) {
    if (w.txn == txn) {
      mode = w.mode;
      is_upgrade = w.is_upgrade;
      seen_self = true;
      break;
    }
  }
  if (!seen_self) return out;
  for (const Request& g : q.granted) {
    if (g.txn == txn) continue;
    if (is_upgrade) {
      if (!LockCompatible(g.mode, mode)) out.insert(g.txn);
    } else {
      if (!LockCompatible(g.mode, mode)) out.insert(g.txn);
    }
  }
  if (!is_upgrade) {
    for (const Request& w : q.waiting) {
      if (w.txn == txn) break;
      out.insert(w.txn);
    }
  }
  return out;
}

bool LockManager::FindCycleDfs(TxnId cur, TxnId self,
                               std::unordered_set<TxnId>* visited,
                               std::vector<TxnId>* path) const {
  auto wit = waiting_on_.find(cur);
  if (wit == waiting_on_.end()) return false;
  auto qit = queues_.find(wit->second);
  if (qit == queues_.end()) return false;
  for (TxnId blocker : BlockersOf(cur, *qit->second)) {
    if (blocker == self) return true;
    if (!visited->insert(blocker).second) continue;
    path->push_back(blocker);
    if (FindCycleDfs(blocker, self, visited, path)) return true;
    path->pop_back();
  }
  return false;
}

std::vector<TxnId> LockManager::FindCycle(TxnId self) const {
  // DFS over the waits-for graph (derived on demand from queue state)
  // looking for a cycle back to `self`; on success the DFS path holds the
  // cycle's members. Every member has an outgoing waits-for edge, i.e. is
  // itself blocked in Acquire, so any member can be wounded.
  std::unordered_set<TxnId> visited{self};
  std::vector<TxnId> path{self};
  if (FindCycleDfs(self, self, &visited, &path)) return path;
  return {};
}

TxnClass LockManager::ClassOf(TxnId txn) const {
  auto it = class_of_.find(txn);
  return it == class_of_.end() ? TxnClass::kOltp : it->second;
}

TxnId LockManager::ChooseVictim(const std::vector<TxnId>& cycle) const {
  // Deterministic: (class, cost, age). Maintenance members volunteer first;
  // then the member holding the fewest locks (cheapest to redo under the
  // supervisor's retry); ties break to the highest TxnId (youngest). The
  // same cycle state always yields the same victim, so repeated detection
  // passes wound the same transaction.
  TxnId victim = cycle.front();
  auto key = [this](TxnId t) {
    auto hit = held_.find(t);
    size_t cost = hit == held_.end() ? 0 : hit->second.size();
    // Lower tuple wins: maintenance (0) before OLTP (1), then low cost,
    // then high id.
    int class_rank = ClassOf(t) == TxnClass::kMaintenance ? 0 : 1;
    return std::make_tuple(class_rank, cost, ~t);
  };
  for (TxnId t : cycle) {
    if (key(t) < key(victim)) victim = t;
  }
  return victim;
}

void LockManager::VictimizeWaiter(TxnId victim) {
  auto wit = waiting_on_.find(victim);
  if (wit == waiting_on_.end()) return;
  auto qit = queues_.find(wit->second);
  if (qit == queues_.end()) return;
  Queue* q = qit->second.get();
  for (Request& w : q->waiting) {
    if (w.txn == victim) {
      w.victimized = true;
      break;
    }
  }
  q->cv.notify_all();
}

void LockManager::RemoveWaiting(Queue* q, TxnId txn) {
  for (auto it = q->waiting.begin(); it != q->waiting.end(); ++it) {
    if (it->txn == txn) {
      q->waiting.erase(it);
      break;
    }
  }
  waiting_on_.erase(txn);
}

Status LockManager::Acquire(TxnId txn, const ResourceId& res, LockMode mode,
                            TxnClass cls) {
  if (FaultInjector* fi = injector_.load(std::memory_order_acquire)) {
    ROLLVIEW_RETURN_NOT_OK(fi->MaybeLockBusy());
  }
  const size_t ci = static_cast<size_t>(cls);
  std::unique_lock<std::mutex> lk(mu_);
  class_of_[txn] = cls;
  Queue* q = GetQueue(res);

  const Request* mine = FindGranted(*q, txn);
  bool is_upgrade = false;
  if (mine != nullptr) {
    LockMode target = LockSupremum(mine->mode, mode);
    if (target == mine->mode) {
      return Status::OK();  // already held strongly enough
    }
    mode = target;
    is_upgrade = true;
    if (CanGrantUpgrade(*q, txn, mode)) {
      for (Request& g : q->granted) {
        if (g.txn == txn) g.mode = mode;
      }
      stats_.acquires++;
      stats_.by_class[ci].acquires++;
      return Status::OK();
    }
  } else if (CanGrantFresh(*q, mode)) {
    q->granted.push_back(Request{txn, mode, false, true, cls, false});
    held_[txn].push_back(res);
    stats_.acquires++;
    stats_.by_class[ci].acquires++;
    return Status::OK();
  }

  // Must wait.
  q->waiting.push_back(Request{txn, mode, is_upgrade, false, cls, false});
  waiting_on_[txn] = res;
  stats_.waits++;
  stats_.by_class[ci].waits++;
  auto wait_start = std::chrono::steady_clock::now();
  auto deadline = wait_start + options_.wait_timeout;

  auto finish_wait = [&]() {
    auto now = std::chrono::steady_clock::now();
    uint64_t nanos = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - wait_start)
            .count());
    stats_.wait_nanos += nanos;
    stats_.by_class[ci].wait_nanos += nanos;
    wait_hist_[ci].Record(nanos);
  };

  while (true) {
    q->cv.wait_for(lk, options_.deadlock_check_interval);

    // Were we granted by a releaser's PromoteWaiters? (It removes the
    // waiting entry and installs/updates the granted one atomically under
    // mu_, so absence from the waiting deque means granted. ReleaseAll
    // cannot race us out of the deque: a Txn is used by one thread at a
    // time.)
    Request* me = nullptr;
    for (Request& w : q->waiting) {
      if (w.txn == txn) {
        me = &w;
        break;
      }
    }
    if (me == nullptr) {
      finish_wait();
      stats_.acquires++;
      stats_.by_class[ci].acquires++;
      return Status::OK();
    }

    // Did another waiter's deadlock detection wound us?
    if (me->victimized) {
      RemoveWaiting(q, txn);
      PromoteWaiters(res, q);
      finish_wait();
      stats_.deadlocks++;
      stats_.by_class[ci].deadlock_victims++;
      return Status::TxnAborted("deadlock victim on resource " +
                                std::to_string(res.hi) + "/" +
                                std::to_string(res.lo));
    }

    std::vector<TxnId> cycle = FindCycle(txn);
    if (!cycle.empty()) {
      TxnId victim = ChooseVictim(cycle);
      if (victim == txn) {
        RemoveWaiting(q, txn);
        PromoteWaiters(res, q);
        finish_wait();
        stats_.deadlocks++;
        stats_.by_class[ci].deadlock_victims++;
        return Status::TxnAborted("deadlock victim on resource " +
                                  std::to_string(res.hi) + "/" +
                                  std::to_string(res.lo));
      }
      // Wound the chosen victim and keep waiting: its abort releases the
      // locks that complete the cycle. Idempotent if already flagged; the
      // timeout check below still applies in case the victim's release does
      // not unblock us.
      VictimizeWaiter(victim);
    }

    if (std::chrono::steady_clock::now() >= deadline) {
      RemoveWaiting(q, txn);
      PromoteWaiters(res, q);
      finish_wait();
      stats_.timeouts++;
      stats_.by_class[ci].timeouts++;
      return Status::Busy("lock wait timeout");
    }
  }
}

void LockManager::ReleaseAll(TxnId txn) {
  std::lock_guard<std::mutex> lk(mu_);
  class_of_.erase(txn);

  // Remove any still-waiting request (aborted transaction mid-wait).
  auto wit = waiting_on_.find(txn);
  if (wit != waiting_on_.end()) {
    auto qit = queues_.find(wit->second);
    if (qit != queues_.end()) {
      RemoveWaiting(qit->second.get(), txn);
      PromoteWaiters(qit->first, qit->second.get());
    }
  }

  auto hit = held_.find(txn);
  if (hit == held_.end()) return;
  std::vector<ResourceId> resources = std::move(hit->second);
  held_.erase(hit);
  for (const ResourceId& res : resources) {
    auto qit = queues_.find(res);
    if (qit == queues_.end()) continue;
    Queue* q = qit->second.get();
    q->granted.erase(
        std::remove_if(q->granted.begin(), q->granted.end(),
                       [txn](const Request& r) { return r.txn == txn; }),
        q->granted.end());
    PromoteWaiters(res, q);
  }
}

bool LockManager::Holds(TxnId txn, const ResourceId& res,
                        LockMode mode) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto qit = queues_.find(res);
  if (qit == queues_.end()) return false;
  const Request* r = FindGranted(*qit->second, txn);
  if (r == nullptr) return false;
  return LockSupremum(r->mode, mode) == r->mode;
}

LockManager::Stats LockManager::GetStats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void LockManager::ResetStats() {
  std::lock_guard<std::mutex> lk(mu_);
  stats_ = Stats{};
  for (LatencyHistogram& h : wait_hist_) h.Reset();
}

void LockManager::RegisterMetrics(obs::MetricsRegistry* registry,
                                  const void* owner) const {
  for (size_t i = 0; i < kNumTxnClasses; ++i) {
    TxnClass cls = static_cast<TxnClass>(i);
    const obs::Labels lc{{"class", TxnClassName(cls)}};
    // GetStats copies under mu_, so these callbacks scrape live safely.
    registry->RegisterCounterFn(
        "rollview_lock_acquires_total", lc,
        [this, cls] { return GetStats().cls(cls).acquires; }, owner);
    registry->RegisterCounterFn(
        "rollview_lock_waits_total", lc,
        [this, cls] { return GetStats().cls(cls).waits; }, owner);
    registry->RegisterCounterFn(
        "rollview_lock_wait_nanos_total", lc,
        [this, cls] { return GetStats().cls(cls).wait_nanos; }, owner);
    registry->RegisterCounterFn(
        "rollview_lock_deadlock_victims_total", lc,
        [this, cls] { return GetStats().cls(cls).deadlock_victims; }, owner);
    registry->RegisterCounterFn(
        "rollview_lock_timeouts_total", lc,
        [this, cls] { return GetStats().cls(cls).timeouts; }, owner);
    registry->RegisterHistogram("rollview_lock_wait_latency", lc,
                                &wait_hist_[i], owner);
  }
}

}  // namespace rollview
