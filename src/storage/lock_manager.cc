#include "storage/lock_manager.h"

#include <algorithm>
#include <cassert>

namespace rollview {

const char* LockModeName(LockMode mode) {
  switch (mode) {
    case LockMode::kIS:
      return "IS";
    case LockMode::kIX:
      return "IX";
    case LockMode::kS:
      return "S";
    case LockMode::kSIX:
      return "SIX";
    case LockMode::kX:
      return "X";
  }
  return "?";
}

bool LockCompatible(LockMode a, LockMode b) {
  // Rows: holder mode; columns: requested mode. Standard matrix.
  static constexpr bool kCompat[5][5] = {
      //            IS     IX     S      SIX    X
      /* IS  */ {true, true, true, true, false},
      /* IX  */ {true, true, false, false, false},
      /* S   */ {true, false, true, false, false},
      /* SIX */ {true, false, false, false, false},
      /* X   */ {false, false, false, false, false},
  };
  return kCompat[static_cast<int>(a)][static_cast<int>(b)];
}

LockMode LockSupremum(LockMode a, LockMode b) {
  if (a == b) return a;
  auto is = [](LockMode m, LockMode x) { return m == x; };
  // X absorbs everything.
  if (is(a, LockMode::kX) || is(b, LockMode::kX)) return LockMode::kX;
  // SIX with anything but X is SIX.
  if (is(a, LockMode::kSIX) || is(b, LockMode::kSIX)) return LockMode::kSIX;
  // S + IX = SIX; S + IS = S.
  if ((is(a, LockMode::kS) && is(b, LockMode::kIX)) ||
      (is(a, LockMode::kIX) && is(b, LockMode::kS))) {
    return LockMode::kSIX;
  }
  if (is(a, LockMode::kS) || is(b, LockMode::kS)) return LockMode::kS;
  if (is(a, LockMode::kIX) || is(b, LockMode::kIX)) return LockMode::kIX;
  return LockMode::kIS;
}

LockManager::Queue* LockManager::GetQueue(const ResourceId& res) {
  auto it = queues_.find(res);
  if (it != queues_.end()) return it->second.get();
  auto q = std::make_unique<Queue>();
  Queue* raw = q.get();
  queues_.emplace(res, std::move(q));
  return raw;
}

const LockManager::Request* LockManager::FindGranted(const Queue& q,
                                                     TxnId txn) const {
  for (const Request& r : q.granted) {
    if (r.txn == txn) return &r;
  }
  return nullptr;
}

bool LockManager::CanGrantFresh(const Queue& q, LockMode mode) const {
  // FIFO fairness: a fresh request is granted only when compatible with all
  // granted holders AND no one is already waiting (prevents a stream of S
  // requests from starving a waiting X).
  if (!q.waiting.empty()) return false;
  for (const Request& r : q.granted) {
    if (!LockCompatible(r.mode, mode)) return false;
  }
  return true;
}

bool LockManager::CanGrantUpgrade(const Queue& q, TxnId txn,
                                  LockMode mode) const {
  for (const Request& r : q.granted) {
    if (r.txn == txn) continue;  // own old entry does not block the upgrade
    if (!LockCompatible(r.mode, mode)) return false;
  }
  return true;
}

void LockManager::PromoteWaiters(const ResourceId& res, Queue* q) {
  bool granted_any = false;
  // Upgrades first: they hold a granted entry already and other waiters may
  // be queued behind the very lock the upgrader holds.
  for (auto it = q->waiting.begin(); it != q->waiting.end();) {
    if (it->is_upgrade && CanGrantUpgrade(*q, it->txn, it->mode)) {
      for (Request& g : q->granted) {
        if (g.txn == it->txn) g.mode = it->mode;
      }
      it->granted = true;  // signals the waiting thread
      waiting_on_.erase(it->txn);
      it = q->waiting.erase(it);
      granted_any = true;
    } else {
      ++it;
    }
  }
  // Then FIFO for fresh requests: grant a prefix of compatible waiters.
  while (!q->waiting.empty()) {
    Request& front = q->waiting.front();
    if (front.is_upgrade) break;  // blocked upgrade keeps FIFO order
    bool ok = true;
    for (const Request& r : q->granted) {
      if (!LockCompatible(r.mode, front.mode)) {
        ok = false;
        break;
      }
    }
    if (!ok) break;
    front.granted = true;
    q->granted.push_back(front);
    held_[front.txn].push_back(res);
    waiting_on_.erase(front.txn);
    q->waiting.pop_front();
    granted_any = true;
  }
  if (granted_any) q->cv.notify_all();
}

std::unordered_set<TxnId> LockManager::BlockersOf(TxnId txn,
                                                  const Queue& q) const {
  // A waiter is blocked behind (a) granted holders whose mode conflicts and
  // (b) any request queued ahead of it (FIFO order blocks regardless of
  // compatibility; this slightly over-approximates, trading spurious victim
  // aborts for guaranteed progress).
  std::unordered_set<TxnId> out;
  LockMode mode = LockMode::kIS;
  bool is_upgrade = false;
  bool seen_self = false;
  for (const Request& w : q.waiting) {
    if (w.txn == txn) {
      mode = w.mode;
      is_upgrade = w.is_upgrade;
      seen_self = true;
      break;
    }
  }
  if (!seen_self) return out;
  for (const Request& g : q.granted) {
    if (g.txn == txn) continue;
    if (is_upgrade) {
      if (!LockCompatible(g.mode, mode)) out.insert(g.txn);
    } else {
      if (!LockCompatible(g.mode, mode)) out.insert(g.txn);
    }
  }
  if (!is_upgrade) {
    for (const Request& w : q.waiting) {
      if (w.txn == txn) break;
      out.insert(w.txn);
    }
  }
  return out;
}

bool LockManager::DetectDeadlock(TxnId self) const {
  // DFS over the waits-for graph starting from `self`, looking for a cycle
  // back to `self`. The graph is derived on demand from queue state.
  std::unordered_set<TxnId> visited;
  std::vector<TxnId> stack{self};
  bool first = true;
  while (!stack.empty()) {
    TxnId cur = stack.back();
    stack.pop_back();
    if (!first && cur == self) return true;
    first = false;
    if (!visited.insert(cur).second) continue;
    auto wit = waiting_on_.find(cur);
    if (wit == waiting_on_.end()) continue;
    auto qit = queues_.find(wit->second);
    if (qit == queues_.end()) continue;
    for (TxnId blocker : BlockersOf(cur, *qit->second)) {
      if (blocker == self) return true;
      stack.push_back(blocker);
    }
  }
  return false;
}

void LockManager::RemoveWaiting(Queue* q, TxnId txn) {
  for (auto it = q->waiting.begin(); it != q->waiting.end(); ++it) {
    if (it->txn == txn) {
      q->waiting.erase(it);
      break;
    }
  }
  waiting_on_.erase(txn);
}

Status LockManager::Acquire(TxnId txn, const ResourceId& res, LockMode mode) {
  if (FaultInjector* fi = injector_.load(std::memory_order_acquire)) {
    ROLLVIEW_RETURN_NOT_OK(fi->MaybeLockBusy());
  }
  std::unique_lock<std::mutex> lk(mu_);
  Queue* q = GetQueue(res);

  const Request* mine = FindGranted(*q, txn);
  bool is_upgrade = false;
  if (mine != nullptr) {
    LockMode target = LockSupremum(mine->mode, mode);
    if (target == mine->mode) {
      return Status::OK();  // already held strongly enough
    }
    mode = target;
    is_upgrade = true;
    if (CanGrantUpgrade(*q, txn, mode)) {
      for (Request& g : q->granted) {
        if (g.txn == txn) g.mode = mode;
      }
      stats_.acquires++;
      return Status::OK();
    }
  } else if (CanGrantFresh(*q, mode)) {
    q->granted.push_back(Request{txn, mode, false, true});
    held_[txn].push_back(res);
    stats_.acquires++;
    return Status::OK();
  }

  // Must wait.
  q->waiting.push_back(Request{txn, mode, is_upgrade, false});
  waiting_on_[txn] = res;
  stats_.waits++;
  auto wait_start = std::chrono::steady_clock::now();
  auto deadline = wait_start + options_.wait_timeout;

  auto finish_wait = [&]() {
    auto now = std::chrono::steady_clock::now();
    stats_.wait_nanos += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - wait_start)
            .count());
  };

  while (true) {
    q->cv.wait_for(lk, options_.deadlock_check_interval);

    // Were we granted by a releaser's PromoteWaiters?
    if (is_upgrade) {
      const Request* g = FindGranted(*q, txn);
      if (g != nullptr && g->mode == mode) {
        bool still_waiting = false;
        for (const Request& w : q->waiting) {
          if (w.txn == txn) still_waiting = true;
        }
        if (!still_waiting) {
          finish_wait();
          stats_.acquires++;
          return Status::OK();
        }
      }
    } else {
      bool still_waiting = false;
      for (const Request& w : q->waiting) {
        if (w.txn == txn) still_waiting = true;
      }
      if (!still_waiting) {
        finish_wait();
        stats_.acquires++;
        return Status::OK();
      }
    }

    if (DetectDeadlock(txn)) {
      RemoveWaiting(q, txn);
      PromoteWaiters(res, q);
      finish_wait();
      stats_.deadlocks++;
      return Status::TxnAborted("deadlock victim on resource " +
                                std::to_string(res.hi) + "/" +
                                std::to_string(res.lo));
    }

    if (std::chrono::steady_clock::now() >= deadline) {
      RemoveWaiting(q, txn);
      PromoteWaiters(res, q);
      finish_wait();
      stats_.timeouts++;
      return Status::Busy("lock wait timeout");
    }
  }
}

void LockManager::ReleaseAll(TxnId txn) {
  std::lock_guard<std::mutex> lk(mu_);

  // Remove any still-waiting request (aborted transaction mid-wait).
  auto wit = waiting_on_.find(txn);
  if (wit != waiting_on_.end()) {
    auto qit = queues_.find(wit->second);
    if (qit != queues_.end()) {
      RemoveWaiting(qit->second.get(), txn);
      PromoteWaiters(qit->first, qit->second.get());
    }
  }

  auto hit = held_.find(txn);
  if (hit == held_.end()) return;
  std::vector<ResourceId> resources = std::move(hit->second);
  held_.erase(hit);
  for (const ResourceId& res : resources) {
    auto qit = queues_.find(res);
    if (qit == queues_.end()) continue;
    Queue* q = qit->second.get();
    q->granted.erase(
        std::remove_if(q->granted.begin(), q->granted.end(),
                       [txn](const Request& r) { return r.txn == txn; }),
        q->granted.end());
    PromoteWaiters(res, q);
  }
}

bool LockManager::Holds(TxnId txn, const ResourceId& res,
                        LockMode mode) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto qit = queues_.find(res);
  if (qit == queues_.end()) return false;
  const Request* r = FindGranted(*qit->second, txn);
  if (r == nullptr) return false;
  return LockSupremum(r->mode, mode) == r->mode;
}

LockManager::Stats LockManager::GetStats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void LockManager::ResetStats() {
  std::lock_guard<std::mutex> lk(mu_);
  stats_ = Stats{};
}

}  // namespace rollview
