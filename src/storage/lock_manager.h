// Copyright 2026 The rollview Authors.
//
// Strict two-phase locking with hierarchical lock modes (IS, IX, S, SIX, X),
// FIFO queuing, lock upgrades, and deadlock detection. The paper assumes a
// serializable engine whose commit order matches its serialization order
// ("this would be the case ... in any system that used strict two-phase
// locking", Sec. 2); this lock manager provides exactly that, and its wait
// statistics are the contention signal measured by experiment E3.
//
// Granularity convention (established by the Db layer):
//   * table-level locks: updaters take IX, scans take S, refresh baselines
//     take S/X on whole tables
//   * row-level locks:   updaters take X on a hash of the row's key
//
// Deadlocks are detected by an on-demand waits-for-graph cycle search run by
// each waiter. Victim selection is deterministic and OLTP-first: among the
// cycle's members, maintenance-class transactions are preferred victims
// (they volunteer -- the supervised drivers retry them cheaply), then the
// member holding the fewest locks, then the youngest TxnId. The detector
// wounds the chosen victim by flagging its waiting request; the victim's own
// Acquire returns Status::TxnAborted. Waits also carry an overall timeout
// (Status::Busy) as a backstop; both land in the transient Status taxonomy
// the maintenance supervisor retries.

#ifndef ROLLVIEW_STORAGE_LOCK_MANAGER_H_
#define ROLLVIEW_STORAGE_LOCK_MANAGER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/fault_injector.h"
#include "common/metrics.h"
#include "common/status.h"
#include "storage/ids.h"

namespace rollview {

namespace obs {
class MetricsRegistry;
}  // namespace obs

enum class LockMode : uint8_t { kIS = 0, kIX = 1, kS = 2, kSIX = 3, kX = 4 };

const char* LockModeName(LockMode mode);

// Standard multi-granularity compatibility matrix.
bool LockCompatible(LockMode a, LockMode b);

// Least upper bound of two modes (used for upgrades): e.g. sup(S, IX) = SIX.
LockMode LockSupremum(LockMode a, LockMode b);

// A lockable resource. `hi` identifies the object class and object (e.g. a
// table), `lo` sub-object (e.g. a row-key hash), 0 for the object itself.
struct ResourceId {
  uint64_t hi = 0;
  uint64_t lo = 0;

  static ResourceId Table(TableId table) {
    return ResourceId{static_cast<uint64_t>(table), 0};
  }
  static ResourceId Row(TableId table, uint64_t key_hash) {
    // lo == 0 is reserved for the table resource; fold hash 0 to 1.
    return ResourceId{static_cast<uint64_t>(table),
                      key_hash == 0 ? 1 : key_hash};
  }
  // A named singleton resource outside any table (e.g. a delta table in
  // trigger-capture mode). Offset keeps it clear of TableId space.
  static ResourceId Named(uint64_t id) {
    return ResourceId{(1ULL << 40) + id, 0};
  }

  friend bool operator==(const ResourceId& a, const ResourceId& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
};

struct ResourceIdHasher {
  size_t operator()(const ResourceId& r) const {
    uint64_t x = r.hi * 0x9e3779b97f4a7c15ULL ^ r.lo;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<size_t>(x);
  }
};

class LockManager {
 public:
  struct Options {
    // Overall bound on a single Acquire; expiry returns Status::Busy.
    std::chrono::milliseconds wait_timeout{10000};
    // How often a waiter re-runs deadlock detection.
    std::chrono::milliseconds deadlock_check_interval{5};
  };

  // Per-txn-class slice of the aggregate counters: the ContentionSnapshot
  // the adaptive interval controller consumes needs to distinguish OLTP
  // suffering (shrink the interval) from maintenance suffering (mostly
  // self-inflicted, retried by the supervisor).
  struct ClassStats {
    uint64_t acquires = 0;
    uint64_t waits = 0;
    uint64_t wait_nanos = 0;
    uint64_t deadlock_victims = 0;
    uint64_t timeouts = 0;
  };

  struct Stats {
    uint64_t acquires = 0;        // successful acquisitions (incl. upgrades)
    uint64_t waits = 0;           // acquisitions that had to block
    uint64_t wait_nanos = 0;      // total time spent blocked
    uint64_t deadlocks = 0;       // requests aborted as deadlock victims
    uint64_t timeouts = 0;        // requests that hit wait_timeout
    std::array<ClassStats, kNumTxnClasses> by_class{};

    const ClassStats& cls(TxnClass c) const {
      return by_class[static_cast<size_t>(c)];
    }
  };

  LockManager() : LockManager(Options{}) {}
  explicit LockManager(Options options) : options_(options) {}

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  // Acquires (or upgrades to) `mode` on `res` for `txn`. Blocks until
  // granted, deadlock (TxnAborted), or timeout (Busy). Re-acquiring an
  // already-held equal-or-weaker mode is a no-op. `cls` feeds per-class
  // accounting and OLTP-first victim selection.
  Status Acquire(TxnId txn, const ResourceId& res, LockMode mode,
                 TxnClass cls = TxnClass::kOltp);

  // Releases every lock held by `txn` and wakes eligible waiters. Also
  // removes any waiting request `txn` may still have enqueued (used when a
  // transaction aborts mid-wait).
  void ReleaseAll(TxnId txn);

  // True if `txn` currently holds a lock on `res` with mode >= `mode`
  // (supremum equality). For assertions and tests.
  bool Holds(TxnId txn, const ResourceId& res, LockMode mode) const;

  Stats GetStats() const;
  void ResetStats();

  // Registers the per-class lock counters and wait histograms under
  // rollview_lock_* with labels {class="oltp"|"maintenance"}. The caller
  // must DropOwner(owner) on the registry before this manager dies.
  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const void* owner) const;

  // Per-class lock-wait latency histogram (nanoseconds per blocking
  // Acquire). Thread-safe; reset alongside ResetStats.
  const LatencyHistogram& WaitHistogram(TxnClass cls) const {
    return wait_hist_[static_cast<size_t>(cls)];
  }

  // Deterministic fault injection: Acquire may return an injected Busy
  // before touching the queues (a simulated lock-wait timeout). Wire up
  // before concurrent use; injected faults are NOT counted in Stats.
  void SetFaultInjector(FaultInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }

 private:
  struct Request {
    TxnId txn;
    LockMode mode;
    bool is_upgrade = false;
    bool granted = false;
    TxnClass cls = TxnClass::kOltp;
    // Set by another waiter's deadlock detector (wound); the owning waiter
    // observes it on its next wakeup and aborts with TxnAborted.
    bool victimized = false;
  };

  struct Queue {
    std::vector<Request> granted;
    std::deque<Request> waiting;
    std::condition_variable cv;
  };

  // All helpers below require mu_ held.
  Queue* GetQueue(const ResourceId& res);
  const Request* FindGranted(const Queue& q, TxnId txn) const;
  bool CanGrantFresh(const Queue& q, LockMode mode) const;
  bool CanGrantUpgrade(const Queue& q, TxnId txn, LockMode mode) const;
  void PromoteWaiters(const ResourceId& res, Queue* q);
  // Set of transactions `txn` (waiting on `res`) is blocked behind.
  std::unordered_set<TxnId> BlockersOf(TxnId txn, const Queue& q) const;
  // Members of one waits-for cycle through `self` (empty if none). Every
  // member is a waiting transaction, so any of them can be wounded.
  std::vector<TxnId> FindCycle(TxnId self) const;
  bool FindCycleDfs(TxnId cur, TxnId self, std::unordered_set<TxnId>* visited,
                    std::vector<TxnId>* path) const;
  // Deterministic OLTP-first victim: prefer maintenance-class members, then
  // fewest held locks (cheapest to redo), then highest TxnId (youngest).
  TxnId ChooseVictim(const std::vector<TxnId>& cycle) const;
  TxnClass ClassOf(TxnId txn) const;
  // Flags `victim`'s waiting request and wakes its queue.
  void VictimizeWaiter(TxnId victim);
  void RemoveWaiting(Queue* q, TxnId txn);

  Options options_;
  std::atomic<FaultInjector*> injector_{nullptr};
  mutable std::mutex mu_;
  std::unordered_map<ResourceId, std::unique_ptr<Queue>, ResourceIdHasher>
      queues_;
  // txn -> resources it holds granted locks on.
  std::unordered_map<TxnId, std::vector<ResourceId>> held_;
  // txn -> resource it is currently waiting on (at most one).
  std::unordered_map<TxnId, ResourceId> waiting_on_;
  // txn -> class, recorded on first Acquire, dropped by ReleaseAll. Victim
  // selection consults it for cycle members other than the detector.
  std::unordered_map<TxnId, TxnClass> class_of_;

  Stats stats_;
  std::array<LatencyHistogram, kNumTxnClasses> wait_hist_;
};

}  // namespace rollview

#endif  // ROLLVIEW_STORAGE_LOCK_MANAGER_H_
