// Copyright 2026 The rollview Authors.
//
// Binary serialization of WAL records, and WAL-file I/O. The format is a
// sequence of length-prefixed, checksummed records:
//
//   [u32 record_len][u32 crc32_of_body]
//   [u8 kind][u64 lsn][u64 txn][u32 table]
//   [u64 commit_csn][i64 commit_time_nanos_since_epoch]
//   [payload...]
//
// record_len counts the body (everything after the crc field); the CRC32
// covers exactly those bytes. Payload is the encoded tuple (kInsert/
// kDelete), the encoded catalog entry (kCreateTable), or -- for the view-
// maintenance kinds -- the view id followed by an opaque blob whose contents
// are owned by ivm/checkpoint.{h,cc}. All integers little-endian.
//
// A file is valid up to its last complete record; a torn tail (partial
// final record, e.g. from a crash mid-write) is detected and dropped by
// ReadWalFile. Interior corruption -- a bit flip inside a complete record
// -- fails the CRC and surfaces as Internal, never as a silently decoded
// garbage record.

#ifndef ROLLVIEW_STORAGE_WAL_CODEC_H_
#define ROLLVIEW_STORAGE_WAL_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "schema/tuple.h"
#include "storage/wal.h"

namespace rollview {

// CRC32 (IEEE 802.3 polynomial, software table) over `n` bytes.
uint32_t Crc32(const char* data, size_t n);

// Appends the encoded record (including its length prefix) to `out`.
void EncodeWalRecord(const WalRecord& record, std::string* out);

// Decodes one record from `data` (which starts at a length prefix).
// On success sets *consumed to the full encoded size. Returns OutOfRange
// when fewer than a full record's bytes are available (torn tail) and
// Internal on checksum or structural corruption.
Result<WalRecord> DecodeWalRecord(const std::string& data, size_t offset,
                                  size_t* consumed);

// Whole-log helpers.
std::string EncodeWal(const std::vector<WalRecord>& records);
// Decodes records until the data ends; a torn final record is dropped
// silently (crash semantics). Corrupt interior data fails.
Result<std::vector<WalRecord>> DecodeWal(const std::string& data);

// Crash-tolerant decode: the longest valid record prefix of `data`, plus
// why decoding stopped. Never fails -- a torn tail or a corrupt record
// simply ends the prefix (a corrupt record makes everything after it
// untrustworthy, so recovery treats it exactly like a torn tail). Used by
// crash recovery, which must accept arbitrary byte prefixes of a log.
struct WalPrefix {
  std::vector<WalRecord> records;
  size_t valid_bytes = 0;  // bytes consumed by `records`
  bool torn_tail = false;  // stopped on an incomplete final record
  // Non-OK iff decoding stopped on corruption (failed CRC / bad structure)
  // rather than clean end-of-data or a torn tail.
  Status corruption = Status::OK();
};
WalPrefix DecodeWalPrefix(const std::string& data);

// kViewDeltaAppend payload: one timed view-delta row plus the propagation
// step sequence number that produced it and the partition the producing
// strip ran for (0 in the single-driver case; partitioned drivers restart
// step sequences per partition, so recovery keys row attribution by the
// (partition, step_seq) pair). Lives here (not in the ivm layer) because
// Db::Commit emits these records itself when a buffered view-delta append
// carries a view tag. Decoding accepts the pre-partition framing (no
// trailing partition field) as partition 0.
std::string EncodeViewDeltaBlob(const DeltaRow& row, uint64_t step_seq,
                                uint32_t partition = 0);
bool DecodeViewDeltaBlob(const std::string& blob, DeltaRow* row,
                         uint64_t* step_seq, uint32_t* partition = nullptr);

// File I/O (binary).
Status WriteWalFile(const std::string& path,
                    const std::vector<WalRecord>& records);
Result<std::vector<WalRecord>> ReadWalFile(const std::string& path);

// Reusable little-endian primitives for payload codecs layered on the WAL
// (ivm/checkpoint.{h,cc} encodes its blobs with these so view payloads and
// WAL bodies share one wire dialect). Get* return false on truncation.
namespace wal_io {
void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutI64(std::string* out, int64_t v);
void PutString(std::string* out, const std::string& s);
void PutTuple(std::string* out, const Tuple& t);
void PutDeltaRow(std::string* out, const DeltaRow& r);
bool GetU8(const std::string& data, size_t* pos, uint8_t* v);
bool GetU32(const std::string& data, size_t* pos, uint32_t* v);
bool GetU64(const std::string& data, size_t* pos, uint64_t* v);
bool GetI64(const std::string& data, size_t* pos, int64_t* v);
bool GetString(const std::string& data, size_t* pos, std::string* s);
bool GetTuple(const std::string& data, size_t* pos, Tuple* t);
bool GetDeltaRow(const std::string& data, size_t* pos, DeltaRow* r);
}  // namespace wal_io

}  // namespace rollview

#endif  // ROLLVIEW_STORAGE_WAL_CODEC_H_
