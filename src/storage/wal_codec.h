// Copyright 2026 The rollview Authors.
//
// Binary serialization of WAL records, and WAL-file I/O. The format is a
// sequence of length-prefixed records:
//
//   [u32 record_len][u8 kind][u64 lsn][u64 txn][u32 table]
//   [u64 commit_csn][i64 commit_time_nanos_since_epoch]
//   [payload...]
//
// where payload is the encoded tuple (kInsert/kDelete) or the encoded
// catalog entry (kCreateTable). All integers little-endian. A file is valid
// up to its last complete record; a torn tail (partial final record, e.g.
// from a crash mid-write) is detected and dropped by ReadWalFile.

#ifndef ROLLVIEW_STORAGE_WAL_CODEC_H_
#define ROLLVIEW_STORAGE_WAL_CODEC_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/wal.h"

namespace rollview {

// Appends the encoded record (including its length prefix) to `out`.
void EncodeWalRecord(const WalRecord& record, std::string* out);

// Decodes one record from `data` (which starts at a length prefix).
// On success sets *consumed to the full encoded size. Returns OutOfRange
// when fewer than a full record's bytes are available (torn tail).
Result<WalRecord> DecodeWalRecord(const std::string& data, size_t offset,
                                  size_t* consumed);

// Whole-log helpers.
std::string EncodeWal(const std::vector<WalRecord>& records);
// Decodes records until the data ends; a torn final record is dropped
// silently (crash semantics). Corrupt interior data fails.
Result<std::vector<WalRecord>> DecodeWal(const std::string& data);

// File I/O (binary).
Status WriteWalFile(const std::string& path,
                    const std::vector<WalRecord>& records);
Result<std::vector<WalRecord>> ReadWalFile(const std::string& path);

}  // namespace rollview

#endif  // ROLLVIEW_STORAGE_WAL_CODEC_H_
