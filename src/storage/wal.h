// Copyright 2026 The rollview Authors.
//
// Write-ahead log. Data operations append change records during the
// transaction; Commit/Abort append a terminator carrying the commit CSN.
// Because commits are serialized by the transaction manager's commit mutex,
// commit records appear in the log in commit-sequence order -- the property
// the log-capture process (capture/log_capture.h, the paper's DPropR
// analogue) relies on to advance its high-water mark monotonically.
//
// The in-memory deque is the capture read path; truncation of consumed
// prefixes is supported so long-running benchmarks stay bounded. When
// DbOptions::wal_dir is set, the log is additionally durable: every append
// is encoded and handed to a file-backed segment store
// (storage/wal_segment.h) whose group-commit flusher batches appends and
// fsyncs; SyncTo is the commit acknowledgment point. With wal_dir empty
// (the default) nothing touches disk and existing tests/benches keep their
// fast path.

#ifndef ROLLVIEW_STORAGE_WAL_H_
#define ROLLVIEW_STORAGE_WAL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/csn.h"
#include "common/fault_injector.h"
#include "common/status.h"
#include "schema/schema.h"
#include "schema/tuple.h"
#include "storage/ids.h"

namespace rollview {

namespace obs {
class FreshnessTracker;
class MetricsRegistry;
}  // namespace obs

struct DurableWalOptions;
class WalSegmentStore;

using Lsn = uint64_t;

// Catalog payload of a kCreateTable record: enough to recreate the table
// (and its delta table) during log replay.
struct CreateTablePayload {
  std::string name;
  Schema schema;
  CaptureMode capture_mode = CaptureMode::kLog;
  std::vector<size_t> indexed_columns;
};

struct WalRecord {
  enum class Kind : uint8_t {
    kInsert,
    kDelete,
    kCommit,
    kAbort,
    kCreateTable,
    // --- View-maintenance records (ivm layer). The paper's prototype keeps
    // propagation status and view deltas in ordinary DB2 tables so standard
    // recovery covers them; we log them instead. Payloads are opaque blobs
    // encoded/decoded by ivm/checkpoint.{h,cc} so the storage layer stays
    // ignorant of view internals.
    kCreateView,       // view registered; blob = view name
    kViewDeltaAppend,  // one timed view-delta row; transactional (gated on
                       // the owning txn's kCommit record, like kInsert)
    kViewCursor,       // propagation step completed; blob = frontier vectors
    kViewApplied,      // MV rolled forward; blob = applied CSN
    kViewCheckpoint,   // periodic durable snapshot of MV + delta + cursors
    kViewScrub,        // scrub finding/repair audit record (informational:
                       // recovery replays state, not scrub history)
    kViewQuarantine,   // view/bucket quarantine entered or cleared
  };

  Kind kind = Kind::kInsert;
  Lsn lsn = 0;
  TxnId txn = kInvalidTxnId;
  TableId table = kInvalidTableId;  // kInsert/kDelete only
  Tuple tuple;                      // kInsert/kDelete only
  Csn commit_csn = kNullCsn;        // kCommit only
  // Wall-clock commit timestamp (kCommit only); the capture process copies
  // it into the unit-of-work table, exactly as DPropR reads commit times
  // from the log.
  std::chrono::system_clock::time_point commit_time;
  // kCreateTable only (shared_ptr keeps WalRecord cheap to copy).
  std::shared_ptr<CreateTablePayload> create;
  // View records only: the view id this record belongs to, plus the
  // ivm-encoded payload (shared_ptr keeps copies cheap; checkpoints can be
  // large).
  uint32_t view = 0;
  std::shared_ptr<std::string> blob;
};

inline bool IsViewRecord(WalRecord::Kind k) {
  return k == WalRecord::Kind::kCreateView ||
         k == WalRecord::Kind::kViewDeltaAppend ||
         k == WalRecord::Kind::kViewCursor ||
         k == WalRecord::Kind::kViewApplied ||
         k == WalRecord::Kind::kViewCheckpoint ||
         k == WalRecord::Kind::kViewScrub ||
         k == WalRecord::Kind::kViewQuarantine;
}

class Wal {
 public:
  Wal();
  ~Wal();

  // Appends a record, assigning it the next LSN (returned). With a durable
  // backend attached the encoded record is also enqueued for the
  // group-commit flusher (in LSN order -- encoding happens under the same
  // mutex that assigns the LSN).
  Lsn Append(WalRecord record);

  // --- Durable backing (file-backed segmented log) ---

  // Attaches a segment store at `generation`, starting from the current
  // next_lsn(). On failure the store is kept in its failed state so
  // CheckWritable()/SyncTo surface the error instead of silently running
  // in-memory. Call store()->Start() to launch the flusher (recovery
  // publishes its checkpoint first).
  Status OpenDurable(const DurableWalOptions& options, uint64_t generation,
                     bool require_empty);
  bool durable() const { return store_ != nullptr; }
  WalSegmentStore* store() const { return store_.get(); }

  // Blocks until the record at `lsn` is durable. No-op without a backend.
  Status SyncTo(Lsn lsn);
  // Fail-fast commit gate: transient Busy while the device is out of space.
  Status CheckWritable() const;
  // CSN coverage of the latest durable checkpoint; kMaxCsn without a
  // backend (retention is then unconstrained by durability).
  Csn durable_covered_csn() const;
  // Forwards the RetentionManager prune floor to segment retention.
  void SetRetentionFloor(Csn floor);

  // Deterministic fault injection (common/fault_injector.h). Append sites
  // that can surface an error to a transaction call MaybeInjectWriteError()
  // *before* mutating any state; a non-OK result models a failed log write
  // and the caller must abort the transaction. Covers both the legacy
  // wal_error class and the storage-fault classes (EIO / short write /
  // ENOSPC), all transient.
  // Atomic so installation from a test/driver thread publishes the fully
  // constructed injector to threads already appending (release/acquire).
  // Forwarded to the durable backend (whose flusher draws class-resolved
  // storage faults) when one is attached.
  void SetFaultInjector(FaultInjector* injector);
  Status MaybeInjectWriteError() {
    FaultInjector* fi = injector_.load(std::memory_order_acquire);
    if (fi == nullptr) return Status::OK();
    Status s = fi->MaybeWalError();
    if (!s.ok()) return s;
    return fi->MaybeStorageFault();
  }

  // Freshness pipeline: with a durable backend the flusher stamps the
  // durable CSN frontier into the tracker after each group-commit fsync
  // (obs/freshness.h). No-op for the in-memory log (commit ack is then the
  // durability point and the durable stage lag reads as zero).
  void SetFreshnessTracker(obs::FreshnessTracker* tracker);

  // Copies records with LSN >= `from` into `out` (up to `max` records).
  // Returns the LSN one past the last record copied (the next `from`).
  Lsn ReadFrom(Lsn from, size_t max, std::vector<WalRecord>* out) const;

  // Drops records with LSN < `up_to`. Readers must have consumed them.
  void Truncate(Lsn up_to);

  Lsn next_lsn() const;
  size_t size() const;

  // Registers rollview_wal_next_lsn and rollview_wal_records gauges; with a
  // durable backend also the segment/durability telemetry
  // (rollview_wal_segments, rollview_wal_bytes{state}, group-commit batch
  // size + sync latency histograms, rollview_wal_storage_faults_total).
  // The caller must DropOwner(owner) on the registry before the WAL dies.
  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const void* owner) const;

 private:
  std::atomic<FaultInjector*> injector_{nullptr};
  mutable std::mutex mu_;
  std::deque<WalRecord> records_;
  Lsn first_lsn_ = 0;  // LSN of records_.front()
  Lsn next_lsn_ = 0;
  std::unique_ptr<WalSegmentStore> store_;
};

}  // namespace rollview

#endif  // ROLLVIEW_STORAGE_WAL_H_
