// Copyright 2026 The rollview Authors.

#ifndef ROLLVIEW_STORAGE_IDS_H_
#define ROLLVIEW_STORAGE_IDS_H_

#include <cstdint>
#include <functional>

namespace rollview {

using TableId = uint32_t;
using TxnId = uint64_t;

inline constexpr TxnId kInvalidTxnId = 0;
inline constexpr TableId kInvalidTableId = 0;

// How a base table's delta table (Delta^R) is populated -- see storage/db.h
// for the trade-off discussion (paper Sec. 5). Lives here so the WAL's
// catalog records can carry it without depending on db.h.
enum class CaptureMode : uint8_t { kLog = 0, kTrigger = 1 };

}  // namespace rollview

#endif  // ROLLVIEW_STORAGE_IDS_H_
