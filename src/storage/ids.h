// Copyright 2026 The rollview Authors.

#ifndef ROLLVIEW_STORAGE_IDS_H_
#define ROLLVIEW_STORAGE_IDS_H_

#include <cstdint>
#include <functional>

namespace rollview {

using TableId = uint32_t;
using TxnId = uint64_t;

inline constexpr TxnId kInvalidTxnId = 0;
inline constexpr TableId kInvalidTableId = 0;

// How a base table's delta table (Delta^R) is populated -- see storage/db.h
// for the trade-off discussion (paper Sec. 5). Lives here so the WAL's
// catalog records can carry it without depending on db.h.
enum class CaptureMode : uint8_t { kLog = 0, kTrigger = 1 };

// Transaction class, the contention-control axis of Sec. 3.3: foreground
// OLTP work versus background view maintenance (propagation, apply,
// refresh, cancellation). The lock manager uses it for per-class wait
// accounting and for deterministic OLTP-first deadlock victim selection --
// maintenance transactions volunteer as victims, since the supervised
// drivers retry them cheaply while an aborted OLTP transaction is a
// user-visible failure. Lives here so both txn.h and lock_manager.h can
// carry it without depending on each other.
enum class TxnClass : uint8_t { kOltp = 0, kMaintenance = 1 };

inline constexpr size_t kNumTxnClasses = 2;

inline const char* TxnClassName(TxnClass c) {
  return c == TxnClass::kOltp ? "oltp" : "maintenance";
}

}  // namespace rollview

#endif  // ROLLVIEW_STORAGE_IDS_H_
