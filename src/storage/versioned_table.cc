#include "storage/versioned_table.h"

#include <algorithm>
#include <cassert>
#include <mutex>

namespace rollview {

VersionedTable::VersionedTable(TableId id, std::string name, Schema schema,
                               std::vector<size_t> indexed_columns)
    : id_(id),
      name_(std::move(name)),
      schema_(std::move(schema)),
      indexed_columns_(std::move(indexed_columns)) {
  indexes_.resize(indexed_columns_.size());
}

size_t VersionedTable::AddPendingInsert(TxnId txn, Tuple tuple) {
  std::unique_lock<std::shared_mutex> lk(latch_);
  size_t slot = versions_.size();
  Version v;
  v.tuple = std::move(tuple);
  v.begin_txn = txn;
  versions_.push_back(std::move(v));
  for (size_t i = 0; i < indexed_columns_.size(); ++i) {
    indexes_[i][versions_[slot].tuple[indexed_columns_[i]]].push_back(slot);
  }
  return slot;
}

bool VersionedTable::VisibleToTxn(const Version& v, TxnId txn) const {
  if (v.insert_aborted) return false;
  bool inserted = (v.begin_csn != kNullCsn) || (v.begin_txn == txn);
  if (!inserted) return false;
  if (v.end_csn != kMaxCsn) return false;         // committed delete
  if (v.end_txn != kInvalidTxnId && v.end_txn == txn) return false;
  // A pending delete by *another* transaction leaves the row visible; under
  // strict 2PL this situation cannot arise while we hold a conflicting lock,
  // but snapshot-ahead readers and assertions may still evaluate it.
  return true;
}

bool VersionedTable::VisibleAt(const Version& v, Csn csn) const {
  if (v.insert_aborted) return false;
  if (v.begin_csn == kNullCsn || v.begin_csn > csn) return false;
  return v.end_csn == kMaxCsn || v.end_csn > csn;
}

int64_t VersionedTable::MarkPendingDeletes(
    TxnId txn, const std::function<bool(const Tuple&)>& pred, int64_t limit,
    std::vector<size_t>* slots, std::vector<Tuple>* tuples) {
  std::unique_lock<std::shared_mutex> lk(latch_);
  int64_t marked = 0;
  for (size_t i = 0; i < versions_.size(); ++i) {
    if (limit >= 0 && marked >= limit) break;
    Version& v = versions_[i];
    if (!VisibleToTxn(v, txn)) continue;
    if (v.end_txn != kInvalidTxnId) continue;  // already pending-deleted
    if (!pred(v.tuple)) continue;
    v.end_txn = txn;
    slots->push_back(i);
    tuples->push_back(v.tuple);
    ++marked;
  }
  return marked;
}

void VersionedTable::CommitInsert(size_t slot, Csn csn) {
  std::unique_lock<std::shared_mutex> lk(latch_);
  Version& v = versions_[slot];
  assert(v.begin_csn == kNullCsn && !v.insert_aborted);
  v.begin_csn = csn;
  v.begin_txn = kInvalidTxnId;
  if (csn > last_change_csn_) last_change_csn_ = csn;
}

void VersionedTable::CommitDelete(size_t slot, Csn csn) {
  std::unique_lock<std::shared_mutex> lk(latch_);
  Version& v = versions_[slot];
  assert(v.end_txn != kInvalidTxnId && v.end_csn == kMaxCsn);
  v.end_csn = csn;
  v.end_txn = kInvalidTxnId;
  if (csn > last_change_csn_) last_change_csn_ = csn;
}

void VersionedTable::AbortInsert(size_t slot) {
  std::unique_lock<std::shared_mutex> lk(latch_);
  Version& v = versions_[slot];
  assert(v.begin_csn == kNullCsn);
  v.insert_aborted = true;
  v.begin_txn = kInvalidTxnId;
}

void VersionedTable::AbortDelete(size_t slot) {
  std::unique_lock<std::shared_mutex> lk(latch_);
  Version& v = versions_[slot];
  assert(v.end_txn != kInvalidTxnId && v.end_csn == kMaxCsn);
  v.end_txn = kInvalidTxnId;
}

template <typename Visible>
void VersionedTable::ScanVisitImpl(
    Visible visible, const std::function<bool(const Tuple&)>* pred,
    const std::function<void(const Tuple&)>& fn) const {
  std::shared_lock<std::shared_mutex> lk(latch_);
  for (const Version& v : versions_) {
    if (!visible(v)) continue;
    if (pred != nullptr && !(*pred)(v.tuple)) continue;
    fn(v.tuple);
  }
}

template <typename Visible>
void VersionedTable::ProbeVisitImpl(
    Visible visible, size_t col, const Value& key,
    const std::function<void(const Tuple&)>& fn) const {
  std::shared_lock<std::shared_mutex> lk(latch_);
  for (size_t i = 0; i < indexed_columns_.size(); ++i) {
    if (indexed_columns_[i] != col) continue;
    auto it = indexes_[i].find(key);
    if (it == indexes_[i].end()) return;
    for (size_t slot : it->second) {
      const Version& v = versions_[slot];
      if (visible(v)) fn(v.tuple);
    }
    return;
  }
  assert(false && "probe on a non-indexed column");
}

void VersionedTable::ScanVisitCurrent(
    TxnId txn, const std::function<void(const Tuple&)>& fn,
    const std::function<bool(const Tuple&)>* pred) const {
  ScanVisitImpl([&](const Version& v) { return VisibleToTxn(v, txn); }, pred,
                fn);
}

void VersionedTable::ScanVisitSnapshot(
    Csn csn, const std::function<void(const Tuple&)>& fn,
    const std::function<bool(const Tuple&)>* pred) const {
  ScanVisitImpl([&](const Version& v) { return VisibleAt(v, csn); }, pred, fn);
}

void VersionedTable::VisitVersions(
    const std::function<void(const Tuple&, Csn begin, Csn end)>& fn) const {
  std::shared_lock<std::shared_mutex> lk(latch_);
  for (const Version& v : versions_) {
    if (v.insert_aborted || v.begin_csn == kNullCsn) continue;
    fn(v.tuple, v.begin_csn, v.end_csn);
  }
}

void VersionedTable::ProbeVisitCurrent(
    TxnId txn, size_t col, const Value& key,
    const std::function<void(const Tuple&)>& fn) const {
  ProbeVisitImpl([&](const Version& v) { return VisibleToTxn(v, txn); }, col,
                 key, fn);
}

void VersionedTable::ProbeVisitSnapshot(
    Csn csn, size_t col, const Value& key,
    const std::function<void(const Tuple&)>& fn) const {
  ProbeVisitImpl([&](const Version& v) { return VisibleAt(v, csn); }, col, key,
                 fn);
}

std::vector<Tuple> VersionedTable::CurrentScan(TxnId txn) const {
  std::vector<Tuple> out;
  ScanVisitCurrent(txn, [&](const Tuple& t) { out.push_back(t); });
  return out;
}

std::vector<Tuple> VersionedTable::CurrentScanWhere(
    TxnId txn, const std::function<bool(const Tuple&)>& pred) const {
  std::vector<Tuple> out;
  ScanVisitCurrent(txn, [&](const Tuple& t) { out.push_back(t); }, &pred);
  return out;
}

std::vector<Tuple> VersionedTable::SnapshotScan(Csn csn) const {
  std::vector<Tuple> out;
  ScanVisitSnapshot(csn, [&](const Tuple& t) { out.push_back(t); });
  return out;
}

std::vector<Tuple> VersionedTable::CurrentProbe(TxnId txn, size_t col,
                                                const Value& key) const {
  std::vector<Tuple> out;
  ProbeVisitCurrent(txn, col, key, [&](const Tuple& t) { out.push_back(t); });
  return out;
}

std::vector<Tuple> VersionedTable::SnapshotProbe(Csn csn, size_t col,
                                                 const Value& key) const {
  std::vector<Tuple> out;
  ProbeVisitSnapshot(csn, col, key, [&](const Tuple& t) { out.push_back(t); });
  return out;
}

Csn VersionedTable::last_change_csn() const {
  std::shared_lock<std::shared_mutex> lk(latch_);
  return last_change_csn_;
}

size_t VersionedTable::LiveSize() const {
  std::shared_lock<std::shared_mutex> lk(latch_);
  size_t n = 0;
  for (const Version& v : versions_) {
    if (!v.insert_aborted && v.begin_csn != kNullCsn && v.end_csn == kMaxCsn) {
      ++n;
    }
  }
  return n;
}

size_t VersionedTable::VersionCount() const {
  std::shared_lock<std::shared_mutex> lk(latch_);
  return versions_.size();
}

void VersionedTable::GarbageCollect(Csn horizon) {
  std::unique_lock<std::shared_mutex> lk(latch_);
  // Compact: keep versions still visible at or after `horizon`, or pending.
  std::vector<size_t> remap(versions_.size(), SIZE_MAX);
  std::vector<Version> kept;
  kept.reserve(versions_.size());
  for (size_t i = 0; i < versions_.size(); ++i) {
    const Version& v = versions_[i];
    bool dead = v.insert_aborted ||
                (v.end_csn != kMaxCsn && v.end_csn <= horizon);
    if (dead) continue;
    remap[i] = kept.size();
    kept.push_back(v);
  }
  versions_ = std::move(kept);
  for (auto& index : indexes_) {
    for (auto it = index.begin(); it != index.end();) {
      std::vector<size_t>& slots = it->second;
      std::vector<size_t> updated;
      updated.reserve(slots.size());
      for (size_t slot : slots) {
        if (remap[slot] != SIZE_MAX) updated.push_back(remap[slot]);
      }
      if (updated.empty()) {
        it = index.erase(it);
      } else {
        it->second = std::move(updated);
        ++it;
      }
    }
  }
}

}  // namespace rollview
