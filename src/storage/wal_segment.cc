#include "storage/wal_segment.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/freshness.h"
#include "obs/trace.h"
#include "storage/wal_codec.h"

namespace rollview {

namespace {

constexpr char kSegmentMagic[8] = {'R', 'V', 'W', 'A', 'L', 'S', 'G', '1'};
constexpr char kCkptMagic[8] = {'R', 'V', 'W', 'A', 'L', 'C', 'K', '1'};
constexpr uint32_t kSegmentVersion = 1;
constexpr uint32_t kCkptVersion = 1;
constexpr uint32_t kFlagSealed = 1u << 0;
constexpr uint32_t kFlagPrevPoisoned = 1u << 1;
constexpr size_t kCkptHeaderBytes = 56;

// Classification of one real or injected I/O attempt.
enum class IoClass { kOk, kEnospc, kFailed };

IoClass ClassifyErrno(int err) {
  return err == ENOSPC ? IoClass::kEnospc : IoClass::kFailed;
}

IoClass WriteFully(int fd, const char* data, size_t n) {
  size_t off = 0;
  while (off < n) {
    ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return ClassifyErrno(errno);
    }
    if (w == 0) return IoClass::kFailed;
    off += static_cast<size_t>(w);
  }
  return IoClass::kOk;
}

IoClass PwriteFully(int fd, const char* data, size_t n, off_t pos) {
  size_t off = 0;
  while (off < n) {
    ssize_t w = ::pwrite(fd, data + off, n - off, pos + static_cast<off_t>(off));
    if (w < 0) {
      if (errno == EINTR) continue;
      return ClassifyErrno(errno);
    }
    if (w == 0) return IoClass::kFailed;
    off += static_cast<size_t>(w);
  }
  return IoClass::kOk;
}

Status SyncDirectory(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::Internal("open wal dir for fsync failed: " + dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status::Internal("fsync of wal dir failed: " + dir);
  return Status::OK();
}

Status EnsureDirectory(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::OK();
  if (errno == ENOENT) {
    // One level of parent creation covers the test-tempdir layouts.
    size_t slash = dir.find_last_of('/');
    if (slash != std::string::npos && slash > 0) {
      ROLLVIEW_RETURN_NOT_OK(EnsureDirectory(dir.substr(0, slash)));
      if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) {
        return Status::OK();
      }
    }
  }
  return Status::Internal("mkdir failed for wal dir: " + dir);
}

Result<std::string> ReadWholeFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::Internal("open failed: " + path);
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::Internal("read failed: " + path);
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

bool ParseHex16(const std::string& s, size_t pos, uint64_t* v) {
  if (pos + 16 > s.size()) return false;
  uint64_t acc = 0;
  for (size_t i = 0; i < 16; ++i) {
    char c = s[pos + i];
    acc <<= 4;
    if (c >= '0' && c <= '9') {
      acc |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      acc |= static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *v = acc;
  return true;
}

// Deterministic cut point for a simulated torn batch tail (crash or injected
// short write mid-append): 25/50/75% of the batch, keyed by its first LSN.
size_t TornCut(Lsn first_lsn, size_t n) {
  if (n == 0) return 0;
  return (n * ((first_lsn % 3) + 1)) / 4;
}

}  // namespace

std::string EncodeSegmentHeader(const SegmentHeader& h) {
  std::string out;
  out.append(kSegmentMagic, sizeof(kSegmentMagic));
  wal_io::PutU32(&out, kSegmentVersion);
  uint32_t flags = (h.sealed ? kFlagSealed : 0u) |
                   (h.prev_poisoned ? kFlagPrevPoisoned : 0u);
  wal_io::PutU32(&out, flags);
  wal_io::PutU64(&out, h.generation);
  wal_io::PutU64(&out, h.first_lsn);
  wal_io::PutU64(&out, h.last_lsn);
  wal_io::PutU64(&out, h.min_csn);
  wal_io::PutU64(&out, h.max_csn);
  wal_io::PutU32(&out, 0);  // reserved
  wal_io::PutU32(&out, Crc32(out.data(), out.size()));
  return out;
}

Result<SegmentHeader> DecodeSegmentHeader(const std::string& data) {
  if (data.size() < kSegmentHeaderBytes) {
    return Status::OutOfRange("segment header truncated");
  }
  if (std::memcmp(data.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    return Status::Internal("bad segment magic");
  }
  size_t pos = sizeof(kSegmentMagic);
  uint32_t version = 0, flags = 0, reserved = 0, crc = 0;
  SegmentHeader h;
  if (!wal_io::GetU32(data, &pos, &version) ||
      !wal_io::GetU32(data, &pos, &flags) ||
      !wal_io::GetU64(data, &pos, &h.generation) ||
      !wal_io::GetU64(data, &pos, &h.first_lsn) ||
      !wal_io::GetU64(data, &pos, &h.last_lsn) ||
      !wal_io::GetU64(data, &pos, &h.min_csn) ||
      !wal_io::GetU64(data, &pos, &h.max_csn) ||
      !wal_io::GetU32(data, &pos, &reserved) ||
      !wal_io::GetU32(data, &pos, &crc)) {
    return Status::Internal("segment header decode failed");
  }
  if (crc != Crc32(data.data(), pos - sizeof(uint32_t))) {
    return Status::Internal("segment header checksum mismatch");
  }
  if (version != kSegmentVersion) {
    return Status::Internal("unsupported segment version");
  }
  h.sealed = (flags & kFlagSealed) != 0;
  h.prev_poisoned = (flags & kFlagPrevPoisoned) != 0;
  return h;
}

std::string SegmentFileName(uint64_t generation, Lsn first_lsn) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "wal-%016llx-%016llx.seg",
                static_cast<unsigned long long>(generation),
                static_cast<unsigned long long>(first_lsn));
  return buf;
}

std::string CheckpointFileName(uint64_t generation) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "ckpt-%016llx.ckpt",
                static_cast<unsigned long long>(generation));
  return buf;
}

// --- Directory scan (recovery read path) ---------------------------------

namespace {

struct CkptFile {
  uint64_t generation = 0;
  std::string path;
};
struct SegFile {
  uint64_t generation = 0;
  Lsn first_lsn = 0;
  std::string path;
};

struct DirListing {
  std::vector<CkptFile> ckpts;
  std::vector<SegFile> segs;
  bool exists = false;
};

Result<DirListing> ListWalDir(const std::string& dir) {
  DirListing out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    if (errno == ENOENT) return out;  // fresh database
    return Status::Internal("opendir failed: " + dir);
  }
  out.exists = true;
  while (struct dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    uint64_t gen = 0, first = 0;
    if (name.size() == 4 + 16 + 1 + 16 + 4 && name.rfind("wal-", 0) == 0 &&
        name.compare(name.size() - 4, 4, ".seg") == 0 &&
        ParseHex16(name, 4, &gen) && name[20] == '-' &&
        ParseHex16(name, 21, &first)) {
      out.segs.push_back(SegFile{gen, first, dir + "/" + name});
    } else if (name.size() == 5 + 16 + 5 && name.rfind("ckpt-", 0) == 0 &&
               name.compare(name.size() - 5, 5, ".ckpt") == 0 &&
               ParseHex16(name, 5, &gen)) {
      out.ckpts.push_back(CkptFile{gen, dir + "/" + name});
    }
    // Anything else (ckpt-*.tmp from an interrupted publish, stray files)
    // is ignored.
  }
  ::closedir(d);
  return out;
}

std::string EncodeCkptHeader(uint64_t generation, Lsn covered_end_lsn,
                             Csn covered_csn, const std::string& body) {
  std::string out;
  out.append(kCkptMagic, sizeof(kCkptMagic));
  wal_io::PutU32(&out, kCkptVersion);
  wal_io::PutU32(&out, 0);  // reserved
  wal_io::PutU64(&out, generation);
  wal_io::PutU64(&out, covered_end_lsn);
  wal_io::PutU64(&out, covered_csn);
  wal_io::PutU64(&out, body.size());
  wal_io::PutU32(&out, Crc32(body.data(), body.size()));
  wal_io::PutU32(&out, Crc32(out.data(), out.size()));
  return out;
}

struct DecodedCkpt {
  uint64_t generation = 0;
  Lsn covered_end_lsn = 0;
  Csn covered_csn = 0;
  std::vector<WalRecord> image;
};

Result<DecodedCkpt> DecodeCkptFile(const std::string& path) {
  ROLLVIEW_ASSIGN_OR_RETURN(std::string data, ReadWholeFile(path));
  if (data.size() < kCkptHeaderBytes) {
    return Status::Internal("checkpoint file truncated: " + path);
  }
  if (std::memcmp(data.data(), kCkptMagic, sizeof(kCkptMagic)) != 0) {
    return Status::Internal("bad checkpoint magic: " + path);
  }
  size_t pos = sizeof(kCkptMagic);
  uint32_t version = 0, reserved = 0, body_crc = 0, header_crc = 0;
  uint64_t body_size = 0;
  DecodedCkpt out;
  if (!wal_io::GetU32(data, &pos, &version) ||
      !wal_io::GetU32(data, &pos, &reserved) ||
      !wal_io::GetU64(data, &pos, &out.generation) ||
      !wal_io::GetU64(data, &pos, &out.covered_end_lsn) ||
      !wal_io::GetU64(data, &pos, &out.covered_csn) ||
      !wal_io::GetU64(data, &pos, &body_size) ||
      !wal_io::GetU32(data, &pos, &body_crc) ||
      !wal_io::GetU32(data, &pos, &header_crc)) {
    return Status::Internal("checkpoint header decode failed: " + path);
  }
  if (header_crc != Crc32(data.data(), pos - sizeof(uint32_t))) {
    return Status::Internal("checkpoint header checksum mismatch: " + path);
  }
  if (version != kCkptVersion) {
    return Status::Internal("unsupported checkpoint version: " + path);
  }
  if (data.size() - pos != body_size) {
    return Status::Internal("checkpoint body size mismatch: " + path);
  }
  std::string body = data.substr(pos);
  if (body_crc != Crc32(body.data(), body.size())) {
    return Status::Internal("checkpoint body checksum mismatch: " + path);
  }
  ROLLVIEW_ASSIGN_OR_RETURN(out.image, DecodeWal(body));
  return out;
}

}  // namespace

Result<WalDirScan> ScanWalDir(const std::string& dir) {
  WalDirScan scan;
  ROLLVIEW_ASSIGN_OR_RETURN(DirListing listing, ListWalDir(dir));
  for (const CkptFile& c : listing.ckpts) {
    scan.max_generation = std::max(scan.max_generation, c.generation);
  }
  for (const SegFile& s : listing.segs) {
    scan.max_generation = std::max(scan.max_generation, s.generation);
  }
  if (!listing.ckpts.empty()) {
    const CkptFile* best = &listing.ckpts[0];
    for (const CkptFile& c : listing.ckpts) {
      if (c.generation > best->generation) best = &c;
    }
    // The newest checkpoint is the recovery anchor; damage to it is
    // unrecoverable media corruption, so it fails loudly rather than
    // silently falling back to a stale generation.
    ROLLVIEW_ASSIGN_OR_RETURN(DecodedCkpt ckpt, DecodeCkptFile(best->path));
    if (ckpt.generation != best->generation) {
      return Status::Internal("checkpoint generation mismatch: " + best->path);
    }
    scan.checkpoint_generation = ckpt.generation;
    scan.covered_end_lsn = ckpt.covered_end_lsn;
    scan.covered_csn = ckpt.covered_csn;
    scan.image = std::move(ckpt.image);
  }

  // Segment suffix: only the newest generation is replayable. Segments of a
  // generation newer than the newest checkpoint can only exist if that
  // generation's checkpoint was destroyed (publish strictly precedes the
  // first append of a generation) -- fail loudly. Older generations are
  // fully covered leftovers awaiting deletion.
  std::vector<SegFile> segs;
  uint64_t seg_gen = 0;
  for (const SegFile& s : listing.segs) {
    seg_gen = std::max(seg_gen, s.generation);
  }
  if (seg_gen > 0) {
    if (scan.checkpoint_generation == 0) {
      for (const SegFile& s : listing.segs) {
        if (s.generation != seg_gen) {
          return Status::Internal(
              "wal dir holds multiple segment generations but no checkpoint");
        }
      }
      segs = listing.segs;
    } else if (seg_gen > scan.checkpoint_generation) {
      return Status::Internal(
          "segment generation newer than newest checkpoint (checkpoint "
          "destroyed?)");
    } else {
      for (const SegFile& s : listing.segs) {
        if (s.generation == scan.checkpoint_generation) segs.push_back(s);
      }
    }
  }
  std::sort(segs.begin(), segs.end(),
            [](const SegFile& a, const SegFile& b) {
              return a.first_lsn < b.first_lsn;
            });

  // Two passes: headers first (a segment's tolerance for a torn tail
  // depends on its successor's prev_poisoned flag), then bodies in order.
  struct LoadedSeg {
    SegmentHeader header;
    std::string data;
  };
  std::vector<LoadedSeg> loaded;
  for (size_t i = 0; i < segs.size(); ++i) {
    ROLLVIEW_ASSIGN_OR_RETURN(std::string data, ReadWholeFile(segs[i].path));
    bool last = i + 1 == segs.size();
    if (data.size() < kSegmentHeaderBytes) {
      // A header can only be torn in the very last segment (creation
      // crashed before any record was acknowledged in it).
      if (!last) {
        return Status::Internal("torn segment header mid-stream: " +
                                segs[i].path);
      }
      scan.torn_tail = true;
      break;
    }
    auto header = DecodeSegmentHeader(data);
    if (!header.ok()) return header.status();
    if (header->generation != segs[i].generation ||
        header->first_lsn != segs[i].first_lsn) {
      return Status::Internal("segment header does not match file name: " +
                              segs[i].path);
    }
    loaded.push_back(LoadedSeg{*header, std::move(data)});
  }

  Lsn next_expected = scan.covered_end_lsn;
  if (!loaded.empty() && scan.checkpoint_generation == 0 &&
      loaded[0].header.first_lsn != 0) {
    return Status::Internal("first segment does not start at lsn 0");
  }
  for (size_t i = 0; i < loaded.size(); ++i) {
    const LoadedSeg& seg = loaded[i];
    bool last = i + 1 == loaded.size();
    bool successor_poisoned = !last && loaded[i + 1].header.prev_poisoned;
    if (scan.checkpoint_generation != 0 || i > 0) {
      if (seg.header.first_lsn > next_expected) {
        return Status::Internal(
            "lsn gap entering segment (covered suffix stranded): " +
            SegmentFileName(seg.header.generation, seg.header.first_lsn));
      }
    }
    std::string body = seg.data.substr(kSegmentHeaderBytes);
    WalPrefix prefix = DecodeWalPrefix(body);
    bool damaged = prefix.torn_tail || !prefix.corruption.ok() ||
                   prefix.valid_bytes != body.size();
    if (seg.header.sealed) {
      if (damaged || prefix.records.empty() ||
          prefix.records.back().lsn != seg.header.last_lsn) {
        return Status::Internal(
            "sealed segment corrupt (mid-stream damage): " +
            SegmentFileName(seg.header.generation, seg.header.first_lsn));
      }
    } else if (!last && !successor_poisoned) {
      return Status::Internal(
          "unsealed segment mid-stream without poisoned-rotation marker: " +
          SegmentFileName(seg.header.generation, seg.header.first_lsn));
    } else if (damaged && last) {
      scan.torn_tail = true;
    }
    // Per-record continuity inside the segment.
    Lsn expect = seg.header.first_lsn;
    for (const WalRecord& rec : prefix.records) {
      if (rec.lsn != expect) {
        return Status::Internal("lsn discontinuity inside segment");
      }
      ++expect;
    }
    std::vector<WalRecord> records = std::move(prefix.records);
    if (successor_poisoned) {
      // The successor re-appended this segment's unacknowledged batch;
      // everything at or beyond its first LSN here is a duplicate (or a
      // torn fragment) and is dropped.
      Lsn succ_first = loaded[i + 1].header.first_lsn;
      while (!records.empty() && records.back().lsn >= succ_first) {
        records.pop_back();
        ++scan.records_dropped;
      }
    }
    if (!records.empty()) {
      Lsn seg_end = records.back().lsn + 1;
      if (!last && loaded[i + 1].header.first_lsn > seg_end) {
        return Status::Internal("lsn gap between segments");
      }
      next_expected = std::max(next_expected, seg_end);
    }
    for (WalRecord& rec : records) {
      if (rec.lsn >= scan.covered_end_lsn) {
        scan.suffix.push_back(std::move(rec));
      }
    }
    ++scan.segments_read;
  }
  // Suffix continuity against the checkpoint boundary.
  if (!scan.suffix.empty() && scan.suffix.front().lsn != scan.covered_end_lsn) {
    return Status::Internal(
        "replay suffix does not start at checkpoint coverage (segments "
        "missing)");
  }
  for (size_t i = 1; i < scan.suffix.size(); ++i) {
    if (scan.suffix[i].lsn != scan.suffix[i - 1].lsn + 1) {
      return Status::Internal("replay suffix has an lsn gap");
    }
  }
  return scan;
}

// --- Writer side ----------------------------------------------------------

WalSegmentStore::~WalSegmentStore() {
  Stop();
  std::lock_guard<std::mutex> lk(smu_);
  if (active_fd_ >= 0) {
    ::close(active_fd_);
    active_fd_ = -1;
  }
}

Status WalSegmentStore::Open(const DurableWalOptions& options,
                             uint64_t generation, Lsn next_lsn,
                             bool require_empty) {
  options_ = options;
  generation_ = generation;
  durable_end_lsn_.store(next_lsn, std::memory_order_release);
  Status s = EnsureDirectory(options_.dir);
  if (!s.ok()) {
    open_status_ = s;
    return s;
  }
  if (require_empty) {
    auto listing = ListWalDir(options_.dir);
    if (!listing.ok()) {
      open_status_ = listing.status();
      return open_status_;
    }
    if (!listing->segs.empty() || !listing->ckpts.empty()) {
      open_status_ = Status::AlreadyExists(
          "wal dir holds an existing log; recover it instead of opening "
          "fresh: " + options_.dir);
      return open_status_;
    }
  }
  opened_ = true;
  return Status::OK();
}

void WalSegmentStore::Start() {
  if (!opened_ || flusher_running_) return;
  flusher_running_ = true;
  flusher_ = std::thread([this] { FlusherLoop(); });
}

void WalSegmentStore::Stop() {
  {
    std::lock_guard<std::mutex> lk(qmu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  durable_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
}

void WalSegmentStore::Enqueue(Lsn lsn, Csn commit_csn, std::string bytes) {
  if (!opened_ || crashed()) return;
  {
    std::lock_guard<std::mutex> lk(qmu_);
    queue_.push_back(QueuedRecord{lsn, commit_csn, std::move(bytes)});
  }
  queue_cv_.notify_one();
}

Status WalSegmentStore::SyncTo(Lsn lsn) {
  if (!opened_) return open_status_.ok() ? Status::Internal("wal not open")
                                         : open_status_;
  auto start = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lk(qmu_);
  durable_cv_.wait(lk, [&] {
    return crashed() || durable_end_lsn() > lsn ||
           (stopping_ && !flusher_running_);
  });
  if (durable_end_lsn() > lsn) {
    LatencyHistogram* sync_hist =
        sync_nanos_hist_.load(std::memory_order_acquire);
    if (sync_hist != nullptr) {
      auto nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
      sync_hist->Record(static_cast<uint64_t>(nanos));
    }
    return Status::OK();
  }
  if (crashed()) {
    return Status::Internal("wal crashed (simulated power cut)");
  }
  return Status::Internal("wal stopped before record became durable");
}

Status WalSegmentStore::CheckWritable() const {
  if (!opened_) {
    return open_status_.ok() ? Status::Internal("wal not open") : open_status_;
  }
  if (crashed()) return Status::Internal("wal crashed (simulated power cut)");
  if (out_of_space()) {
    return Status::Busy(
        "wal device out of space; commit fails fast until space recovers");
  }
  return Status::OK();
}

bool WalSegmentStore::CrashAt(const char* point) {
  if (!crash_hook_) return false;
  if (!crash_hook_(point)) return false;
  crashed_.store(true, std::memory_order_release);
  FailAllWaiters();
  return true;
}

void WalSegmentStore::FailAllWaiters() {
  // The crashed_/stopping_ flags these notifies publish are written
  // outside qmu_; passing through the mutex first means any waiter that
  // evaluated its predicate before the flag flipped has reached its wait
  // (released qmu_) by the time we notify, so the wakeup cannot be lost.
  { std::lock_guard<std::mutex> lk(qmu_); }
  queue_cv_.notify_all();
  durable_cv_.notify_all();
}

StorageFaultClass WalSegmentStore::DrawInjectedFault() {
  FaultInjector* fi = injector_.load(std::memory_order_acquire);
  if (fi == nullptr) return StorageFaultClass::kNone;
  return fi->MaybeStorageFaultClass();
}

void WalSegmentStore::FlusherLoop() {
  for (;;) {
    std::vector<QueuedRecord> batch;
    {
      std::unique_lock<std::mutex> lk(qmu_);
      queue_cv_.wait(lk, [&] {
        return stopping_ || crashed() || !queue_.empty();
      });
      if (crashed() || (queue_.empty() && stopping_)) {
        flusher_running_ = false;
        break;
      }
      size_t take = options_.group_commit ? queue_.size() : 1;
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    FlushBatch(&batch);
    durable_cv_.notify_all();
    if (crashed()) {
      std::lock_guard<std::mutex> lk(qmu_);
      flusher_running_ = false;
      break;
    }
  }
  FailAllWaiters();
}

void WalSegmentStore::FlushBatch(std::vector<QueuedRecord>* batch) {
  // Records a published checkpoint already covers need no flush: the image
  // supersedes them (this happens when a checkpoint lands between enqueue
  // and drain). Their waiters were released when coverage advanced.
  Lsn covered = covered_end_lsn();
  while (!batch->empty() && batch->front().lsn < covered) {
    batch->erase(batch->begin());
  }
  if (batch->empty()) return;

  Lsn first_lsn = batch->front().lsn;
  Lsn end_lsn = batch->back().lsn + 1;
  std::string bytes;
  Csn batch_min = 0, batch_max = 0;
  for (const QueuedRecord& r : *batch) {
    bytes += r.bytes;
    if (r.commit_csn != kNullCsn) {
      if (batch_min == 0 || r.commit_csn < batch_min) batch_min = r.commit_csn;
      if (r.commit_csn > batch_max) batch_max = r.commit_csn;
    }
  }

  for (;;) {
    if (crashed()) return;
    {
      std::lock_guard<std::mutex> lk(qmu_);
      if (stopping_ && out_of_space()) return;  // give up the retry loop
    }
    if (active_fd_ < 0) {
      Status s = EnsureActiveSegment(first_lsn);
      if (!s.ok()) {
        if (crashed()) return;
        std::this_thread::sleep_for(options_.enospc_retry);
        continue;
      }
    }

    // Injected storage faults, drawn before the real write so a fixed seed
    // gives a fixed fault schedule regardless of device behavior.
    StorageFaultClass injected = DrawInjectedFault();
    if (injected == StorageFaultClass::kEnospc) {
      faults_enospc_.fetch_add(1, std::memory_order_relaxed);
      out_of_space_.store(true, std::memory_order_release);
      std::this_thread::sleep_for(options_.enospc_retry);
      continue;
    }
    if (injected == StorageFaultClass::kEio) {
      faults_eio_.fetch_add(1, std::memory_order_relaxed);
      PoisonActiveSegment();
      continue;
    }
    if (injected == StorageFaultClass::kShortWrite) {
      // A short write leaves real torn bytes behind before the rotation --
      // the on-disk shape recovery must tolerate in a poisoned segment.
      faults_short_write_.fetch_add(1, std::memory_order_relaxed);
      size_t cut = TornCut(first_lsn, bytes.size());
      (void)WriteFully(active_fd_, bytes.data(), cut);
      PoisonActiveSegment();
      continue;
    }

    if (crash_hook_) {
      // A crash mid-append persists a deterministic partial prefix of the
      // batch: the classic torn tail.
      std::lock_guard<std::mutex> lk(smu_);
      if (active_fd_ >= 0 && crash_hook_("segment.append")) {
        size_t cut = TornCut(first_lsn, bytes.size());
        (void)WriteFully(active_fd_, bytes.data(), cut);
        crashed_.store(true, std::memory_order_release);
        FailAllWaiters();
        return;
      }
    }
    if (fail_hook_ && fail_hook_("segment.append")) {
      // Transient injected EIO: same path as a real failed write.
      faults_eio_.fetch_add(1, std::memory_order_relaxed);
      PoisonActiveSegment();
      continue;
    }

    IoClass wrote = WriteFully(active_fd_, bytes.data(), bytes.size());
    if (wrote == IoClass::kEnospc) {
      faults_enospc_.fetch_add(1, std::memory_order_relaxed);
      out_of_space_.store(true, std::memory_order_release);
      // The partial write (if any) poisons the segment: we will not append
      // more bytes after an incomplete batch.
      PoisonActiveSegment();
      std::this_thread::sleep_for(options_.enospc_retry);
      continue;
    }
    if (wrote == IoClass::kFailed) {
      faults_eio_.fetch_add(1, std::memory_order_relaxed);
      PoisonActiveSegment();
      continue;
    }

    if (CrashAt("segment.sync")) return;
    if (::fsync(active_fd_) != 0) {
      // fsyncgate: a failed fsync leaves the page cache in unknown state;
      // never fsync-retry the same file. Poison and rotate.
      if (errno == ENOSPC) {
        faults_enospc_.fetch_add(1, std::memory_order_relaxed);
        out_of_space_.store(true, std::memory_order_release);
      } else {
        faults_eio_.fetch_add(1, std::memory_order_relaxed);
      }
      PoisonActiveSegment();
      std::this_thread::sleep_for(options_.enospc_retry);
      continue;
    }

    // Batch is durable: publish, account, maybe rotate.
    out_of_space_.store(false, std::memory_order_release);
    bool rotate = false;
    {
      std::lock_guard<std::mutex> lk(smu_);
      SegmentMeta& meta = segments_.back();
      meta.bytes += bytes.size();
      meta.end_lsn = end_lsn;
      if (batch_min != 0) {
        if (active_min_csn_ == 0 || batch_min < active_min_csn_) {
          active_min_csn_ = batch_min;
        }
        if (batch_max > active_max_csn_) active_max_csn_ = batch_max;
      }
      rotate = meta.bytes >= options_.segment_bytes;
    }
    // Account (including the registry-owned histogram) BEFORE the durable
    // floor advances: once a committer's SyncTo returns, the flusher must
    // be provably done touching external metric objects for that batch, or
    // a caller that tears its registry down after joining its committers
    // races a use-after-free here.
    batches_.fetch_add(1, std::memory_order_relaxed);
    records_flushed_.fetch_add(batch->size(), std::memory_order_relaxed);
    bytes_appended_.fetch_add(bytes.size(), std::memory_order_relaxed);
    syncs_.fetch_add(1, std::memory_order_relaxed);
    LatencyHistogram* batch_hist =
        batch_size_hist_.load(std::memory_order_acquire);
    if (batch_hist != nullptr) {
      batch_hist->Record(batch->size());
    }
    if (batch_max != 0) {
      // Durable-frontier freshness stamp: every commit <= batch_max is now
      // fsynced. Same pre-floor window as the histogram, same lifetime
      // argument.
      obs::FreshnessTracker* ft = freshness_.load(std::memory_order_acquire);
      if (ft != nullptr) ft->OnDurable(batch_max);
    }
    obs::TraceJournal* journal = trace_journal_.load(std::memory_order_acquire);
    if (journal != nullptr) {
      // One kWalFlush root trace per batch: the csn_min/csn_max attrs are
      // the causal link from this flusher fsync to the propagation-step
      // traces whose [t_a, t_b] strips consume those commits.
      obs::StepTracer tracer;
      tracer.set_journal(journal);
      tracer.BeginStep(obs::SpanKind::kWalFlush, 0, "wal", ++flush_seq_);
      tracer.AttrCurrent("records", static_cast<int64_t>(batch->size()));
      tracer.AttrCurrent("bytes", static_cast<int64_t>(bytes.size()));
      tracer.AttrCurrent("lsn_first", static_cast<int64_t>(first_lsn));
      tracer.AttrCurrent("lsn_last", static_cast<int64_t>(end_lsn - 1));
      if (batch_min != 0) {
        tracer.AttrCurrent("csn_min", static_cast<int64_t>(batch_min));
        tracer.AttrCurrent("csn_max", static_cast<int64_t>(batch_max));
      }
      tracer.AddStepRows(batch->size());
      tracer.EndStep(obs::StepOutcome::kOk);
    }
    {
      // Advance the durable floor under the queue mutex: a committer that
      // just evaluated the SyncTo predicate still holds qmu_, and a bare
      // atomic store + notify here could land in the window before it
      // sleeps -- a lost wakeup that strands the committer forever once
      // the flusher goes idle.
      std::lock_guard<std::mutex> lk(qmu_);
      durable_end_lsn_.store(end_lsn, std::memory_order_release);
    }
    if (rotate) {
      (void)SealActiveSegment();
    }
    return;
  }
}

Status WalSegmentStore::EnsureActiveSegment(Lsn first_lsn) {
  if (CrashAt("segment.create")) {
    return Status::Internal("wal crashed (simulated power cut)");
  }
  // The prev_poisoned flag is derived from the persistent segment state, not
  // threaded through the caller: a poison can happen outside FlushBatch's
  // retry loop (a failed seal after the batch was acknowledged), and any
  // per-batch flag would reset before the successor is created, leaving the
  // poisoned predecessor's unsealed header unexplained to recovery.
  bool prev_poisoned;
  {
    std::lock_guard<std::mutex> lk(smu_);
    prev_poisoned = !segments_.empty() && segments_.back().poisoned;
  }
  StorageFaultClass injected = DrawInjectedFault();
  if (injected == StorageFaultClass::kEnospc) {
    faults_enospc_.fetch_add(1, std::memory_order_relaxed);
    out_of_space_.store(true, std::memory_order_release);
    return Status::Busy("injected ENOSPC creating segment");
  }
  if (injected != StorageFaultClass::kNone) {
    faults_eio_.fetch_add(1, std::memory_order_relaxed);
    return Status::Busy("injected EIO creating segment");
  }
  std::string path = options_.dir + "/" + SegmentFileName(generation_,
                                                          first_lsn);
  int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    if (errno == ENOSPC) out_of_space_.store(true, std::memory_order_release);
    faults_eio_.fetch_add(1, std::memory_order_relaxed);
    return Status::Busy("segment create failed: " + path);
  }
  SegmentHeader header;
  header.generation = generation_;
  header.first_lsn = first_lsn;
  header.prev_poisoned = prev_poisoned;
  std::string encoded = EncodeSegmentHeader(header);
  IoClass wrote = WriteFully(fd, encoded.data(), encoded.size());
  if (wrote != IoClass::kOk || ::fsync(fd) != 0) {
    if (wrote == IoClass::kEnospc || errno == ENOSPC) {
      out_of_space_.store(true, std::memory_order_release);
      faults_enospc_.fetch_add(1, std::memory_order_relaxed);
    } else {
      faults_eio_.fetch_add(1, std::memory_order_relaxed);
    }
    ::close(fd);
    ::unlink(path.c_str());
    return Status::Busy("segment header write failed: " + path);
  }
  // The directory entry must be durable before any record in this file is
  // acknowledged; one directory sync per segment covers all of them.
  Status dsync = SyncDirectory(options_.dir);
  if (!dsync.ok()) {
    faults_eio_.fetch_add(1, std::memory_order_relaxed);
    ::close(fd);
    return Status::Busy(dsync.message());
  }
  {
    std::lock_guard<std::mutex> lk(smu_);
    SegmentMeta meta;
    meta.path = path;
    meta.header = header;
    meta.bytes = kSegmentHeaderBytes;
    meta.end_lsn = first_lsn;
    meta.active = true;
    segments_.push_back(std::move(meta));
    active_fd_ = fd;
    active_min_csn_ = 0;
    active_max_csn_ = 0;
  }
  segments_created_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status WalSegmentStore::SealActiveSegment() {
  if (CrashAt("rotate.pre_seal")) {
    return Status::Internal("wal crashed (simulated power cut)");
  }
  SegmentHeader sealed;
  int fd = -1;
  {
    std::lock_guard<std::mutex> lk(smu_);
    if (active_fd_ < 0) return Status::OK();
    SegmentMeta& meta = segments_.back();
    sealed = meta.header;
    sealed.sealed = true;
    sealed.last_lsn = meta.end_lsn - 1;
    sealed.min_csn = active_min_csn_;
    sealed.max_csn = active_max_csn_;
    fd = active_fd_;
  }
  std::string encoded = EncodeSegmentHeader(sealed);
  IoClass wrote = IoClass::kFailed;
  if (!fail_hook_ || !fail_hook_("rotate.seal")) {
    wrote = PwriteFully(fd, encoded.data(), encoded.size(), 0);
  }
  if (wrote != IoClass::kOk || ::fsync(fd) != 0) {
    // Every record in the segment is already durable; only the seal marker
    // failed. Poison so the successor carries prev_poisoned and recovery
    // accepts the unsealed header.
    faults_eio_.fetch_add(1, std::memory_order_relaxed);
    PoisonActiveSegment();
    return Status::Busy("segment seal failed");
  }
  if (CrashAt("rotate.post_seal")) {
    return Status::Internal("wal crashed (simulated power cut)");
  }
  {
    std::lock_guard<std::mutex> lk(smu_);
    SegmentMeta& meta = segments_.back();
    meta.header = sealed;
    meta.active = false;
    ::close(active_fd_);
    active_fd_ = -1;
  }
  segments_sealed_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void WalSegmentStore::PoisonActiveSegment() {
  std::lock_guard<std::mutex> lk(smu_);
  if (active_fd_ < 0) return;
  ::close(active_fd_);
  active_fd_ = -1;
  segments_poisoned_.fetch_add(1, std::memory_order_relaxed);
  SegmentMeta& meta = segments_.back();
  if (meta.end_lsn == meta.header.first_lsn) {
    // No record in this segment was ever acknowledged, so the replacement
    // segment reuses the identical file name (same generation, same first
    // LSN) and O_TRUNCs this very file. Keeping the meta would leave two
    // entries sharing one path: segment_count/bytes_by_state inflate
    // forever and, once the live entry is pruned, the stale one points at
    // a deleted file.
    segments_.pop_back();
    return;
  }
  meta.active = false;
  meta.poisoned = true;
  // Rolled-up CSN range so retention still gates on the poisoned file.
  meta.header.min_csn = active_min_csn_;
  meta.header.max_csn = active_max_csn_;
}

Status WalSegmentStore::PublishCheckpoint(Lsn covered_end_lsn, Csn covered_csn,
                                          const std::string& image) {
  if (!opened_) {
    return open_status_.ok() ? Status::Internal("wal not open") : open_status_;
  }
  if (crashed()) return Status::Internal("wal crashed (simulated power cut)");
  if (covered_end_lsn < this->covered_end_lsn()) {
    return Status::InvalidArgument("checkpoint coverage must be monotone");
  }
  StorageFaultClass injected = DrawInjectedFault();
  if (injected != StorageFaultClass::kNone) {
    if (injected == StorageFaultClass::kEnospc) {
      faults_enospc_.fetch_add(1, std::memory_order_relaxed);
    } else {
      faults_eio_.fetch_add(1, std::memory_order_relaxed);
    }
    return Status::Busy("injected storage fault on checkpoint publish");
  }
  if (CrashAt("checkpoint.pre_temp")) {
    return Status::Internal("wal crashed (simulated power cut)");
  }
  std::string tmp = options_.dir + "/" + CheckpointFileName(generation_) +
                    ".tmp";
  std::string final_path = options_.dir + "/" + CheckpointFileName(generation_);
  std::string header = EncodeCkptHeader(generation_, covered_end_lsn,
                                        covered_csn, image);
  int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    if (errno == ENOSPC) {
      faults_enospc_.fetch_add(1, std::memory_order_relaxed);
    } else {
      faults_eio_.fetch_add(1, std::memory_order_relaxed);
    }
    return Status::Busy("checkpoint temp create failed: " + tmp);
  }
  IoClass wrote = WriteFully(fd, header.data(), header.size());
  if (wrote == IoClass::kOk) {
    wrote = WriteFully(fd, image.data(), image.size());
  }
  if (wrote != IoClass::kOk || ::fsync(fd) != 0) {
    if (wrote == IoClass::kEnospc || errno == ENOSPC) {
      faults_enospc_.fetch_add(1, std::memory_order_relaxed);
    } else {
      faults_eio_.fetch_add(1, std::memory_order_relaxed);
    }
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::Busy("checkpoint temp write failed: " + tmp);
  }
  ::close(fd);
  if (CrashAt("checkpoint.post_temp_sync")) {
    return Status::Internal("wal crashed (simulated power cut)");
  }
  if (CrashAt("checkpoint.pre_rename")) {
    return Status::Internal("wal crashed (simulated power cut)");
  }
  if (::rename(tmp.c_str(), final_path.c_str()) != 0) {
    faults_eio_.fetch_add(1, std::memory_order_relaxed);
    ::unlink(tmp.c_str());
    return Status::Busy("checkpoint rename failed: " + final_path);
  }
  if (CrashAt("checkpoint.post_rename")) {
    return Status::Internal("wal crashed (simulated power cut)");
  }
  Status dsync = SyncDirectory(options_.dir);
  if (!dsync.ok()) {
    // The rename itself is durable or not; without the directory sync we
    // cannot know. Treat as transient -- the caller may republish.
    faults_eio_.fetch_add(1, std::memory_order_relaxed);
    return Status::Busy(dsync.message());
  }
  if (CrashAt("checkpoint.dir_sync")) {
    return Status::Internal("wal crashed (simulated power cut)");
  }

  covered_end_lsn_.store(covered_end_lsn, std::memory_order_release);
  covered_csn_.store(covered_csn, std::memory_order_release);
  checkpoints_published_.fetch_add(1, std::memory_order_relaxed);
  {
    // Coverage supersedes flushing: queued records below the boundary are
    // dropped and their waiters acknowledged via the durable floor.
    std::lock_guard<std::mutex> lk(qmu_);
    while (!queue_.empty() && queue_.front().lsn < covered_end_lsn) {
      queue_.pop_front();
    }
    if (durable_end_lsn() < covered_end_lsn) {
      durable_end_lsn_.store(covered_end_lsn, std::memory_order_release);
    }
  }
  durable_cv_.notify_all();

  // Older generations are now fully superseded by this checkpoint.
  auto listing = ListWalDir(options_.dir);
  if (listing.ok()) {
    for (const SegFile& s : listing->segs) {
      if (s.generation < generation_) {
        if (CrashAt("prune.pre_unlink")) {
          return Status::Internal("wal crashed (simulated power cut)");
        }
        ::unlink(s.path.c_str());
        segments_deleted_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    for (const CkptFile& c : listing->ckpts) {
      if (c.generation < generation_) ::unlink(c.path.c_str());
    }
  }
  PruneSegments();
  return Status::OK();
}

size_t WalSegmentStore::PruneSegments() {
  std::lock_guard<std::mutex> lk(smu_);
  return PruneSegmentsLocked();
}

size_t WalSegmentStore::PruneSegmentsLocked() {
  Lsn covered = covered_end_lsn();
  Csn csn_gate = std::min(covered_csn(), retention_floor_.load(
                                             std::memory_order_acquire));
  size_t deleted = 0;
  // Only a contiguous prefix may go: segments_ is LSN-ordered, and deleting
  // a later segment while an earlier one is held back (retention floor,
  // uncovered, active) would leave a mid-stream LSN hole -- a commit-less
  // segment has max_csn == 0 and always clears the CSN gate -- that the
  // next recovery scan rightly refuses as a gap.
  while (!segments_.empty()) {
    const SegmentMeta& meta = segments_.front();
    bool coverable = !meta.active && meta.end_lsn <= covered &&
                     meta.end_lsn > meta.header.first_lsn;
    bool below_floor = meta.header.max_csn <= csn_gate;
    if (!coverable || !below_floor) break;
    if (CrashAt("prune.pre_unlink")) return deleted;
    ::unlink(meta.path.c_str());
    segments_.erase(segments_.begin());
    ++deleted;
    segments_deleted_.fetch_add(1, std::memory_order_relaxed);
  }
  return deleted;
}

WalSegmentStore::CountersSnapshot WalSegmentStore::counters() const {
  CountersSnapshot c;
  c.segments_created = segments_created_.load(std::memory_order_relaxed);
  c.segments_sealed = segments_sealed_.load(std::memory_order_relaxed);
  c.segments_deleted = segments_deleted_.load(std::memory_order_relaxed);
  c.segments_poisoned = segments_poisoned_.load(std::memory_order_relaxed);
  c.batches = batches_.load(std::memory_order_relaxed);
  c.records_flushed = records_flushed_.load(std::memory_order_relaxed);
  c.bytes_appended = bytes_appended_.load(std::memory_order_relaxed);
  c.syncs = syncs_.load(std::memory_order_relaxed);
  c.checkpoints_published =
      checkpoints_published_.load(std::memory_order_relaxed);
  c.faults_eio = faults_eio_.load(std::memory_order_relaxed);
  c.faults_short_write = faults_short_write_.load(std::memory_order_relaxed);
  c.faults_enospc = faults_enospc_.load(std::memory_order_relaxed);
  return c;
}

WalSegmentStore::BytesByState WalSegmentStore::bytes_by_state() const {
  std::lock_guard<std::mutex> lk(smu_);
  BytesByState out;
  Lsn covered = covered_end_lsn();
  for (const SegmentMeta& meta : segments_) {
    if (meta.active) {
      out.active += meta.bytes;
    } else if (meta.end_lsn <= covered) {
      // Covered but still on disk: only the retention floor keeps it.
      out.retained += meta.bytes;
    } else {
      out.sealed += meta.bytes;
    }
  }
  return out;
}

size_t WalSegmentStore::segment_count() const {
  std::lock_guard<std::mutex> lk(smu_);
  return segments_.size();
}

}  // namespace rollview
