// Copyright 2026 The rollview Authors.
//
// File-backed segmented WAL: the durable artifact behind storage/wal.h when
// DbOptions::wal_dir is set. The paper's prototype gets crash safety for
// free by keeping propagation state in ordinary DB2 tables; our engine logs
// that state instead, so the log itself must survive the process.
//
// Layout of a WAL directory:
//
//   wal-<generation>-<first_lsn>.seg   segment files (hex-named, LSN-sorted)
//   ckpt-<generation>.ckpt             durable checkpoint of one generation
//   ckpt-<generation>.tmp              in-flight checkpoint (ignored on scan)
//
// Each segment starts with a fixed 64-byte header (magic, flags, generation,
// first LSN; last LSN + CSN range filled in when the segment is sealed at
// rotation) followed by records in the wal_codec framing ([len][crc][body]).
// A checkpoint file carries the coverage boundary (covered_end_lsn,
// covered_csn) plus an encoded WAL image that reproduces the full committed
// state at that boundary; recovery = decode image + replay the retained
// segment suffix (records with lsn >= covered_end_lsn).
//
// Group commit: committers enqueue encoded records (under the Wal mutex, so
// queue order == LSN order == CSN order) and block in SyncTo; a single
// flusher thread drains the queue, appends the batch with one write, issues
// one fsync, publishes durable_end_lsn and wakes the waiters. A commit is
// acknowledged only after its batch's sync.
//
// Storage-fault state machine (fsyncgate semantics): a failed append or
// fsync leaves the kernel page cache in unknown state, so the active segment
// is marked poisoned and closed, a fresh segment is opened with the
// prev_poisoned header flag, and the whole un-acknowledged batch is
// re-appended there -- never retried into the old file. ENOSPC instead
// parks the flusher in a retry loop with out_of_space() raised so OLTP
// commits fail fast with a transient Status until space recovers. Recovery
// tolerates a torn tail in the last segment (or in a poisoned segment whose
// successor carries prev_poisoned, truncated at the successor's first LSN)
// and fails loudly on any other corruption or LSN gap.
//
// Generations: every recovery re-emits the replayed history into a fresh
// in-memory log whose LSNs diverge from the on-disk ones, so a recovered
// engine attaches at generation g+1 and immediately publishes a g+1
// checkpoint (the commit point of recovery); files of older generations are
// deleted only after that publish succeeds, which makes a crash anywhere
// inside recovery idempotent -- the scan simply picks the highest-generation
// valid checkpoint again.

#ifndef ROLLVIEW_STORAGE_WAL_SEGMENT_H_
#define ROLLVIEW_STORAGE_WAL_SEGMENT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injector.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/wal.h"

namespace rollview {

namespace obs {
class FreshnessTracker;
class TraceJournal;
}  // namespace obs

struct DurableWalOptions {
  std::string dir;
  // Rotation threshold: a segment is sealed once its byte size (header +
  // records) reaches this. Small values exercise rotation; production-ish
  // callers want megabytes.
  size_t segment_bytes = 1u << 20;
  // When false the flusher caps every batch at one record -- the
  // "single-sync" arm of EXPERIMENTS.md E16, one fsync per commit.
  bool group_commit = true;
  // Flusher back-off while the device is out of space.
  std::chrono::milliseconds enospc_retry{2};
};

// On-disk header of one segment file (fixed kSegmentHeaderBytes bytes).
struct SegmentHeader {
  uint64_t generation = 0;
  Lsn first_lsn = 0;
  // Valid only when sealed: the last record's LSN and the [min,max] commit
  // CSN range of the segment (0/0 when it holds no commit records).
  Lsn last_lsn = 0;
  Csn min_csn = 0;
  Csn max_csn = 0;
  bool sealed = false;
  // The predecessor segment was poisoned by an append/fsync failure; its
  // tail may be torn and overlaps this segment's re-appended batch.
  bool prev_poisoned = false;
};

inline constexpr size_t kSegmentHeaderBytes = 64;

std::string EncodeSegmentHeader(const SegmentHeader& h);
Result<SegmentHeader> DecodeSegmentHeader(const std::string& data);

std::string SegmentFileName(uint64_t generation, Lsn first_lsn);
std::string CheckpointFileName(uint64_t generation);

// Result of scanning a WAL directory for recovery.
struct WalDirScan {
  // Highest generation seen across checkpoint and segment files; a
  // recovered engine re-attaches at max_generation + 1. 0 when the
  // directory is empty or absent.
  uint64_t max_generation = 0;
  // Coverage boundary of the newest valid checkpoint (zeros when none).
  uint64_t checkpoint_generation = 0;
  Lsn covered_end_lsn = 0;
  Csn covered_csn = 0;
  // The checkpoint's encoded image, decoded.
  std::vector<WalRecord> image;
  // Records from the retained segment suffix with lsn >= covered_end_lsn.
  std::vector<WalRecord> suffix;
  size_t segments_read = 0;
  bool torn_tail = false;        // the last segment ended mid-record
  size_t records_dropped = 0;    // torn/overlapping records discarded
};

// Scans `dir` and reconstructs the replay input: the newest valid
// checkpoint's image plus the same-generation segment suffix. A missing or
// empty directory yields an empty scan (fresh database). Mid-stream
// corruption -- a bad CRC inside a sealed segment, an LSN gap, a damaged
// checkpoint -- fails with Internal; only the last segment (or a poisoned
// one whose successor says so) may be torn.
Result<WalDirScan> ScanWalDir(const std::string& dir);

// The writer side: owns the segment files of one generation, the group
// commit queue and flusher thread, checkpoint publishing and retention.
// Thread safety: Enqueue is called under the owning Wal's mutex (which
// serializes LSN assignment); everything else is internally synchronized.
class WalSegmentStore {
 public:
  WalSegmentStore() = default;
  ~WalSegmentStore();

  WalSegmentStore(const WalSegmentStore&) = delete;
  WalSegmentStore& operator=(const WalSegmentStore&) = delete;

  // Prepares the store (creates `dir` if needed) without starting the
  // flusher. `next_lsn` is the first LSN that will be enqueued. When
  // `require_empty` is set, pre-existing wal files in the directory fail
  // with AlreadyExists -- a fresh Db must not silently shadow a log that
  // needs recovery (recovery paths pass false: older-generation files are
  // legitimately still present).
  Status Open(const DurableWalOptions& options, uint64_t generation,
              Lsn next_lsn, bool require_empty);
  // Starts the flusher thread. Separate from Open so recovery can publish
  // its checkpoint before any concurrent appends flow.
  void Start();
  // Drains the queue, syncs, and joins the flusher. Idempotent.
  void Stop();

  // Queues one encoded record for the flusher. `commit_csn` is kNullCsn for
  // non-commit records; commit CSNs feed the per-segment CSN range used by
  // retention. Caller guarantees ascending, gap-free LSNs.
  void Enqueue(Lsn lsn, Csn commit_csn, std::string bytes);

  // Blocks until every record with lsn' <= lsn is durable (or the store
  // fails hard). The group-commit acknowledgment point.
  Status SyncTo(Lsn lsn);

  // Fail-fast gate for OLTP commits: transient Busy while out of space,
  // Internal after a simulated crash or failed Open.
  Status CheckWritable() const;

  bool out_of_space() const {
    return out_of_space_.load(std::memory_order_acquire);
  }
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }
  Lsn durable_end_lsn() const {
    return durable_end_lsn_.load(std::memory_order_acquire);
  }

  // --- Checkpoint + retention ---

  // Atomically publishes a checkpoint covering [begin, covered_end_lsn):
  // temp write, fsync, rename over ckpt-<generation>.ckpt, fsync directory.
  // Also advances the durable floor (records below coverage need not be
  // flushed), deletes older-generation files, and prunes covered segments.
  Status PublishCheckpoint(Lsn covered_end_lsn, Csn covered_csn,
                           const std::string& image);

  // Deletes sealed segments fully covered by the latest checkpoint AND
  // whose CSN range lies at or below the retention floor. Returns the
  // number of files deleted. Never touches the active segment.
  size_t PruneSegments();

  // Retention floor pushed by RetentionManager::PruneOnce: segments holding
  // commits above it are kept even when checkpoint-covered. Defaults to
  // kMaxCsn (no constraint beyond coverage).
  void SetRetentionFloor(Csn floor) {
    retention_floor_.store(floor, std::memory_order_release);
  }

  Lsn covered_end_lsn() const {
    return covered_end_lsn_.load(std::memory_order_acquire);
  }
  Csn covered_csn() const {
    return covered_csn_.load(std::memory_order_acquire);
  }
  uint64_t generation() const { return generation_; }
  const std::string& dir() const { return options_.dir; }

  // --- Fault injection + crash harness ---

  void SetFaultInjector(FaultInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }
  // Crash hook: called at named points ("segment.create", "segment.append",
  // "segment.sync", "rotate.pre_seal", "rotate.post_seal",
  // "checkpoint.pre_temp", "checkpoint.post_temp_sync",
  // "checkpoint.pre_rename", "checkpoint.post_rename",
  // "checkpoint.dir_sync", "prune.pre_unlink"). Returning true simulates a
  // power cut: the store stops all further I/O (a "segment.append" crash
  // first writes a deterministic partial prefix of the batch -- a real torn
  // tail) and every waiter is released with an error. Install before Start.
  void SetCrashHook(std::function<bool(const char*)> hook) {
    crash_hook_ = std::move(hook);
  }
  // Non-fatal I/O failure hook: called at named points ("segment.append",
  // "rotate.seal"); returning true makes that single I/O attempt report EIO
  // while the store keeps running -- the transient-fault sibling of
  // SetCrashHook, used to drive the poison-and-rotate paths
  // deterministically. Install before Start.
  void SetFailHook(std::function<bool(const char*)> hook) {
    fail_hook_ = std::move(hook);
  }

  // --- Telemetry ---

  struct CountersSnapshot {
    uint64_t segments_created = 0;
    uint64_t segments_sealed = 0;
    uint64_t segments_deleted = 0;
    uint64_t segments_poisoned = 0;
    uint64_t batches = 0;
    uint64_t records_flushed = 0;
    uint64_t bytes_appended = 0;
    uint64_t syncs = 0;
    uint64_t checkpoints_published = 0;
    uint64_t faults_eio = 0;
    uint64_t faults_short_write = 0;
    uint64_t faults_enospc = 0;
  };
  CountersSnapshot counters() const;

  struct BytesByState {
    uint64_t active = 0;    // the unsealed segment being appended
    uint64_t sealed = 0;    // sealed but not yet checkpoint-covered
    uint64_t retained = 0;  // covered, kept only by the retention floor
  };
  BytesByState bytes_by_state() const;
  size_t segment_count() const;

  // Optional histograms (registry-owned; must outlive the store): batch
  // size in records, sync latency in nanos. Atomic because attachment
  // typically happens after Start() -- the flusher may already be reading.
  void AttachHistograms(LatencyHistogram* batch_size,
                        LatencyHistogram* sync_nanos) {
    batch_size_hist_.store(batch_size, std::memory_order_release);
    sync_nanos_hist_.store(sync_nanos, std::memory_order_release);
  }

  // Freshness pipeline (obs/freshness.h): after each fsynced batch the
  // flusher stamps the durable CSN frontier (the batch's max commit CSN)
  // into the tracker. The tracker must outlive the store, or be detached
  // with nullptr first. Atomic: attached after Start().
  void AttachFreshness(obs::FreshnessTracker* tracker) {
    freshness_.store(tracker, std::memory_order_release);
  }

  // Step tracing: each group-commit batch emits one kWalFlush root trace
  // carrying its record count, byte size, LSN range, and commit-CSN range
  // -- the cross-thread causality link from the flusher to the propagation
  // steps whose [t_a, t_b] intervals those CSNs land in. The journal is
  // typically owned by a MaintenanceService that dies before the Db owning
  // this store: detach with nullptr before the journal is destroyed.
  void AttachTraceJournal(obs::TraceJournal* journal) {
    trace_journal_.store(journal, std::memory_order_release);
  }

 private:
  struct QueuedRecord {
    Lsn lsn;
    Csn commit_csn;
    std::string bytes;
  };
  struct SegmentMeta {
    std::string path;
    SegmentHeader header;
    uint64_t bytes = 0;   // current file size
    Lsn end_lsn = 0;      // one past the last appended LSN
    bool active = false;
    bool poisoned = false;
  };

  void FlusherLoop();
  // Appends `batch` durably, rotating/poisoning as needed. On return either
  // everything in the batch is durable or the store has crashed/stopped.
  void FlushBatch(std::vector<QueuedRecord>* batch);
  Status EnsureActiveSegment(Lsn first_lsn);
  Status SealActiveSegment();
  void PoisonActiveSegment();
  bool CrashAt(const char* point);
  void FailAllWaiters();
  StorageFaultClass DrawInjectedFault();
  size_t PruneSegmentsLocked();

  DurableWalOptions options_;
  uint64_t generation_ = 0;
  Status open_status_ = Status::OK();
  bool opened_ = false;

  std::atomic<FaultInjector*> injector_{nullptr};
  std::function<bool(const char*)> crash_hook_;
  std::function<bool(const char*)> fail_hook_;

  // Queue: fed by Enqueue (under the Wal mutex), drained by the flusher.
  mutable std::mutex qmu_;
  std::condition_variable queue_cv_;   // wakes the flusher
  std::condition_variable durable_cv_; // wakes SyncTo waiters
  std::deque<QueuedRecord> queue_;
  bool stopping_ = false;
  std::thread flusher_;
  bool flusher_running_ = false;

  // Segment state: owned by the flusher; smu_ guards the metadata reads
  // from metrics/retention threads.
  mutable std::mutex smu_;
  std::vector<SegmentMeta> segments_;
  int active_fd_ = -1;
  Csn active_min_csn_ = 0;
  Csn active_max_csn_ = 0;

  std::atomic<Lsn> durable_end_lsn_{0};
  std::atomic<Lsn> covered_end_lsn_{0};
  std::atomic<Csn> covered_csn_{0};
  std::atomic<Csn> retention_floor_{kMaxCsn};
  std::atomic<bool> out_of_space_{false};
  std::atomic<bool> crashed_{false};

  // Telemetry (relaxed atomics; scraped by registry callbacks).
  std::atomic<uint64_t> segments_created_{0};
  std::atomic<uint64_t> segments_sealed_{0};
  std::atomic<uint64_t> segments_deleted_{0};
  std::atomic<uint64_t> segments_poisoned_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> records_flushed_{0};
  std::atomic<uint64_t> bytes_appended_{0};
  std::atomic<uint64_t> syncs_{0};
  std::atomic<uint64_t> checkpoints_published_{0};
  std::atomic<uint64_t> faults_eio_{0};
  std::atomic<uint64_t> faults_short_write_{0};
  std::atomic<uint64_t> faults_enospc_{0};
  std::atomic<LatencyHistogram*> batch_size_hist_{nullptr};
  std::atomic<LatencyHistogram*> sync_nanos_hist_{nullptr};
  std::atomic<obs::FreshnessTracker*> freshness_{nullptr};
  std::atomic<obs::TraceJournal*> trace_journal_{nullptr};
  uint64_t flush_seq_ = 0;  // flusher thread only: kWalFlush trace seq
};

}  // namespace rollview

#endif  // ROLLVIEW_STORAGE_WAL_SEGMENT_H_
