#include "storage/wal.h"

#include <cassert>

#include "obs/registry.h"

namespace rollview {

Lsn Wal::Append(WalRecord record) {
  std::lock_guard<std::mutex> lk(mu_);
  record.lsn = next_lsn_;
  records_.push_back(std::move(record));
  return next_lsn_++;
}

Lsn Wal::ReadFrom(Lsn from, size_t max, std::vector<WalRecord>* out) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (from < first_lsn_) from = first_lsn_;
  Lsn cursor = from;
  while (cursor < next_lsn_ && out->size() < max) {
    out->push_back(records_[static_cast<size_t>(cursor - first_lsn_)]);
    ++cursor;
  }
  return cursor;
}

void Wal::Truncate(Lsn up_to) {
  std::lock_guard<std::mutex> lk(mu_);
  while (first_lsn_ < up_to && !records_.empty()) {
    records_.pop_front();
    ++first_lsn_;
  }
}

Lsn Wal::next_lsn() const {
  std::lock_guard<std::mutex> lk(mu_);
  return next_lsn_;
}

size_t Wal::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return records_.size();
}

void Wal::RegisterMetrics(obs::MetricsRegistry* registry,
                          const void* owner) const {
  registry->RegisterGaugeFn(
      "rollview_wal_next_lsn", {},
      [this] { return static_cast<int64_t>(next_lsn()); }, owner);
  registry->RegisterGaugeFn(
      "rollview_wal_records", {},
      [this] { return static_cast<int64_t>(size()); }, owner);
}

}  // namespace rollview
