#include "storage/wal.h"

#include <cassert>

#include "obs/registry.h"
#include "storage/wal_codec.h"
#include "storage/wal_segment.h"

namespace rollview {

Wal::Wal() = default;
Wal::~Wal() = default;

Lsn Wal::Append(WalRecord record) {
  std::lock_guard<std::mutex> lk(mu_);
  record.lsn = next_lsn_;
  if (store_ != nullptr) {
    // Encoded under mu_ so the store's queue order matches LSN order (and
    // thus commit-CSN order for kCommit records).
    std::string bytes;
    EncodeWalRecord(record, &bytes);
    Csn csn = record.kind == WalRecord::Kind::kCommit ? record.commit_csn
                                                      : kNullCsn;
    store_->Enqueue(record.lsn, csn, std::move(bytes));
  }
  records_.push_back(std::move(record));
  return next_lsn_++;
}

Status Wal::OpenDurable(const DurableWalOptions& options, uint64_t generation,
                        bool require_empty) {
  std::lock_guard<std::mutex> lk(mu_);
  if (store_ != nullptr) {
    return Status::AlreadyExists("durable wal backend already attached");
  }
  store_ = std::make_unique<WalSegmentStore>();
  store_->SetFaultInjector(injector_.load(std::memory_order_acquire));
  // On failure the store stays attached in its failed state: commits then
  // fail through CheckWritable instead of silently losing durability.
  return store_->Open(options, generation, next_lsn_, require_empty);
}

Status Wal::SyncTo(Lsn lsn) {
  if (store_ == nullptr) return Status::OK();
  return store_->SyncTo(lsn);
}

Status Wal::CheckWritable() const {
  if (store_ == nullptr) return Status::OK();
  return store_->CheckWritable();
}

Csn Wal::durable_covered_csn() const {
  if (store_ == nullptr) return kMaxCsn;
  return store_->covered_csn();
}

void Wal::SetRetentionFloor(Csn floor) {
  if (store_ != nullptr) store_->SetRetentionFloor(floor);
}

void Wal::SetFaultInjector(FaultInjector* injector) {
  injector_.store(injector, std::memory_order_release);
  if (store_ != nullptr) store_->SetFaultInjector(injector);
}

void Wal::SetFreshnessTracker(obs::FreshnessTracker* tracker) {
  if (store_ != nullptr) store_->AttachFreshness(tracker);
}

Lsn Wal::ReadFrom(Lsn from, size_t max, std::vector<WalRecord>* out) const {
  std::lock_guard<std::mutex> lk(mu_);
  if (from < first_lsn_) from = first_lsn_;
  Lsn cursor = from;
  while (cursor < next_lsn_ && out->size() < max) {
    out->push_back(records_[static_cast<size_t>(cursor - first_lsn_)]);
    ++cursor;
  }
  return cursor;
}

void Wal::Truncate(Lsn up_to) {
  std::lock_guard<std::mutex> lk(mu_);
  while (first_lsn_ < up_to && !records_.empty()) {
    records_.pop_front();
    ++first_lsn_;
  }
}

Lsn Wal::next_lsn() const {
  std::lock_guard<std::mutex> lk(mu_);
  return next_lsn_;
}

size_t Wal::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return records_.size();
}

void Wal::RegisterMetrics(obs::MetricsRegistry* registry,
                          const void* owner) const {
  registry->RegisterGaugeFn(
      "rollview_wal_next_lsn", {},
      [this] { return static_cast<int64_t>(next_lsn()); }, owner);
  registry->RegisterGaugeFn(
      "rollview_wal_records", {},
      [this] { return static_cast<int64_t>(size()); }, owner);
  if (store_ == nullptr) return;
  WalSegmentStore* store = store_.get();
  registry->RegisterGaugeFn(
      "rollview_wal_segments", {},
      [store] { return static_cast<int64_t>(store->segment_count()); }, owner);
  registry->RegisterGaugeFn(
      "rollview_wal_bytes", {{"state", "active"}},
      [store] {
        return static_cast<int64_t>(store->bytes_by_state().active);
      },
      owner);
  registry->RegisterGaugeFn(
      "rollview_wal_bytes", {{"state", "sealed"}},
      [store] {
        return static_cast<int64_t>(store->bytes_by_state().sealed);
      },
      owner);
  registry->RegisterGaugeFn(
      "rollview_wal_bytes", {{"state", "retained"}},
      [store] {
        return static_cast<int64_t>(store->bytes_by_state().retained);
      },
      owner);
  registry->RegisterGaugeFn(
      "rollview_wal_durable_end_lsn", {},
      [store] { return static_cast<int64_t>(store->durable_end_lsn()); },
      owner);
  registry->RegisterGaugeFn(
      "rollview_wal_covered_end_lsn", {},
      [store] { return static_cast<int64_t>(store->covered_end_lsn()); },
      owner);
  registry->RegisterCounterFn(
      "rollview_wal_storage_faults_total", {{"class", "eio"}},
      [store] { return store->counters().faults_eio; },
      owner);
  registry->RegisterCounterFn(
      "rollview_wal_storage_faults_total", {{"class", "short_write"}},
      [store] { return store->counters().faults_short_write; },
      owner);
  registry->RegisterCounterFn(
      "rollview_wal_storage_faults_total", {{"class", "enospc"}},
      [store] { return store->counters().faults_enospc; },
      owner);
  registry->RegisterCounterFn(
      "rollview_wal_group_commit_batches_total", {},
      [store] { return store->counters().batches; },
      owner);
  registry->RegisterCounterFn(
      "rollview_wal_checkpoints_published_total", {},
      [store] { return store->counters().checkpoints_published; },
      owner);
  // Histograms are registry-owned (stable for the registry's lifetime,
  // which the Db metrics contract already requires to outlive the engine).
  // Batch size is recorded in records, not nanos -- the histogram type is
  // a unit-agnostic reservoir.
  store->AttachHistograms(
      registry->GetHistogram("rollview_wal_group_commit_batch_size"),
      registry->GetHistogram("rollview_wal_sync_nanos"));
}

}  // namespace rollview
