#include "storage/db.h"

#include <cassert>
#include <thread>

#include "obs/freshness.h"
#include "ra/build_cache.h"
#include "storage/wal_codec.h"
#include "storage/wal_segment.h"

namespace rollview {

Db::Db(DbOptions options)
    : options_(options),
      lock_manager_(options.lock_options),
      wall_clock_([] { return std::chrono::system_clock::now(); }) {
  if (options_.build_cache_bytes > 0) {
    build_cache_ = std::make_unique<BuildCache>(options_.build_cache_bytes);
  }
  if (!options_.wal_dir.empty()) {
    // Fresh engine, generation 1. An existing log in the directory fails
    // the open (kept attached in its failed state, so commits surface the
    // error); recovery paths attach their own store at a later generation.
    DurableWalOptions wopts;
    wopts.dir = options_.wal_dir;
    wopts.segment_bytes = options_.wal_segment_bytes;
    wopts.group_commit = options_.wal_group_commit;
    if (wal_.OpenDurable(wopts, /*generation=*/1, /*require_empty=*/true)
            .ok()) {
      wal_.store()->Start();
    }
  }
}

Db::~Db() = default;

void Db::SetWallClock(std::function<WallTime()> clock) {
  wall_clock_ = std::move(clock);
}

Result<TableId> Db::CreateTable(const std::string& name, Schema schema,
                                TableOptions options) {
  std::lock_guard<std::mutex> lk(catalog_mu_);
  if (by_name_.count(name) != 0) {
    return Status::AlreadyExists("table '" + name + "' exists");
  }
  for (size_t col : options.indexed_columns) {
    if (col >= schema.num_columns()) {
      return Status::InvalidArgument("indexed column out of range");
    }
  }
  TableId id = next_table_id_++;
  auto e = std::make_unique<TableEntry>();
  e->table = std::make_unique<VersionedTable>(id, name, schema,
                                              options.indexed_columns);
  e->delta = std::make_unique<DeltaTable>("delta_" + name, schema,
                                          /*ts_sorted=*/true);
  e->capture_mode = options.capture_mode;
  tables_.emplace(id, std::move(e));
  by_name_.emplace(name, id);
  // Catalog record for log replay. Appended under catalog_mu_, so creation
  // records appear in the log in TableId order.
  WalRecord rec;
  rec.kind = WalRecord::Kind::kCreateTable;
  rec.table = id;
  rec.create = std::make_shared<CreateTablePayload>(CreateTablePayload{
      name, std::move(schema), options.capture_mode,
      options.indexed_columns});
  Lsn lsn = wal_.Append(std::move(rec));
  if (wal_.durable()) {
    // Force the catalog record to disk now: data records replayed against a
    // table whose creation record only existed in a later unsynced batch
    // would fail recovery loudly but needlessly.
    ROLLVIEW_RETURN_NOT_OK(wal_.SyncTo(lsn));
  }
  return id;
}

Result<TableId> Db::FindTable(const std::string& name) const {
  std::lock_guard<std::mutex> lk(catalog_mu_);
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("table '" + name + "' not found");
  }
  return it->second;
}

Db::TableEntry* Db::entry(TableId id) const {
  std::lock_guard<std::mutex> lk(catalog_mu_);
  auto it = tables_.find(id);
  return it == tables_.end() ? nullptr : it->second.get();
}

VersionedTable* Db::table(TableId id) const {
  TableEntry* e = entry(id);
  return e == nullptr ? nullptr : e->table.get();
}

DeltaTable* Db::delta(TableId id) const {
  TableEntry* e = entry(id);
  return e == nullptr ? nullptr : e->delta.get();
}

CaptureMode Db::capture_mode(TableId id) const {
  TableEntry* e = entry(id);
  return e == nullptr ? CaptureMode::kLog : e->capture_mode;
}

std::vector<TableId> Db::AllTableIds() const {
  std::lock_guard<std::mutex> lk(catalog_mu_);
  std::vector<TableId> out;
  out.reserve(tables_.size());
  for (const auto& [id, e] : tables_) out.push_back(id);
  return out;
}

std::unique_ptr<Txn> Db::Begin(TxnClass cls) {
  return std::make_unique<Txn>(next_txn_id_.fetch_add(1), cls);
}

uint64_t Db::RowLockKey(const TableEntry& e, const Tuple& tuple) const {
  const std::vector<size_t>& idx_cols = e.table->indexed_columns();
  if (!idx_cols.empty()) {
    // Key-level locking on the leading indexed column: transactions touching
    // different keys do not conflict at row granularity.
    return tuple[idx_cols[0]].Hash();
  }
  return HashTuple(tuple);
}

Status Db::AcquireRowLock(Txn* txn, TableId table, const TableEntry& e,
                          const Tuple& tuple) {
  if (options_.lock_escalation_threshold > 0) {
    if (txn->escalated_tables_.count(table) != 0) {
      return Status::OK();  // table-X already covers every row
    }
    size_t& count = txn->row_lock_counts_[table];
    if (count + 1 >= options_.lock_escalation_threshold) {
      ROLLVIEW_RETURN_NOT_OK(lock_manager_.Acquire(
          txn->id(), ResourceId::Table(table), LockMode::kX, txn->cls()));
      txn->escalated_tables_.insert(table);
      return Status::OK();
    }
    ++count;
  }
  return lock_manager_.Acquire(txn->id(),
                               ResourceId::Row(table, RowLockKey(e, tuple)),
                               LockMode::kX, txn->cls());
}

Status Db::CaptureOnWrite(Txn* txn, TableId table, TableEntry* e,
                          const Tuple& tuple, int64_t count) {
  if (e->capture_mode != CaptureMode::kTrigger) return Status::OK();
  // Trigger capture widens the update footprint: the transaction X-locks the
  // delta-table resource and carries the delta row to commit, where it is
  // stamped with the commit CSN.
  ROLLVIEW_RETURN_NOT_OK(lock_manager_.Acquire(
      txn->id(), ResourceId::Named(table), LockMode::kX, txn->cls()));
  txn->pending_delta_appends_.push_back(Txn::PendingDeltaAppend{
      e->delta.get(), DeltaRow(tuple, count, kNullCsn),
      /*stamp_with_commit_csn=*/true});
  return Status::OK();
}

Status Db::Insert(Txn* txn, TableId table, Tuple tuple) {
  if (txn->state() != TxnState::kActive) {
    return Status::InvalidArgument("txn not active");
  }
  TableEntry* e = entry(table);
  if (e == nullptr) return Status::NotFound("no such table");
  ROLLVIEW_RETURN_NOT_OK(e->table->schema().ValidateTuple(tuple));
  ROLLVIEW_RETURN_NOT_OK(lock_manager_.Acquire(
      txn->id(), ResourceId::Table(table), LockMode::kIX, txn->cls()));
  ROLLVIEW_RETURN_NOT_OK(AcquireRowLock(txn, table, *e, tuple));
  ROLLVIEW_RETURN_NOT_OK(CaptureOnWrite(txn, table, e, tuple, +1));

  ROLLVIEW_RETURN_NOT_OK(wal_.MaybeInjectWriteError());
  wal_.Append(WalRecord{WalRecord::Kind::kInsert, 0, txn->id(), table, tuple,
                        kNullCsn});
  size_t slot = e->table->AddPendingInsert(txn->id(), std::move(tuple));
  txn->write_ops_.push_back(Txn::WriteOp{e->table.get(), slot, false});
  return Status::OK();
}

Result<int64_t> Db::DeleteWhere(Txn* txn, TableId table,
                                const TuplePredicate& pred, int64_t limit) {
  if (txn->state() != TxnState::kActive) {
    return Status::InvalidArgument("txn not active");
  }
  TableEntry* e = entry(table);
  if (e == nullptr) return Status::NotFound("no such table");
  ROLLVIEW_RETURN_NOT_OK(lock_manager_.Acquire(
      txn->id(), ResourceId::Table(table), LockMode::kIX, txn->cls()));
  // Injected before any slot is marked so an abort fully undoes the txn.
  ROLLVIEW_RETURN_NOT_OK(wal_.MaybeInjectWriteError());

  std::vector<size_t> slots;
  std::vector<Tuple> tuples;
  int64_t n = e->table->MarkPendingDeletes(txn->id(), pred, limit, &slots,
                                           &tuples);
  for (size_t i = 0; i < slots.size(); ++i) {
    // Row lock after the fact is safe here: IX on the table was held before
    // the scan, and conflicting writers serialize on the row key anyway.
    Status s = AcquireRowLock(txn, table, *e, tuples[i]);
    if (!s.ok()) return s;
    s = CaptureOnWrite(txn, table, e, tuples[i], -1);
    if (!s.ok()) return s;
    wal_.Append(WalRecord{WalRecord::Kind::kDelete, 0, txn->id(), table,
                          tuples[i], kNullCsn});
    txn->write_ops_.push_back(Txn::WriteOp{e->table.get(), slots[i], true});
  }
  return n;
}

Result<int64_t> Db::DeleteTuple(Txn* txn, TableId table, const Tuple& tuple,
                                int64_t limit) {
  return DeleteWhere(
      txn, table, [&tuple](const Tuple& t) { return t == tuple; }, limit);
}

Status Db::Update(Txn* txn, TableId table, const Tuple& old_tuple,
                  Tuple new_tuple) {
  ROLLVIEW_ASSIGN_OR_RETURN(int64_t n, DeleteTuple(txn, table, old_tuple, 1));
  if (n == 0) return Status::NotFound("update target not found");
  return Insert(txn, table, std::move(new_tuple));
}

Result<std::vector<Tuple>> Db::Scan(Txn* txn, TableId table) {
  TableEntry* e = entry(table);
  if (e == nullptr) return Status::NotFound("no such table");
  ROLLVIEW_RETURN_NOT_OK(LockTableShared(txn, table));
  return e->table->CurrentScan(txn->id());
}

Result<std::vector<Tuple>> Db::ScanWhere(Txn* txn, TableId table,
                                         const TuplePredicate& pred) {
  TableEntry* e = entry(table);
  if (e == nullptr) return Status::NotFound("no such table");
  ROLLVIEW_RETURN_NOT_OK(LockTableShared(txn, table));
  return e->table->CurrentScanWhere(txn->id(), pred);
}

Result<std::vector<Tuple>> Db::ReadByKey(Txn* txn, TableId table, size_t col,
                                         const Value& key) {
  TableEntry* e = entry(table);
  if (e == nullptr) return Status::NotFound("no such table");
  const std::vector<size_t>& idx = e->table->indexed_columns();
  if (std::find(idx.begin(), idx.end(), col) == idx.end()) {
    return Status::InvalidArgument("ReadByKey on a non-indexed column");
  }
  ROLLVIEW_RETURN_NOT_OK(lock_manager_.Acquire(
      txn->id(), ResourceId::Table(table), LockMode::kIS, txn->cls()));
  // Row-lock resources hash the leading indexed column; for other indexed
  // columns this still blocks same-key writers of that hash, which is
  // conservative but safe.
  ROLLVIEW_RETURN_NOT_OK(lock_manager_.Acquire(
      txn->id(), ResourceId::Row(table, key.Hash()), LockMode::kS,
      txn->cls()));
  return e->table->CurrentProbe(txn->id(), col, key);
}

Result<std::vector<Tuple>> Db::SnapshotScan(TableId table, Csn csn) const {
  TableEntry* e = entry(table);
  if (e == nullptr) return Status::NotFound("no such table");
  if (csn > stable_csn()) {
    return Status::OutOfRange("snapshot csn beyond stable csn");
  }
  return e->table->SnapshotScan(csn);
}

Status Db::LockTableShared(Txn* txn, TableId table) {
  return lock_manager_.Acquire(txn->id(), ResourceId::Table(table),
                               LockMode::kS, txn->cls());
}

Status Db::LockTableExclusive(Txn* txn, TableId table) {
  return lock_manager_.Acquire(txn->id(), ResourceId::Table(table),
                               LockMode::kX, txn->cls());
}

Status Db::LockDeltaShared(Txn* txn, TableId table) {
  TableEntry* e = entry(table);
  if (e == nullptr) return Status::NotFound("no such table");
  if (e->capture_mode != CaptureMode::kTrigger) return Status::OK();
  return lock_manager_.Acquire(txn->id(), ResourceId::Named(table),
                               LockMode::kS, txn->cls());
}

Status Db::LockNamedShared(Txn* txn, uint64_t resource) {
  return lock_manager_.Acquire(txn->id(), ResourceId::Named(resource),
                               LockMode::kS, txn->cls());
}

Status Db::LockNamedExclusive(Txn* txn, uint64_t resource) {
  return lock_manager_.Acquire(txn->id(), ResourceId::Named(resource),
                               LockMode::kX, txn->cls());
}

void Db::BufferDeltaAppend(Txn* txn, DeltaTable* delta, DeltaRow row,
                           uint32_t wal_view, uint64_t step_seq,
                           uint32_t partition) {
  txn->pending_delta_appends_.push_back(Txn::PendingDeltaAppend{
      delta, std::move(row), false, wal_view, step_seq, partition});
}

Status Db::Commit(Txn* txn) {
  if (txn->state() != TxnState::kActive) {
    return Status::InvalidArgument("txn not active");
  }
  if (FaultInjector* fi = fault_injector()) {
    // Injected before any commit work: the transaction stays active and the
    // caller aborts it, exactly like a real deadlock-victim commit failure.
    ROLLVIEW_RETURN_NOT_OK(wal_.MaybeInjectWriteError());
    ROLLVIEW_RETURN_NOT_OK(fi->MaybeCommitAbort());
  }
  // Fail fast while the log device is unwritable (out of space, failed
  // open): the transaction stays active and the caller aborts/retries,
  // instead of every committer piling up behind a parked flusher.
  ROLLVIEW_RETURN_NOT_OK(wal_.CheckWritable());
  Lsn commit_lsn = 0;
  // A commit the maintenance pipeline must eventually reflect: any write to
  // a log-captured base table (published later by LogCapture::Poll), or a
  // trigger-captured delta append (detected below when it records the UOW).
  // Resolved before commit_mu_: capture_mode takes the catalog lock.
  bool delta_commit = false;
  for (const Txn::WriteOp& op : txn->write_ops_) {
    if (capture_mode(op.table->id()) == CaptureMode::kLog) {
      delta_commit = true;
      break;
    }
  }
  {
    std::lock_guard<std::mutex> lk(commit_mu_);
    Csn csn = next_csn_++;
    txn->commit_csn_ = csn;
    for (const Txn::WriteOp& op : txn->write_ops_) {
      if (op.is_delete) {
        op.table->CommitDelete(op.slot, csn);
      } else {
        op.table->CommitInsert(op.slot, csn);
      }
    }
    WallTime now = wall_clock_();
    bool recorded_uow = false;
    for (Txn::PendingDeltaAppend& p : txn->pending_delta_appends_) {
      if (p.stamp_with_commit_csn) {
        p.row.ts = csn;
        // Trigger capture maintains the UOW table itself (the paper's
        // hypothetical commit trigger, Sec. 5).
        if (!recorded_uow) {
          uow_.Record(txn->id(), csn, now);
          recorded_uow = true;
          delta_commit = true;
        }
      }
      if (p.wal_view != 0) {
        // Durable view delta: the row (with its final timestamp) goes to
        // the log ahead of the commit record, so recovery sees the append
        // iff it also sees the commit that made it visible.
        WalRecord rec;
        rec.kind = WalRecord::Kind::kViewDeltaAppend;
        rec.txn = txn->id();
        rec.view = p.wal_view;
        rec.blob = std::make_shared<std::string>(
            EncodeViewDeltaBlob(p.row, p.step_seq, p.partition));
        wal_.Append(std::move(rec));
      }
      p.delta->Append(std::move(p.row));
    }
    commit_lsn = wal_.Append(WalRecord{WalRecord::Kind::kCommit, 0, txn->id(),
                                       kInvalidTableId, {}, csn, now});
    stable_csn_.store(csn, std::memory_order_release);
  }
  txn->state_ = TxnState::kCommitted;
  lock_manager_.ReleaseAll(txn->id());
  if (delta_commit) {
    if (obs::FreshnessTracker* ft = freshness_tracker()) {
      // Commit ack: the transaction is committed and its locks released.
      // The group-commit fsync below is durability, stamped by the flusher.
      // Only delta-producing (UOW) commits are stamped: they are what the
      // views must reflect. Maintenance's own appends and read-only
      // commits consume CSNs but carry no freshness obligation.
      ft->OnCommit(txn->commit_csn_);
    }
  }
  if (wal_.durable()) {
    // Real group-commit log force, outside commit_mu_ and after lock
    // release: concurrent committers block together on the flusher's next
    // fsync, so their waits overlap exactly as the simulated knob modeled.
    // A sync failure here means the store crashed or stopped -- the commit
    // is applied in memory but not durable, exactly a crash's in-flight
    // tail, and the caller must treat the engine as down.
    ROLLVIEW_RETURN_NOT_OK(wal_.SyncTo(commit_lsn));
  } else if (options_.commit_latency.count() > 0) {
    // Simulated log-force wait for the in-memory path.
    std::this_thread::sleep_for(options_.commit_latency);
  }
  return Status::OK();
}

Status Db::Abort(Txn* txn) {
  if (txn->state() != TxnState::kActive) {
    return Status::InvalidArgument("txn not active");
  }
  // Undo in reverse order; pending delta appends are simply dropped.
  for (auto it = txn->write_ops_.rbegin(); it != txn->write_ops_.rend();
       ++it) {
    if (it->is_delete) {
      it->table->AbortDelete(it->slot);
    } else {
      it->table->AbortInsert(it->slot);
    }
  }
  txn->write_ops_.clear();
  txn->pending_delta_appends_.clear();
  wal_.Append(WalRecord{WalRecord::Kind::kAbort, 0, txn->id(),
                        kInvalidTableId, {}, kNullCsn});
  txn->state_ = TxnState::kAborted;
  lock_manager_.ReleaseAll(txn->id());
  return Status::OK();
}

Result<std::unique_ptr<Db>> Db::Recover(const std::vector<WalRecord>& records,
                                        DbOptions options) {
  // Replay always runs against the in-memory log: the replayed history is
  // re-emitted with fresh LSNs that diverge from the on-disk ones, so a
  // durable backend must be re-attached at a new generation *after* replay
  // (harness/crash_harness.h RecoverFromWalDir does this, then publishes
  // the new generation's checkpoint as the commit point of recovery).
  options.wal_dir.clear();
  auto db = std::make_unique<Db>(options);
  std::unordered_map<TxnId, std::vector<const WalRecord*>> pending;
  Csn max_csn = kNullCsn;
  TxnId max_txn = kInvalidTxnId;

  for (const WalRecord& rec : records) {
    if (rec.txn > max_txn) max_txn = rec.txn;
    switch (rec.kind) {
      case WalRecord::Kind::kCreateTable: {
        if (rec.create == nullptr) {
          return Status::Internal("kCreateTable record without payload");
        }
        TableOptions topts;
        topts.capture_mode = rec.create->capture_mode;
        topts.indexed_columns = rec.create->indexed_columns;
        ROLLVIEW_ASSIGN_OR_RETURN(
            TableId id,
            db->CreateTable(rec.create->name, rec.create->schema, topts));
        if (id != rec.table) {
          // Creation records appear in the log in TableId order (appended
          // under the catalog mutex), so replay must reproduce the ids.
          return Status::Internal("table id mismatch during replay");
        }
        break;  // CreateTable re-emitted its own catalog record
      }
      case WalRecord::Kind::kInsert:
      case WalRecord::Kind::kDelete:
      case WalRecord::Kind::kViewDeltaAppend:
        // View-delta appends gate on the commit record like data ops; the
        // ivm layer (ViewManager::Recover) consumes them -- here they are
        // only re-emitted so the new engine's log stays self-contained.
        pending[rec.txn].push_back(&rec);
        break;
      case WalRecord::Kind::kCreateView:
      case WalRecord::Kind::kViewCursor:
      case WalRecord::Kind::kViewApplied:
      case WalRecord::Kind::kViewCheckpoint:
        // Non-transactional view records: passed through verbatim for
        // ViewManager::Recover and for the next crash.
        db->wal_.Append(rec);
        break;
      case WalRecord::Kind::kAbort:
        pending.erase(rec.txn);
        db->wal_.Append(rec);
        break;
      case WalRecord::Kind::kCommit: {
        auto it = pending.find(rec.txn);
        if (it != pending.end()) {
          bool touched_log_mode = false;
          bool trigger_rows = false;
          for (const WalRecord* op : it->second) {
            if (op->kind == WalRecord::Kind::kViewDeltaAppend) {
              // Committed view-delta rows re-enter the log only; the view
              // layer rebuilds the in-memory delta tables from them.
              db->wal_.Append(*op);
              continue;
            }
            TableEntry* e = db->entry(op->table);
            if (e == nullptr) {
              return Status::Internal("replayed op on unknown table");
            }
            if (op->kind == WalRecord::Kind::kInsert) {
              size_t slot = e->table->AddPendingInsert(rec.txn, op->tuple);
              e->table->CommitInsert(slot, rec.commit_csn);
            } else {
              std::vector<size_t> slots;
              std::vector<Tuple> tuples;
              int64_t n = e->table->MarkPendingDeletes(
                  rec.txn,
                  [op](const Tuple& t) { return t == op->tuple; },
                  /*limit=*/1, &slots, &tuples);
              if (n != 1) {
                return Status::Internal("replayed delete found no target");
              }
              e->table->CommitDelete(slots[0], rec.commit_csn);
            }
            if (e->capture_mode == CaptureMode::kTrigger) {
              e->delta->Append(DeltaRow(
                  op->tuple,
                  op->kind == WalRecord::Kind::kInsert ? +1 : -1,
                  rec.commit_csn));
              trigger_rows = true;
            } else {
              touched_log_mode = true;
            }
            db->wal_.Append(*op);
          }
          // Trigger-only transactions record their UOW entry here, as on
          // the original commit path; mixed and log-mode transactions are
          // recorded by capture when it re-reads the emitted log (Record
          // is idempotent either way).
          if (trigger_rows && !touched_log_mode) {
            db->uow_.Record(rec.txn, rec.commit_csn, rec.commit_time);
          }
          pending.erase(it);
        }
        db->wal_.Append(rec);
        if (rec.commit_csn > max_csn) max_csn = rec.commit_csn;
        break;
      }
    }
  }
  // In-flight tails in `pending` are dropped: they never committed.
  {
    std::lock_guard<std::mutex> lk(db->commit_mu_);
    db->next_csn_ = max_csn + 1;
  }
  db->stable_csn_.store(max_csn, std::memory_order_release);
  db->next_txn_id_.store(max_txn + 1);
  return db;
}

Db::SnapshotHandle& Db::SnapshotHandle::operator=(
    SnapshotHandle&& other) noexcept {
  if (this != &other) {
    Release();
    db_ = other.db_;
    csn_ = other.csn_;
    other.db_ = nullptr;
    other.csn_ = kNullCsn;
  }
  return *this;
}

void Db::SnapshotHandle::Release() {
  if (db_ == nullptr) return;
  std::lock_guard<std::mutex> lk(db_->pins_mu_);
  auto it = db_->pinned_snapshots_.find(csn_);
  if (it != db_->pinned_snapshots_.end()) db_->pinned_snapshots_.erase(it);
  db_ = nullptr;
}

Db::SnapshotHandle Db::PinSnapshot() {
  Csn csn = stable_csn();
  std::lock_guard<std::mutex> lk(pins_mu_);
  pinned_snapshots_.insert(csn);
  return SnapshotHandle(this, csn);
}

Csn Db::OldestPinnedSnapshot() const {
  std::lock_guard<std::mutex> lk(pins_mu_);
  return pinned_snapshots_.empty() ? kMaxCsn : *pinned_snapshots_.begin();
}

void Db::GarbageCollect(Csn horizon) {
  Csn oldest_pin = OldestPinnedSnapshot();
  if (oldest_pin != kMaxCsn && horizon > oldest_pin) {
    // A snapshot at csn s needs every version with end_csn > s; collecting
    // at horizon h drops versions with end_csn <= h, so h must stay <= s.
    horizon = oldest_pin;
  }
  // Invalidate cached builds first: entries with snapshot_csn < horizon are
  // about to become non-rebuildable from the version store, and a post-GC
  // miss at such a snapshot would silently rebuild from collected history.
  if (build_cache_ != nullptr) build_cache_->InvalidateBelow(horizon);
  std::lock_guard<std::mutex> lk(catalog_mu_);
  for (auto& [id, e] : tables_) {
    e->table->GarbageCollect(horizon);
  }
}

}  // namespace rollview
