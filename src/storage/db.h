// Copyright 2026 The rollview Authors.
//
// Db: the embeddable storage engine the view-maintenance algorithms run
// against -- the stand-in for the DB2 engine of the paper's prototype
// (Sec. 5). It coordinates:
//
//   * versioned heap tables (MVCC) with per-table hash indexes
//   * strict 2PL via the LockManager (serializable; commit order == CSN
//     order == serialization order)
//   * a write-ahead log consumed by the log-capture process
//   * per-base-table delta tables and the unit-of-work table
//
// Capture mode per table (paper Sec. 5 discusses both):
//   * kLog (default; the DPropR approach): the WAL is the only delta source.
//     Update transactions never touch the delta table, so propagation reads
//     of Delta^R do not conflict with updaters. Delta rows become visible
//     when LogCapture processes the commit record.
//   * kTrigger: the update transaction itself appends the delta rows at
//     commit, after taking an X lock on the delta-table resource -- the
//     widened "update footprint" the paper warns about. Propagation queries
//     reading Delta^R in this mode take an S lock on the same resource.
//     (Timestamps remain correct because stamping still happens at commit;
//     the paper notes a naive trigger-at-update-time cannot know them.)

#ifndef ROLLVIEW_STORAGE_DB_H_
#define ROLLVIEW_STORAGE_DB_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "capture/delta_table.h"
#include "capture/uow_table.h"
#include "common/csn.h"
#include "common/result.h"
#include "common/status.h"
#include "schema/schema.h"
#include "schema/tuple.h"
#include "storage/ids.h"
#include "storage/lock_manager.h"
#include "storage/txn.h"
#include "storage/versioned_table.h"
#include "storage/wal.h"

namespace rollview {

struct TableOptions {
  CaptureMode capture_mode = CaptureMode::kLog;
  // Columns to maintain hash indexes on (propagation queries probe these).
  std::vector<size_t> indexed_columns;
};

// What a view read does while the scrubber has the view quarantined
// (ivm/scrub.h detected content corruption and repair has not yet
// re-verified it).
enum class QuarantineReadPolicy : uint8_t {
  // Fail with a transient Busy: readers retry and succeed once repair
  // clears the quarantine. The default -- never serve known-bad data.
  kFailFast = 0,
  // Serve the (possibly damaged) contents anyway: availability over
  // integrity, for deployments where a stale-or-damaged answer beats an
  // error.
  kServeStale = 1,
};

struct DbOptions {
  LockManager::Options lock_options;
  // When > 0, a transaction holding this many row locks on one table
  // escalates to a table-level X lock (subsequent row locks on that table
  // become no-ops). Classic contention/overhead trade: fewer lock-manager
  // entries, coarser conflicts. 0 disables escalation.
  size_t lock_escalation_threshold = 0;
  // Byte budget of the snapshot-keyed join BuildCache shared by every
  // JoinExecutor running against this engine (src/ra/build_cache.h).
  // 0 disables the cache entirely (build_cache() returns nullptr).
  size_t build_cache_bytes = 64u << 20;
  // Simulated durability wait per commit (group-commit / fsync stand-in for
  // an in-memory WAL). Charged AFTER the commit critical section, so
  // concurrent committers overlap their waits exactly as group commit
  // overlaps log-force latency. Zero (the default) disables it; benches use
  // it to model log-force-bound propagation (EXPERIMENTS.md E13). Ignored
  // when wal_dir is set: the file-backed WAL's real group-commit sync
  // replaces the simulation.
  std::chrono::microseconds commit_latency{0};
  // When non-empty, the WAL is file-backed: a segmented on-disk log in this
  // directory, written through a group-commit flusher; Commit blocks until
  // its commit record's batch is fsynced (storage/wal_segment.h). The
  // directory must not already hold a log (recover one with
  // harness/crash_harness.h RecoverFromWalDir instead). Empty (the
  // default): the log is in-memory only, as before.
  std::string wal_dir;
  // Segment rotation threshold for the file-backed WAL.
  size_t wal_segment_bytes = 1u << 20;
  // False caps every flusher batch at one record -- one fsync per commit
  // (the "single-sync" baseline of EXPERIMENTS.md E16).
  bool wal_group_commit = true;
  // Read behavior against quarantined views (see enum above).
  QuarantineReadPolicy quarantine_read_policy = QuarantineReadPolicy::kFailFast;
  // Compile per-relation propagation queries into delta programs with
  // materialized half-join views at CreateView (ra/delta_program.h). The
  // interpreted executor remains the fallback for uncompilable terms,
  // compensation queries, and any compiled-path failure; setting this
  // false keeps every query on the interpreted path.
  bool compile_delta_programs = true;
};

using TuplePredicate = std::function<bool(const Tuple&)>;

class BuildCache;
namespace obs {
class FreshnessTracker;
}  // namespace obs

class Db {
 public:
  Db() : Db(DbOptions{}) {}
  explicit Db(DbOptions options);
  ~Db();

  // Rebuilds an engine from a write-ahead log (e.g. one read back with
  // ReadWalFile): replays table creations, then every *committed*
  // transaction with its original CSN. Transactions with no commit record
  // -- a crash's in-flight tail -- are discarded. The replayed history is
  // re-emitted into the new engine's WAL so a fresh LogCapture rebuilds
  // the delta tables and unit-of-work table; trigger-mode delta rows are
  // regenerated directly, as on the original commit path. View deltas and
  // materialized views are derived data and are rebuilt by re-registering
  // the views and propagating.
  static Result<std::unique_ptr<Db>> Recover(
      const std::vector<WalRecord>& records,
      DbOptions options = DbOptions{});

  Db(const Db&) = delete;
  Db& operator=(const Db&) = delete;

  // --- Catalog ---

  Result<TableId> CreateTable(const std::string& name, Schema schema,
                              TableOptions options = TableOptions{});
  Result<TableId> FindTable(const std::string& name) const;
  VersionedTable* table(TableId id) const;
  DeltaTable* delta(TableId id) const;  // Delta^R for base table `id`
  CaptureMode capture_mode(TableId id) const;
  std::vector<TableId> AllTableIds() const;

  // --- Transactions ---

  // `cls` tags the transaction's contention class: every lock acquisition
  // it makes is accounted per class, and maintenance-class transactions are
  // the preferred deadlock victims (the IVM drivers retry them under the
  // supervisor; see lock_manager.h).
  std::unique_ptr<Txn> Begin(TxnClass cls = TxnClass::kOltp);
  // Assigns the commit CSN, stamps versions and buffered delta rows, writes
  // the WAL commit record, publishes the stable CSN, releases locks.
  Status Commit(Txn* txn);
  Status Abort(Txn* txn);

  // --- Data operations (acquire their own IX/X locks) ---

  Status Insert(Txn* txn, TableId table, Tuple tuple);
  // Deletes up to `limit` (-1 = all) visible copies matching `pred`;
  // returns the number deleted.
  Result<int64_t> DeleteWhere(Txn* txn, TableId table,
                              const TuplePredicate& pred, int64_t limit = -1);
  // Convenience: delete copies equal to `tuple`.
  Result<int64_t> DeleteTuple(Txn* txn, TableId table, const Tuple& tuple,
                              int64_t limit = 1);
  // The paper models an update as a deletion plus an insertion (Sec. 2).
  Status Update(Txn* txn, TableId table, const Tuple& old_tuple,
                Tuple new_tuple);

  // --- Reads ---

  // Current-state reads; take an S (scan) or IS+row-compatible (probe) lock.
  Result<std::vector<Tuple>> Scan(Txn* txn, TableId table);
  Result<std::vector<Tuple>> ScanWhere(Txn* txn, TableId table,
                                       const TuplePredicate& pred);
  // Index point read: visible rows whose indexed column `col` equals `key`.
  // Takes IS on the table plus S on the key's row-lock resource, so it runs
  // concurrently with writers of *other* keys (a full Scan's table-S lock
  // would not). `col` must be one of the table's indexed columns; key-level
  // serializability additionally requires `col` to be the leading indexed
  // column (the one row locks hash), which is the common case.
  Result<std::vector<Tuple>> ReadByKey(Txn* txn, TableId table, size_t col,
                                       const Value& key);
  // Lock-free time travel; `csn` must be <= stable_csn().
  Result<std::vector<Tuple>> SnapshotScan(TableId table, Csn csn) const;

  // --- Locking helpers for the IVM layer ---

  // Table-level S lock for the duration of the txn (propagation queries see
  // a stable current state of the base tables they read).
  Status LockTableShared(Txn* txn, TableId table);
  Status LockTableExclusive(Txn* txn, TableId table);
  // Lock on the delta-table resource (trigger mode only; no-op in log mode).
  Status LockDeltaShared(Txn* txn, TableId table);
  // Lock on an arbitrary named resource (e.g. the materialized view).
  Status LockNamedShared(Txn* txn, uint64_t resource);
  Status LockNamedExclusive(Txn* txn, uint64_t resource);

  // Buffers a view-delta append carrying a precomputed timestamp; applied
  // atomically at commit. Used by ivm::Execute. When `wal_view` is nonzero
  // the commit path additionally logs a kViewDeltaAppend record (tagged
  // with the view id and the propagation step sequence number) immediately
  // before the commit record, making the timed view delta recoverable.
  void BufferDeltaAppend(Txn* txn, DeltaTable* delta, DeltaRow row,
                         uint32_t wal_view = 0, uint64_t step_seq = 0,
                         uint32_t partition = 0);

  // --- Infrastructure access ---

  Wal* wal() { return &wal_; }
  LockManager* lock_manager() { return &lock_manager_; }
  UowTable* uow() { return &uow_; }
  const DbOptions& options() const { return options_; }

  // Deterministic fault injection (common/fault_injector.h): injected
  // commit aborts here, injected Busy in the lock manager, injected WAL
  // write errors on the append sites, capture-lag spikes in LogCapture
  // (which reads the injector through fault_injector()). Install before
  // concurrent use; pass nullptr to detach. The injector is not owned.
  void SetFaultInjector(FaultInjector* injector) {
    fault_injector_.store(injector, std::memory_order_release);
    lock_manager_.SetFaultInjector(injector);
    wal_.SetFaultInjector(injector);
  }
  FaultInjector* fault_injector() const {
    return fault_injector_.load(std::memory_order_acquire);
  }

  // Largest CSN all of whose effects are stamped and snapshot-readable.
  Csn stable_csn() const { return stable_csn_.load(std::memory_order_acquire); }

  // Shared snapshot-keyed join build cache; nullptr when disabled
  // (DbOptions::build_cache_bytes == 0). GarbageCollect invalidates entries
  // below its horizon so the cache never serves snapshots the version store
  // can no longer reproduce.
  BuildCache* build_cache() const { return build_cache_.get(); }

  // Wall-clock time the commit path records into the UOW table. Benchmarks
  // leave the default (system_clock::now).
  void SetWallClock(std::function<WallTime()> clock);

  // Freshness pipeline (obs/freshness.h): when attached, Commit stamps the
  // commit-ack time of each CSN and a durable WAL forwards its group-commit
  // fsync frontier. The tracker must outlive the Db (or be detached with
  // nullptr first).
  void SetFreshnessTracker(obs::FreshnessTracker* tracker) {
    freshness_.store(tracker, std::memory_order_release);
    wal_.SetFreshnessTracker(tracker);
  }
  obs::FreshnessTracker* freshness_tracker() const {
    return freshness_.load(std::memory_order_acquire);
  }

  // --- Snapshot pinning ---
  //
  // A pinned snapshot guarantees SnapshotScan(table, pin.csn()) keeps
  // working regardless of concurrent GarbageCollect calls: GC horizons are
  // clamped below the oldest pin. RAII -- dropping the handle unpins.
  class SnapshotHandle {
   public:
    SnapshotHandle() = default;
    SnapshotHandle(SnapshotHandle&& other) noexcept { *this = std::move(other); }
    SnapshotHandle& operator=(SnapshotHandle&& other) noexcept;
    ~SnapshotHandle() { Release(); }

    SnapshotHandle(const SnapshotHandle&) = delete;
    SnapshotHandle& operator=(const SnapshotHandle&) = delete;

    Csn csn() const { return csn_; }
    bool valid() const { return db_ != nullptr; }
    void Release();

   private:
    friend class Db;
    SnapshotHandle(Db* db, Csn csn) : db_(db), csn_(csn) {}
    Db* db_ = nullptr;
    Csn csn_ = kNullCsn;
  };

  // Pins the current stable CSN.
  SnapshotHandle PinSnapshot();
  // Oldest pinned snapshot CSN; kMaxCsn when nothing is pinned.
  Csn OldestPinnedSnapshot() const;

  // Drops table versions no snapshot reader at or after `horizon` needs.
  // The horizon is clamped below the oldest pinned snapshot.
  void GarbageCollect(Csn horizon);

 private:
  struct TableEntry {
    std::unique_ptr<VersionedTable> table;
    std::unique_ptr<DeltaTable> delta;
    CaptureMode capture_mode = CaptureMode::kLog;
  };

  TableEntry* entry(TableId id) const;
  // Row-lock key for a tuple: hash of the first indexed column if any
  // (key-level locking), else the whole tuple.
  uint64_t RowLockKey(const TableEntry& e, const Tuple& tuple) const;
  Status AcquireRowLock(Txn* txn, TableId table, const TableEntry& e,
                        const Tuple& tuple);
  // In trigger mode, buffers the delta row and locks the delta resource.
  Status CaptureOnWrite(Txn* txn, TableId table, TableEntry* e,
                        const Tuple& tuple, int64_t count);

  DbOptions options_;
  LockManager lock_manager_;
  Wal wal_;
  UowTable uow_;
  std::unique_ptr<BuildCache> build_cache_;
  std::atomic<FaultInjector*> fault_injector_{nullptr};
  std::atomic<obs::FreshnessTracker*> freshness_{nullptr};

  mutable std::mutex catalog_mu_;
  std::unordered_map<std::string, TableId> by_name_;
  std::unordered_map<TableId, std::unique_ptr<TableEntry>> tables_;
  TableId next_table_id_ = 1;

  std::atomic<TxnId> next_txn_id_{1};
  std::mutex commit_mu_;
  Csn next_csn_ = 1;  // guarded by commit_mu_
  std::atomic<Csn> stable_csn_{0};

  std::function<WallTime()> wall_clock_;

  mutable std::mutex pins_mu_;
  std::multiset<Csn> pinned_snapshots_;
};

}  // namespace rollview

#endif  // ROLLVIEW_STORAGE_DB_H_
