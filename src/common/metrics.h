// Copyright 2026 The rollview Authors.
//
// Lightweight thread-safe metrics: counters and latency histograms. The
// benchmark harness aggregates these across updater/propagate/apply/reader
// threads to report the contention measurements of experiments E2-E7.

#ifndef ROLLVIEW_COMMON_METRICS_H_
#define ROLLVIEW_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace rollview {

class Counter {
 public:
  void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

// A last-written-wins level metric: current staleness, the adaptive
// controller's rows-per-query target, backlog depth. Unlike Counter it can
// go down.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  // Atomic delta, so concurrent adjusters (pin counts, backlog) need no
  // read-modify-Set round trip.
  void Add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// Recorded in nanoseconds; reports percentiles. Mutex-guarded: recording
// happens per transaction, orders of magnitude less often than lock/unlock.
//
// count/sum/max are exact. Percentiles come from a bounded reservoir
// (Vitter's algorithm R, deterministic xorshift stream), so memory stays
// O(kReservoirCapacity) no matter how long a maintenance process runs.
class LatencyHistogram {
 public:
  static constexpr size_t kReservoirCapacity = 4096;

  void Record(uint64_t nanos) {
    std::lock_guard<std::mutex> g(mu_);
    ++count_;
    sum_ += nanos;
    if (nanos > max_) max_ = nanos;
    if (samples_.size() < kReservoirCapacity) {
      samples_.push_back(nanos);
    } else {
      uint64_t j = NextRandom() % count_;
      if (j < kReservoirCapacity) samples_[static_cast<size_t>(j)] = nanos;
    }
  }

  uint64_t count() const {
    std::lock_guard<std::mutex> g(mu_);
    return count_;
  }
  uint64_t sum_nanos() const {
    std::lock_guard<std::mutex> g(mu_);
    return sum_;
  }
  uint64_t max_nanos() const {
    std::lock_guard<std::mutex> g(mu_);
    return max_;
  }
  double mean_nanos() const {
    std::lock_guard<std::mutex> g(mu_);
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }
  // Number of retained samples (<= kReservoirCapacity); for tests.
  size_t reservoir_size() const {
    std::lock_guard<std::mutex> g(mu_);
    return samples_.size();
  }
  // q in [0, 1]; e.g. 0.99 for p99. Sorts a copy of the reservoir; call at
  // report time only. Approximate once count() exceeds the capacity.
  uint64_t Percentile(double q) const;

  // Folds `other` into this histogram: count/sum/max combine exactly and
  // the other reservoir's samples replay through this reservoir's
  // replacement stream (so the merge stays bounded and deterministic).
  // Lets per-thread histograms aggregate at report time instead of sharing
  // one mutex across updater/propagate/apply threads. Self-merge is a
  // no-op. Approximate in the same sense as Record once over capacity:
  // when other.count() exceeds its retained samples, the unretained
  // remainder contributes to count/sum/max but not to percentiles.
  void MergeFrom(const LatencyHistogram& other);

  void Reset() {
    std::lock_guard<std::mutex> g(mu_);
    samples_.clear();
    count_ = 0;
    sum_ = 0;
    max_ = 0;
    // Restore the seed so a reset histogram replays the identical
    // replacement stream as a freshly constructed one (reservoir
    // determinism across Reset()).
    rand_state_ = kRandSeed;
  }

 private:
  static constexpr uint64_t kRandSeed = 0x9E3779B97F4A7C15ULL;

  // xorshift64*: cheap, deterministic, and private to this histogram so
  // reservoir replacement never perturbs workload RNG streams.
  uint64_t NextRandom() {
    uint64_t x = rand_state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    rand_state_ = x;
    return x * 0x2545F4914F6CDD1DULL;
  }

  mutable std::mutex mu_;
  std::vector<uint64_t> samples_;
  uint64_t rand_state_ = kRandSeed;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

// RAII stopwatch recording into a LatencyHistogram on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram* hist)
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    if (hist_ == nullptr) return;
    auto end = std::chrono::steady_clock::now();
    hist_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
            .count()));
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  LatencyHistogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace rollview

#endif  // ROLLVIEW_COMMON_METRICS_H_
