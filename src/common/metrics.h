// Copyright 2026 The rollview Authors.
//
// Lightweight thread-safe metrics: counters and latency histograms. The
// benchmark harness aggregates these across updater/propagate/apply/reader
// threads to report the contention measurements of experiments E2-E7.

#ifndef ROLLVIEW_COMMON_METRICS_H_
#define ROLLVIEW_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace rollview {

class Counter {
 public:
  void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

// Recorded in nanoseconds; reports percentiles. Mutex-guarded: recording
// happens per transaction, orders of magnitude less often than lock/unlock.
class LatencyHistogram {
 public:
  void Record(uint64_t nanos) {
    std::lock_guard<std::mutex> g(mu_);
    samples_.push_back(nanos);
    sum_ += nanos;
    if (nanos > max_) max_ = nanos;
  }

  uint64_t count() const {
    std::lock_guard<std::mutex> g(mu_);
    return samples_.size();
  }
  uint64_t sum_nanos() const {
    std::lock_guard<std::mutex> g(mu_);
    return sum_;
  }
  uint64_t max_nanos() const {
    std::lock_guard<std::mutex> g(mu_);
    return max_;
  }
  double mean_nanos() const {
    std::lock_guard<std::mutex> g(mu_);
    return samples_.empty() ? 0.0 : static_cast<double>(sum_) / samples_.size();
  }
  // q in [0, 1]; e.g. 0.99 for p99. Sorts a copy; call at report time only.
  uint64_t Percentile(double q) const;

  void Reset() {
    std::lock_guard<std::mutex> g(mu_);
    samples_.clear();
    sum_ = 0;
    max_ = 0;
  }

 private:
  mutable std::mutex mu_;
  std::vector<uint64_t> samples_;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

// RAII stopwatch recording into a LatencyHistogram on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram* hist)
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    if (hist_ == nullptr) return;
    auto end = std::chrono::steady_clock::now();
    hist_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
            .count()));
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  LatencyHistogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace rollview

#endif  // ROLLVIEW_COMMON_METRICS_H_
