// Copyright 2026 The rollview Authors.
//
// Result<T>: a value-or-Status holder, in the style of arrow::Result.

#ifndef ROLLVIEW_COMMON_RESULT_H_
#define ROLLVIEW_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace rollview {

template <typename T>
class Result {
 public:
  // Implicit conversions from both T and Status keep call sites terse:
  //   Result<int> F() { if (bad) return Status::InvalidArgument("..."); return 42; }
  Result(T value) : value_(std::move(value)) {}            // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {     // NOLINT(runtime/explicit)
    assert(!status_.ok() && "Result constructed from OK status without a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;           // OK iff value_ holds a value
  std::optional<T> value_;
};

// Assigns the value of a Result expression to `lhs`, or returns its status.
#define ROLLVIEW_CONCAT_IMPL(a, b) a##b
#define ROLLVIEW_CONCAT(a, b) ROLLVIEW_CONCAT_IMPL(a, b)
#define ROLLVIEW_ASSIGN_OR_RETURN(lhs, expr)                          \
  ROLLVIEW_ASSIGN_OR_RETURN_IMPL(ROLLVIEW_CONCAT(result__, __LINE__), \
                                 lhs, expr)
#define ROLLVIEW_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) {                                     \
    return tmp.status();                               \
  }                                                    \
  lhs = std::move(tmp).value();

}  // namespace rollview

#endif  // ROLLVIEW_COMMON_RESULT_H_
