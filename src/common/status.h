// Copyright 2026 The rollview Authors.
//
// Status: lightweight error type returned by fallible operations, in the
// style of RocksDB/Arrow. Functions that cannot fail return void or a value;
// everything else returns Status or Result<T> (see result.h).

#ifndef ROLLVIEW_COMMON_STATUS_H_
#define ROLLVIEW_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace rollview {

class Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound = 1,
    kInvalidArgument = 2,
    kAlreadyExists = 3,
    kTxnAborted = 4,     // transaction was aborted (deadlock victim, explicit)
    kBusy = 5,           // lock timeout / would-block
    kNotSupported = 6,
    kInternal = 7,
    kOutOfRange = 8,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status TxnAborted(std::string msg) {
    return Status(Code::kTxnAborted, std::move(msg));
  }
  static Status Busy(std::string msg) {
    return Status(Code::kBusy, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }

  // Transient/permanent taxonomy. Transient errors are expected under
  // contention (deadlock-victim aborts, lock/wait timeouts) and callers may
  // retry the same operation; everything else indicates a bug, a bad
  // argument, or an unrecoverable condition and must be surfaced. The
  // supervised maintenance drivers key their restart policy off this bit.
  bool IsTransient() const {
    return code_ == Code::kTxnAborted || code_ == Code::kBusy;
  }

  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsTxnAborted() const { return code_ == Code::kTxnAborted; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsInternal() const { return code_ == Code::kInternal; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  // Human-readable "<CODE>: <message>" string.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

// Propagates a non-OK status to the caller. Standard macro idiom; the
// double-underscore local avoids shadowing warnings in nested use.
#define ROLLVIEW_RETURN_NOT_OK(expr)              \
  do {                                            \
    ::rollview::Status status__ = (expr);         \
    if (!status__.ok()) return status__;          \
  } while (false)

}  // namespace rollview

#endif  // ROLLVIEW_COMMON_STATUS_H_
