// Copyright 2026 The rollview Authors.
//
// WorkerPool: a fixed set of threads executing submitted closures, shared by
// the partitioned propagation drivers (ivm/parallel_rolling.h). One pool
// serves many views: partition strips are short, CPU-bound rounds, so a
// machine-sized pool bounds maintenance parallelism globally instead of
// per-view (P views x P partitions must not oversubscribe the host).
//
// The only synchronization primitive offered beyond Submit is RunAll, a
// barrier: it runs every task (the calling thread steals work too, so a
// RunAll of N tasks on a pool of any size -- even zero threads -- always
// completes) and returns when all have finished. Tasks must not throw.

#ifndef ROLLVIEW_COMMON_WORKER_POOL_H_
#define ROLLVIEW_COMMON_WORKER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rollview {

class WorkerPool {
 public:
  // `threads` may be 0: RunAll then executes everything on the caller.
  explicit WorkerPool(size_t threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Enqueues one task for asynchronous execution (fire-and-forget).
  void Submit(std::function<void()> fn);

  // Executes every task and blocks until all complete. The caller
  // participates: it drains the batch alongside the workers, so progress
  // never depends on pool capacity and nested RunAll from a worker thread
  // cannot deadlock (the nested caller runs its own batch inline).
  void RunAll(std::vector<std::function<void()>> tasks);

  size_t threads() const { return threads_.size(); }

 private:
  struct Batch {
    std::vector<std::function<void()>>* tasks = nullptr;
    size_t next = 0;     // index of the next unclaimed task
    size_t done = 0;     // tasks finished
    std::condition_variable done_cv;
  };

  void WorkerMain();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;  // Submit()-ed tasks
  std::vector<Batch*> batches_;              // active RunAll barriers
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace rollview

#endif  // ROLLVIEW_COMMON_WORKER_POOL_H_
