#include "common/worker_pool.h"

namespace rollview {

WorkerPool::WorkerPool(size_t threads) {
  threads_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { WorkerMain(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(fn));
  }
  work_cv_.notify_one();
}

void WorkerPool::RunAll(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  Batch batch;
  batch.tasks = &tasks;
  {
    std::lock_guard<std::mutex> lk(mu_);
    batches_.push_back(&batch);
  }
  work_cv_.notify_all();

  // The caller drains its own batch alongside the workers, then waits for
  // stragglers a worker may still be executing.
  std::unique_lock<std::mutex> lk(mu_);
  while (batch.next < tasks.size()) {
    size_t idx = batch.next++;
    lk.unlock();
    (*batch.tasks)[idx]();
    lk.lock();
    batch.done++;
  }
  batch.done_cv.wait(lk, [&] { return batch.done == tasks.size(); });
  for (auto it = batches_.begin(); it != batches_.end(); ++it) {
    if (*it == &batch) {
      batches_.erase(it);
      break;
    }
  }
}

void WorkerPool::WorkerMain() {
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    // Prefer barrier batches (a caller is blocked on them) over
    // fire-and-forget work.
    Batch* batch = nullptr;
    for (Batch* b : batches_) {
      if (b->next < b->tasks->size()) {
        batch = b;
        break;
      }
    }
    if (batch != nullptr) {
      size_t idx = batch->next++;
      lk.unlock();
      (*batch->tasks)[idx]();
      lk.lock();
      if (++batch->done == batch->tasks->size()) batch->done_cv.notify_all();
      continue;
    }
    if (!queue_.empty()) {
      std::function<void()> fn = std::move(queue_.front());
      queue_.pop_front();
      lk.unlock();
      fn();
      lk.lock();
      continue;
    }
    if (stopping_) return;
    work_cv_.wait(lk);
  }
}

}  // namespace rollview
