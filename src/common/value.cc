#include "common/value.h"

#include <cassert>

namespace rollview {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

double Value::NumericValue() const {
  switch (type()) {
    case ValueType::kInt64:
      return static_cast<double>(AsInt64());
    case ValueType::kDouble:
      return AsDouble();
    default:
      return 0.0;
  }
}

namespace {

bool IsNumeric(ValueType t) {
  return t == ValueType::kInt64 || t == ValueType::kDouble;
}

// Rank used to order values of different types: NULL < numerics < strings.
int TypeRank(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInt64:
    case ValueType::kDouble:
      return 1;
    case ValueType::kString:
      return 2;
  }
  return 3;
}

}  // namespace

bool operator==(const Value& a, const Value& b) {
  if (a.type() == b.type()) return a.rep_ == b.rep_;
  if (IsNumeric(a.type()) && IsNumeric(b.type())) {
    return a.NumericValue() == b.NumericValue();
  }
  return false;
}

bool operator<(const Value& a, const Value& b) {
  if (IsNumeric(a.type()) && IsNumeric(b.type())) {
    // Mixed int/double comparisons go through double; exact for the value
    // ranges our workloads use.
    if (a.type() != b.type()) return a.NumericValue() < b.NumericValue();
  }
  int ra = TypeRank(a.type());
  int rb = TypeRank(b.type());
  if (ra != rb) return ra < rb;
  switch (a.type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kInt64:
      return a.AsInt64() < b.AsInt64();
    case ValueType::kDouble:
      return a.AsDouble() < b.AsDouble();
    case ValueType::kString:
      return a.AsString() < b.AsString();
  }
  return false;
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kInt64:
      return std::hash<int64_t>{}(AsInt64());
    case ValueType::kDouble: {
      double d = AsDouble();
      // Hash doubles that are exactly integral like their int64 counterpart
      // so that mixed-type equality implies equal hashes.
      int64_t as_int = static_cast<int64_t>(d);
      if (static_cast<double>(as_int) == d) {
        return std::hash<int64_t>{}(as_int);
      }
      return std::hash<double>{}(d);
    }
    case ValueType::kString:
      return std::hash<std::string>{}(AsString());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble:
      return std::to_string(AsDouble());
    case ValueType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

}  // namespace rollview
