#include "common/fault_injector.h"

namespace rollview {

int& FaultInjector::Scope::depth() {
  static thread_local int depth = 0;
  return depth;
}

bool FaultInjector::Fire(double p, uint64_t Stats::*counter) {
  if (p <= 0.0 || !armed()) return false;
  if (options_.scoped_only && Scope::depth() == 0) return false;
  std::lock_guard<std::mutex> lk(mu_);
  if (!rng_.Bernoulli(p)) return false;
  stats_.*counter += 1;
  return true;
}

bool FaultInjector::FireWithSeed(double p, uint64_t Stats::*counter,
                                 uint64_t* seed) {
  if (p <= 0.0 || !armed()) return false;
  if (options_.scoped_only && Scope::depth() == 0) return false;
  std::lock_guard<std::mutex> lk(mu_);
  if (!rng_.Bernoulli(p)) return false;
  stats_.*counter += 1;
  *seed = rng_.Fork();
  return true;
}

Status FaultInjector::MaybeCommitAbort() {
  if (Fire(options_.commit_abort_probability, &Stats::injected_aborts)) {
    return Status::TxnAborted("injected commit abort");
  }
  return Status::OK();
}

Status FaultInjector::MaybeLockBusy() {
  if (Fire(options_.lock_busy_probability, &Stats::injected_busy)) {
    return Status::Busy("injected lock wait timeout");
  }
  return Status::OK();
}

Status FaultInjector::MaybeWalError() {
  if (Fire(options_.wal_error_probability, &Stats::injected_wal_errors)) {
    return Status::Busy("injected WAL write error");
  }
  return Status::OK();
}

Status FaultInjector::MaybeStorageFault() {
  if (Fire(options_.storage_eio_probability, &Stats::injected_eio)) {
    return Status::Busy("injected EIO on log write");
  }
  if (Fire(options_.storage_short_write_probability,
           &Stats::injected_short_writes)) {
    return Status::Busy("injected short write on log append (torn record "
                        "discarded)");
  }
  if (Fire(options_.storage_enospc_probability, &Stats::injected_enospc)) {
    return Status::Busy("injected ENOSPC on log write");
  }
  return Status::OK();
}

StorageFaultClass FaultInjector::MaybeStorageFaultClass() {
  if (Fire(options_.storage_eio_probability, &Stats::injected_eio)) {
    return StorageFaultClass::kEio;
  }
  if (Fire(options_.storage_short_write_probability,
           &Stats::injected_short_writes)) {
    return StorageFaultClass::kShortWrite;
  }
  if (Fire(options_.storage_enospc_probability, &Stats::injected_enospc)) {
    return StorageFaultClass::kEnospc;
  }
  return StorageFaultClass::kNone;
}

bool FaultInjector::MaybeCorruptMvRow(uint64_t* seed) {
  return FireWithSeed(options_.mv_corrupt_probability,
                      &Stats::injected_mv_corruptions, seed);
}

bool FaultInjector::MaybeTamperDigest(uint64_t* seed) {
  return FireWithSeed(options_.digest_tamper_probability,
                      &Stats::injected_digest_tampers, seed);
}

bool FaultInjector::MaybeCorruptCheckpoint(uint64_t* seed) {
  return FireWithSeed(options_.checkpoint_corrupt_probability,
                      &Stats::injected_checkpoint_corruptions, seed);
}

bool FaultInjector::MaybeCaptureLag() {
  if (!armed()) return false;
  std::lock_guard<std::mutex> lk(mu_);
  if (lag_remaining_ > 0) {
    --lag_remaining_;
    stats_.lag_polls++;
    return true;
  }
  if (options_.capture_lag_probability <= 0.0 ||
      !rng_.Bernoulli(options_.capture_lag_probability)) {
    return false;
  }
  stats_.lag_spikes++;
  stats_.lag_polls++;
  lag_remaining_ = options_.capture_lag_polls > 0
                       ? options_.capture_lag_polls - 1
                       : 0;
  return true;
}

bool FaultInjector::MaybeCrashPoint() {
  if (options_.crash_probability <= 0.0 || !armed()) return false;
  std::lock_guard<std::mutex> lk(mu_);
  if (!rng_.Bernoulli(options_.crash_probability)) return false;
  stats_.crash_points++;
  return true;
}

FaultInjector::Stats FaultInjector::GetStats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace rollview
