// Copyright 2026 The rollview Authors.
//
// Deterministic pseudo-random number generation for workloads and tests.
// Every randomized component takes an explicit seed so that runs reproduce.

#ifndef ROLLVIEW_COMMON_RNG_H_
#define ROLLVIEW_COMMON_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace rollview {

class Rng {
 public:
  explicit Rng(uint64_t seed) : gen_(seed) {}

  // Uniform integer in [lo, hi] (inclusive).
  int64_t Uniform(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(gen_);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(gen_);
  }

  // Returns true with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  // Derive an independent child seed (for spawning per-thread generators).
  uint64_t Fork() { return gen_(); }

  std::mt19937_64& generator() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

// Zipfian distribution over {0, ..., n-1} with parameter theta, using the
// classic precomputed-harmonic inversion. Skewed key choice drives hot-spot
// update streams in the star-schema workloads.
class Zipf {
 public:
  Zipf(int64_t n, double theta) : n_(n), theta_(theta) {
    assert(n >= 1);
    cdf_.reserve(static_cast<size_t>(n));
    double sum = 0.0;
    for (int64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
      cdf_.push_back(sum);
    }
    for (double& c : cdf_) c /= sum;
  }

  int64_t Sample(Rng& rng) const {
    double u = rng.NextDouble();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end()) return n_ - 1;
    return static_cast<int64_t>(it - cdf_.begin());
  }

  double theta() const { return theta_; }

 private:
  int64_t n_;
  double theta_;
  std::vector<double> cdf_;
};

}  // namespace rollview

#endif  // ROLLVIEW_COMMON_RNG_H_
