// Copyright 2026 The rollview Authors.
//
// Commit sequence numbers (CSNs) are the logical "times" of the paper.
//
// The paper's prototype (Sec. 5) uses DPropR commit sequence numbers as times
// internally and carries wall-clock commit timestamps alongside for human
// consumption. We do the same: all algorithm state is in CSNs; the
// unit-of-work table (capture/uow_table.h) maps CSN -> wall-clock time.
//
// CSN 0 is reserved as the "null timestamp": base-table tuples carry an
// implicit null timestamp (paper Sec. 2), and the min-timestamp rule ignores
// nulls (footnote 2: "only timestamps from the delta tables are considered").

#ifndef ROLLVIEW_COMMON_CSN_H_
#define ROLLVIEW_COMMON_CSN_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>

namespace rollview {

using Csn = uint64_t;

// Null timestamp / "not yet committed" sentinel.
inline constexpr Csn kNullCsn = 0;
// +infinity sentinel for version chains ("not yet deleted").
inline constexpr Csn kMaxCsn = std::numeric_limits<Csn>::max();

// Minimum of two timestamps under the paper's rule: null (kNullCsn) is
// ignored; the min of two nulls is null.
inline Csn MinTimestamp(Csn a, Csn b) {
  if (a == kNullCsn) return b;
  if (b == kNullCsn) return a;
  return std::min(a, b);
}

// A half-open-on-the-left interval of commit times, (lo, hi]. This matches
// the paper's sigma_{a,b} operator, which selects tuples with timestamps
// strictly greater than t_a and less than or equal to t_b.
struct CsnRange {
  Csn lo = kNullCsn;  // exclusive
  Csn hi = kNullCsn;  // inclusive

  bool Contains(Csn ts) const { return ts > lo && ts <= hi; }
  bool empty() const { return hi <= lo; }
  uint64_t length() const { return empty() ? 0 : hi - lo; }

  friend bool operator==(const CsnRange& a, const CsnRange& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }

  std::string ToString() const {
    return "(" + std::to_string(lo) + ", " + std::to_string(hi) + "]";
  }
};

}  // namespace rollview

#endif  // ROLLVIEW_COMMON_CSN_H_
