#include "common/metrics.h"

#include <algorithm>
#include <cmath>

namespace rollview {

uint64_t LatencyHistogram::Percentile(double q) const {
  std::lock_guard<std::mutex> g(mu_);
  if (samples_.empty()) return 0;
  std::vector<uint64_t> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  double rank = q * static_cast<double>(sorted.size() - 1);
  size_t idx = static_cast<size_t>(std::llround(rank));
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

}  // namespace rollview
