#include "common/metrics.h"

#include <algorithm>
#include <cmath>

namespace rollview {

uint64_t LatencyHistogram::Percentile(double q) const {
  std::lock_guard<std::mutex> g(mu_);
  if (samples_.empty()) return 0;
  std::vector<uint64_t> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  double rank = q * static_cast<double>(sorted.size() - 1);
  size_t idx = static_cast<size_t>(std::llround(rank));
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

void LatencyHistogram::MergeFrom(const LatencyHistogram& other) {
  if (&other == this) return;
  // Snapshot the source under its own mutex first, then fold under ours:
  // never hold both mutexes, so concurrent A.MergeFrom(B) / B.MergeFrom(A)
  // cannot deadlock.
  uint64_t o_count, o_sum, o_max;
  std::vector<uint64_t> o_samples;
  {
    std::lock_guard<std::mutex> g(other.mu_);
    o_count = other.count_;
    o_sum = other.sum_;
    o_max = other.max_;
    o_samples = other.samples_;
  }
  std::lock_guard<std::mutex> g(mu_);
  // Replay the retained samples through this reservoir's algorithm-R
  // stream; then account for the source's unretained remainder in the
  // exact aggregates only.
  for (uint64_t s : o_samples) {
    ++count_;
    if (samples_.size() < kReservoirCapacity) {
      samples_.push_back(s);
    } else {
      uint64_t j = NextRandom() % count_;
      if (j < kReservoirCapacity) samples_[static_cast<size_t>(j)] = s;
    }
  }
  count_ += o_count - o_samples.size();
  sum_ += o_sum;
  if (o_max > max_) max_ = o_max;
}

}  // namespace rollview
