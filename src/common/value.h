// Copyright 2026 The rollview Authors.
//
// Value: a dynamically-typed scalar cell. Tuples (schema/tuple.h) are vectors
// of Values. Supported types are the minimum a realistic star-schema workload
// needs: 64-bit integers, doubles, and strings, plus SQL-style NULL.

#ifndef ROLLVIEW_COMMON_VALUE_H_
#define ROLLVIEW_COMMON_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <variant>

namespace rollview {

enum class ValueType : uint8_t {
  kNull = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
};

const char* ValueTypeName(ValueType type);

class Value {
 public:
  Value() = default;
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(double v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}
  explicit Value(const char* v) : rep_(std::string(v)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    return static_cast<ValueType>(rep_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }

  // Accessors assert-free by contract: callers check type() first (the
  // schema layer guarantees cells match their column types).
  int64_t AsInt64() const { return std::get<int64_t>(rep_); }
  double AsDouble() const { return std::get<double>(rep_); }
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  // SQL-ish numeric coercion: int64 and double compare/convert numerically.
  double NumericValue() const;

  // Total ordering used for sorting and equality-join keys. NULL sorts first
  // and equals NULL (multiset/grouping semantics, not SQL ternary logic --
  // delta net-effect grouping needs NULL == NULL).
  friend bool operator==(const Value& a, const Value& b);
  friend bool operator<(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator<=(const Value& a, const Value& b) { return !(b < a); }
  friend bool operator>(const Value& a, const Value& b) { return b < a; }
  friend bool operator>=(const Value& a, const Value& b) { return !(a < b); }

  size_t Hash() const;

  std::string ToString() const;

 private:
  struct NullTag {
    friend bool operator==(const NullTag&, const NullTag&) { return true; }
  };
  std::variant<NullTag, int64_t, double, std::string> rep_;
};

struct ValueHasher {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace rollview

#endif  // ROLLVIEW_COMMON_VALUE_H_
