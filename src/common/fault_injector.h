// Copyright 2026 The rollview Authors.
//
// FaultInjector: seeded, deterministic fault injection for the storage and
// capture layers. Tests and benchmarks arm it to prove that the supervised
// maintenance drivers (ivm/maintenance.h) survive the transient failures a
// loaded engine actually produces:
//
//   * injected transaction aborts at commit (deadlock-victim stand-ins),
//   * injected lock-timeout Busy results from LockManager::Acquire,
//   * injected WAL write errors on the append path,
//   * capture-lag spikes (LogCapture::Poll stalls for a run of polls),
//   * storage-fault classes on the WAL append and checkpoint write paths
//     (EIO, short write, ENOSPC) -- all surfaced as transient so the
//     supervised drivers degrade and recover instead of dying,
//   * corruption classes for the online scrubber's drills: MV row bit
//     flips, digest tampering, checkpoint payload flips. The injector only
//     decides *whether* (and with what deterministic seed) to corrupt; the
//     call sites (ivm/apply.cc, ivm/checkpoint.cc) do the flipping, so this
//     layer stays ignorant of view internals.
//
// Faults fire from a single seeded RNG, so a fixed seed gives a fixed fault
// sequence per fault point. By default faults are scoped: they only fire on
// threads that entered a FaultInjector::Scope (the maintenance transaction
// paths -- QueryRunner::ExecuteOnce and Applier::RollTo -- install one), so
// updater transactions in the same process run clean unless scoped_only is
// disabled. Capture-lag spikes are process-wide by nature and ignore scope.

#ifndef ROLLVIEW_COMMON_FAULT_INJECTOR_H_
#define ROLLVIEW_COMMON_FAULT_INJECTOR_H_

#include <atomic>
#include <mutex>

#include "common/rng.h"
#include "common/status.h"

namespace rollview {

// Which storage-fault class an injected I/O failure models. The in-memory
// WAL collapses all of them into one transient Status (MaybeStorageFault);
// the file-backed segment store branches on the class: EIO and short writes
// poison the active segment and rotate (fsyncgate semantics), ENOSPC parks
// the flusher in an out-of-space retry loop.
enum class StorageFaultClass : uint8_t {
  kNone = 0,
  kEio,
  kShortWrite,
  kEnospc,
};

class FaultInjector {
 public:
  struct Options {
    uint64_t seed = 1;
    // Probability that Db::Commit aborts the transaction (TxnAborted).
    double commit_abort_probability = 0.0;
    // Probability that LockManager::Acquire returns Busy immediately.
    double lock_busy_probability = 0.0;
    // Probability that a WAL append site fails (Busy, "injected WAL ...").
    double wal_error_probability = 0.0;
    // Probability (per Poll) that capture enters a lag spike during which
    // the next `capture_lag_polls` Poll calls process nothing.
    double capture_lag_probability = 0.0;
    int capture_lag_polls = 20;
    // Storage-fault classes fired from Wal::MaybeInjectWriteError (the WAL
    // append sites and the checkpoint write path). Each models a distinct
    // I/O failure; all surface as transient Busy so maintenance retries.
    double storage_eio_probability = 0.0;
    double storage_short_write_probability = 0.0;
    double storage_enospc_probability = 0.0;
    // Corruption classes (scrub drills). MV-row and digest corruptions fire
    // from the apply driver after a successful roll; checkpoint corruptions
    // fire from WriteViewCheckpoint on the encoded payload.
    double mv_corrupt_probability = 0.0;
    double digest_tamper_probability = 0.0;
    double checkpoint_corrupt_probability = 0.0;
    // Probability that MaybeCrashPoint() reports "crash here". Nothing is
    // killed by the injector itself: the crash harness polls crash points
    // from its driver loop and performs the actual teardown (snapshot the
    // WAL, drop the process state, recover). Ignores Scope -- a crash takes
    // down updaters and maintenance alike.
    double crash_probability = 0.0;
    // When true (default), commit/lock/WAL faults fire only on threads
    // inside a FaultInjector::Scope. Capture lag always ignores scope.
    bool scoped_only = true;
  };

  struct Stats {
    uint64_t injected_aborts = 0;
    uint64_t injected_busy = 0;
    uint64_t injected_wal_errors = 0;
    uint64_t lag_spikes = 0;
    uint64_t lag_polls = 0;  // Poll calls swallowed by spikes
    uint64_t crash_points = 0;
    uint64_t injected_eio = 0;
    uint64_t injected_short_writes = 0;
    uint64_t injected_enospc = 0;
    uint64_t injected_mv_corruptions = 0;
    uint64_t injected_digest_tampers = 0;
    uint64_t injected_checkpoint_corruptions = 0;
  };

  explicit FaultInjector(Options options)
      : options_(options), rng_(options.seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // RAII thread opt-in for scoped injection (see Options::scoped_only).
  // Nestable; faults fire while depth > 0.
  class Scope {
   public:
    Scope() { ++depth(); }
    ~Scope() { --depth(); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    friend class FaultInjector;
    static int& depth();
  };

  // Arms/disarms the whole injector without touching probabilities, so a
  // test can run an injected-fault burst and then let the system recover.
  void set_armed(bool armed) {
    armed_.store(armed, std::memory_order_relaxed);
  }
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  // Fault points. Each returns OK (or false) when the fault does not fire.
  Status MaybeCommitAbort();
  Status MaybeLockBusy();
  Status MaybeWalError();
  // Storage-fault classes for log/checkpoint writes: EIO, short write,
  // ENOSPC, checked in that order. All transient (Busy) with the class
  // named in the message.
  Status MaybeStorageFault();
  // Class-resolved variant for call sites that react differently per class
  // (the file-backed segment store). Same probabilities, counters and seed
  // stream discipline as MaybeStorageFault; kNone when nothing fires.
  StorageFaultClass MaybeStorageFaultClass();
  // True when this Poll call should stall (process nothing).
  bool MaybeCaptureLag();
  // True when the harness should crash the process image here (see
  // Options::crash_probability; not gated on Scope).
  bool MaybeCrashPoint();

  // Corruption points. On fire, `*seed` receives a deterministic value the
  // call site uses to choose what to flip, so a fixed injector seed yields
  // a fixed corruption.
  bool MaybeCorruptMvRow(uint64_t* seed);
  bool MaybeTamperDigest(uint64_t* seed);
  bool MaybeCorruptCheckpoint(uint64_t* seed);

  Stats GetStats() const;

 private:
  // Scoped gate + seeded Bernoulli draw; counts into `counter` on fire.
  bool Fire(double p, uint64_t Stats::*counter);
  // Fire variant that also draws a deterministic seed for the call site.
  bool FireWithSeed(double p, uint64_t Stats::*counter, uint64_t* seed);

  Options options_;
  std::atomic<bool> armed_{true};
  mutable std::mutex mu_;
  Rng rng_;                // guarded by mu_
  int lag_remaining_ = 0;  // guarded by mu_
  Stats stats_;            // guarded by mu_
};

}  // namespace rollview

#endif  // ROLLVIEW_COMMON_FAULT_INJECTOR_H_
