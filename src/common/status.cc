#include "common/status.h"

namespace rollview {

namespace {

const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kAlreadyExists:
      return "AlreadyExists";
    case Status::Code::kTxnAborted:
      return "TxnAborted";
    case Status::Code::kBusy:
      return "Busy";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kInternal:
      return "Internal";
    case Status::Code::kOutOfRange:
      return "OutOfRange";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace rollview
