#include "ra/build_cache.h"

#include <algorithm>
#include <chrono>

#include "obs/registry.h"

namespace rollview {

size_t TupleApproxBytes(const Tuple& t) {
  size_t bytes = sizeof(Tuple) + t.size() * sizeof(Value);
  for (const Value& v : t) {
    if (v.type() == ValueType::kString) bytes += v.AsString().size();
  }
  return bytes;
}

size_t BuildCache::KeyHasher::operator()(const Key& k) const {
  size_t h = std::hash<uint64_t>{}((uint64_t{k.table} << 32) ^ k.snapshot_csn);
  for (size_t c : k.join_cols) {
    h ^= std::hash<size_t>{}(c) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  h ^= std::hash<std::string>{}(k.pred_fingerprint) + (h << 6) + (h >> 2);
  return h;
}

namespace {

size_t EntryApproxBytes(const BuildCache::Entry& e) {
  size_t bytes = sizeof(BuildCache::Entry);
  for (const Tuple& t : e.tuples) bytes += TupleApproxBytes(t);
  for (const auto& [key, slots] : e.index) {
    bytes += sizeof(JoinKey) + key.values.size() * sizeof(Value) +
             slots.size() * sizeof(uint32_t) + 2 * sizeof(void*);
  }
  return bytes;
}

}  // namespace

Result<BuildCache::Lookup> BuildCache::GetOrBuild(const Key& key,
                                                  const Builder& builder) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      stats_.hits++;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return Lookup{it->second.entry, /*hit=*/true};
    }
    stats_.misses++;
  }

  // Build outside the lock: a long build must not block readers of other
  // entries. Two threads missing the same key both build; the second insert
  // finds the winner and drops its own work (benign, counted as one build).
  auto entry = std::make_shared<Entry>();
  auto start = std::chrono::steady_clock::now();
  ROLLVIEW_RETURN_NOT_OK(builder(entry.get()));
  entry->build_nanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  entry->bytes = EntryApproxBytes(*entry);

  std::lock_guard<std::mutex> lk(mu_);
  stats_.builds++;
  stats_.build_nanos += entry->build_nanos;
  if (key.snapshot_csn < invalid_below_) {
    // InvalidateBelow ran while this build was in flight outside the lock:
    // the snapshot is no longer rebuildable, so admitting the entry would
    // let LATER lookups hit a build whose source history GC already
    // collected. This build itself is still correct (it read the version
    // store before the horizon moved -- GC waits out pinned snapshots), so
    // serve it to the caller once, unshared.
    return Lookup{std::move(entry), /*hit=*/false};
  }
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Lost the build race; serve the resident entry.
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return Lookup{it->second.entry, /*hit=*/false};
  }
  Slot slot;
  slot.key = key;
  slot.entry = entry;
  auto [ins, ok] = entries_.emplace(key, std::move(slot));
  (void)ok;
  lru_.push_front(&ins->second);
  ins->second.lru_pos = lru_.begin();
  resident_bytes_ += entry->bytes;
  while (resident_bytes_ > byte_budget_ && entries_.size() > 1) {
    const Slot* victim = lru_.back();
    stats_.evictions++;
    EraseLocked(entries_.find(victim->key));
  }
  return Lookup{std::move(entry), /*hit=*/false};
}

std::shared_ptr<const BuildCache::Entry> BuildCache::Peek(
    const Key& key) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : it->second.entry;
}

bool BuildCache::ShouldBuildForProbe(const Key& key) {
  std::lock_guard<std::mutex> lk(mu_);
  if (entries_.find(key) != entries_.end()) return true;
  // Bound the bookkeeping: losing counts just delays an admission by one
  // request, so wholesale reset is fine.
  if (touches_.size() >= 4096) touches_.clear();
  return ++touches_[key] >= 2;
}

void BuildCache::EraseLocked(
    std::unordered_map<Key, Slot, KeyHasher>::iterator it) {
  resident_bytes_ -= it->second.entry->bytes;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
}

void BuildCache::InvalidateBelow(Csn horizon) {
  std::lock_guard<std::mutex> lk(mu_);
  invalid_below_ = std::max(invalid_below_, horizon);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.snapshot_csn < horizon) {
      stats_.invalidations++;
      auto next = std::next(it);
      EraseLocked(it);
      it = next;
    } else {
      ++it;
    }
  }
}

void BuildCache::InvalidateTable(TableId table) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.table == table) {
      stats_.invalidations++;
      auto next = std::next(it);
      EraseLocked(it);
      it = next;
    } else {
      ++it;
    }
  }
}

void BuildCache::Clear() {
  std::lock_guard<std::mutex> lk(mu_);
  stats_.invalidations += entries_.size();
  entries_.clear();
  lru_.clear();
  touches_.clear();
  resident_bytes_ = 0;
}

size_t BuildCache::resident_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return resident_bytes_;
}

size_t BuildCache::entry_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

BuildCache::Stats BuildCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void BuildCache::RegisterMetrics(obs::MetricsRegistry* registry,
                                 const void* owner) const {
  struct Event {
    const char* name;
    uint64_t Stats::* field;
  };
  const Event events[] = {
      {"hit", &Stats::hits},
      {"miss", &Stats::misses},
      {"build", &Stats::builds},
      {"eviction", &Stats::evictions},
      {"invalidation", &Stats::invalidations},
  };
  for (const Event& e : events) {
    auto field = e.field;
    registry->RegisterCounterFn(
        "rollview_build_cache_events_total", {{"event", e.name}},
        [this, field] { return stats().*field; }, owner);
  }
  registry->RegisterCounterFn(
      "rollview_build_cache_build_nanos_total", {},
      [this] { return stats().build_nanos; }, owner);
  registry->RegisterGaugeFn(
      "rollview_build_cache_resident_bytes", {},
      [this] { return static_cast<int64_t>(resident_bytes()); }, owner);
  registry->RegisterGaugeFn(
      "rollview_build_cache_entries", {},
      [this] { return static_cast<int64_t>(entry_count()); }, owner);
}

}  // namespace rollview
