// Copyright 2026 The rollview Authors.
//
// JoinQuery: the physical form of one propagation query
//   pi(sigma(Q[1] |><| Q[2] |><| ... |><| Q[n]))
// where each term Q[i] is either a base table (seen at the executing
// transaction's time, or at a historical snapshot) or a materialized set of
// delta rows (a sigma_{a,b}(Delta^R) range scan, or any intermediate).
//
// Output rows follow the paper's delta algebra (Sec. 2): count is the
// product of the joined rows' counts (times the query's sign), timestamp is
// the minimum of the joined rows' timestamps, nulls ignored (footnote 2).

#ifndef ROLLVIEW_RA_JOIN_QUERY_H_
#define ROLLVIEW_RA_JOIN_QUERY_H_

#include <cstdint>
#include <vector>

#include "common/csn.h"
#include "ra/expr.h"
#include "schema/tuple.h"
#include "storage/ids.h"

namespace rollview {

struct TermSource {
  enum class Kind {
    kBaseCurrent,   // base table, read inside the executing transaction
    kBaseSnapshot,  // base table, time-travel read at snapshot_csn
    kRows,          // materialized delta rows (caller retains ownership)
  };

  Kind kind = Kind::kBaseCurrent;
  TableId table = kInvalidTableId;  // identifies the relation (all kinds)
  Csn snapshot_csn = kNullCsn;      // kBaseSnapshot only
  const DeltaRows* rows = nullptr;  // kRows only

  static TermSource BaseCurrent(TableId table) {
    return TermSource{Kind::kBaseCurrent, table, kNullCsn, nullptr};
  }
  static TermSource BaseSnapshot(TableId table, Csn csn) {
    return TermSource{Kind::kBaseSnapshot, table, csn, nullptr};
  }
  static TermSource Rows(TableId table, const DeltaRows* rows) {
    return TermSource{Kind::kRows, table, kNullCsn, rows};
  }
};

// Equality predicate term_l.col_l = term_r.col_r (term indexes into
// JoinQuery::terms; column indexes into that term's schema).
struct EquiJoin {
  size_t left_term = 0;
  size_t left_col = 0;
  size_t right_term = 0;
  size_t right_col = 0;
};

struct JoinQuery {
  std::vector<TermSource> terms;
  std::vector<EquiJoin> equi_joins;
  // Optional residual selection over the concatenated tuple (term order).
  ExprPtr residual;
  // Optional projection: indexes into the concatenated tuple. Empty = all.
  std::vector<size_t> projection;
  // Multiplied into every output count (compensation queries pass -1).
  int64_t sign = +1;
};

// Execution statistics, accumulated across queries by the IVM layer to
// report per-experiment work (tuples read, index probes, rows emitted).
struct ExecStats {
  uint64_t input_rows = 0;    // rows fetched from all term sources
  uint64_t index_probes = 0;  // point lookups against table hash indexes
  uint64_t output_rows = 0;   // rows emitted after selection/projection
  uint64_t queries = 0;       // JoinQuery executions
  // Rows eliminated early by single-term conjuncts of the residual
  // selection pushed below the join.
  uint64_t pushdown_filtered = 0;

  void Add(const ExecStats& o) {
    input_rows += o.input_rows;
    index_probes += o.index_probes;
    output_rows += o.output_rows;
    queries += o.queries;
    pushdown_filtered += o.pushdown_filtered;
  }
};

}  // namespace rollview

#endif  // ROLLVIEW_RA_JOIN_QUERY_H_
