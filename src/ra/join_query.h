// Copyright 2026 The rollview Authors.
//
// JoinQuery: the physical form of one propagation query
//   pi(sigma(Q[1] |><| Q[2] |><| ... |><| Q[n]))
// where each term Q[i] is either a base table (seen at the executing
// transaction's time, or at a historical snapshot) or a materialized set of
// delta rows (a sigma_{a,b}(Delta^R) range scan, or any intermediate).
//
// Output rows follow the paper's delta algebra (Sec. 2): count is the
// product of the joined rows' counts (times the query's sign), timestamp is
// the minimum of the joined rows' timestamps, nulls ignored (footnote 2).

#ifndef ROLLVIEW_RA_JOIN_QUERY_H_
#define ROLLVIEW_RA_JOIN_QUERY_H_

#include <cstdint>
#include <vector>

#include "common/csn.h"
#include "ra/expr.h"
#include "schema/tuple.h"
#include "storage/ids.h"

namespace rollview {

struct TermSource {
  enum class Kind {
    kBaseCurrent,   // base table, read inside the executing transaction
    kBaseSnapshot,  // base table, time-travel read at snapshot_csn
    kRows,          // materialized delta rows (caller retains ownership)
  };

  Kind kind = Kind::kBaseCurrent;
  TableId table = kInvalidTableId;  // identifies the relation (all kinds)
  Csn snapshot_csn = kNullCsn;      // kBaseSnapshot only
  // kRows only: exactly one of `rows` (owned elsewhere, copied storage) or
  // `row_refs` (zero-copy borrow, e.g. DeltaTable::ScanRefs under a pin) is
  // set; the caller keeps both the container and -- for row_refs -- the
  // pinned underlying rows alive for the whole execution.
  const DeltaRows* rows = nullptr;
  const DeltaRowRefs* row_refs = nullptr;

  static TermSource BaseCurrent(TableId table) {
    return TermSource{Kind::kBaseCurrent, table, kNullCsn, nullptr, nullptr};
  }
  static TermSource BaseSnapshot(TableId table, Csn csn) {
    return TermSource{Kind::kBaseSnapshot, table, csn, nullptr, nullptr};
  }
  static TermSource Rows(TableId table, const DeltaRows* rows) {
    return TermSource{Kind::kRows, table, kNullCsn, rows, nullptr};
  }
  static TermSource RowRefs(TableId table, const DeltaRowRefs* refs) {
    return TermSource{Kind::kRows, table, kNullCsn, nullptr, refs};
  }
};

// Equality predicate term_l.col_l = term_r.col_r (term indexes into
// JoinQuery::terms; column indexes into that term's schema).
struct EquiJoin {
  size_t left_term = 0;
  size_t left_col = 0;
  size_t right_term = 0;
  size_t right_col = 0;
};

struct JoinQuery {
  std::vector<TermSource> terms;
  std::vector<EquiJoin> equi_joins;
  // Optional residual selection over the concatenated tuple (term order).
  ExprPtr residual;
  // Optional projection: indexes into the concatenated tuple. Empty = all.
  std::vector<size_t> projection;
  // Multiplied into every output count (compensation queries pass -1).
  int64_t sign = +1;
  // Optional optimizer hint: the stable CSN whose snapshot is known to equal
  // the current-visible state of every kBaseCurrent term. Valid only when
  // the executing transaction holds (at least) S locks on those tables and
  // has no pending writes on them -- then strict 2PL guarantees no version
  // can commit or change underneath, so current == SnapshotScan(hint). Set
  // by QueryRunner/SyncRefresher after lock acquisition; lets the executor
  // serve kBaseCurrent terms from the snapshot-keyed BuildCache.
  Csn current_snapshot_hint = kNullCsn;
};

// Execution statistics, accumulated across queries by the IVM layer to
// report per-experiment work (tuples read, index probes, rows emitted).
struct ExecStats {
  uint64_t input_rows = 0;    // rows fetched from all term sources
  uint64_t index_probes = 0;  // point lookups against table hash indexes
  uint64_t output_rows = 0;   // rows emitted after selection/projection
  uint64_t queries = 0;       // JoinQuery executions
  // Rows eliminated early by single-term conjuncts of the residual
  // selection pushed below the join.
  uint64_t pushdown_filtered = 0;
  // Zero-copy accounting: input rows deep-copied into executor-owned
  // storage vs borrowed (referenced in place from caller-owned delta rows
  // or pinned immutable cache entries). Entry *builds* are not counted here
  // -- they are amortized across queries and tracked via build_cache_misses
  // and build_nanos -- so a warm cached query reports rows_copied == 0 on
  // its snapshot-served terms.
  uint64_t rows_copied = 0;
  uint64_t rows_borrowed = 0;
  uint64_t bytes_copied = 0;
  uint64_t bytes_borrowed = 0;
  // BuildCache traffic attributable to these queries.
  uint64_t build_cache_hits = 0;
  uint64_t build_cache_misses = 0;
  uint64_t build_nanos = 0;  // time spent building cache entries (misses)
  // Wall time inside JoinExecutor::Execute (includes build_nanos), so
  // callers can split executor cost from transaction/WAL/capture overhead.
  uint64_t exec_nanos = 0;
  // Compiled delta-program path (ra/delta_program.h). A compiled forward
  // query probes materialized half-join views instead of re-joining terms;
  // these split its work from the interpreted executor's.
  uint64_t compiled_queries = 0;      // ViewPrograms::ExecuteForward calls
  uint64_t compiled_probe_rows = 0;   // delta rows driven through programs
  uint64_t compiled_kernel_evals = 0;  // flat-kernel match combinations
  uint64_t half_join_hits = 0;        // half-join index probes that matched
  uint64_t half_join_misses = 0;      // ... that found no bucket
  uint64_t half_join_advances = 0;    // incremental half-join maintenances
  uint64_t half_join_advance_rows = 0;  // signed rows applied by advances
  uint64_t half_join_rebuilds = 0;    // full snapshot rebuilds

  void Add(const ExecStats& o) {
    input_rows += o.input_rows;
    index_probes += o.index_probes;
    output_rows += o.output_rows;
    queries += o.queries;
    pushdown_filtered += o.pushdown_filtered;
    rows_copied += o.rows_copied;
    rows_borrowed += o.rows_borrowed;
    bytes_copied += o.bytes_copied;
    bytes_borrowed += o.bytes_borrowed;
    build_cache_hits += o.build_cache_hits;
    build_cache_misses += o.build_cache_misses;
    build_nanos += o.build_nanos;
    exec_nanos += o.exec_nanos;
    compiled_queries += o.compiled_queries;
    compiled_probe_rows += o.compiled_probe_rows;
    compiled_kernel_evals += o.compiled_kernel_evals;
    half_join_hits += o.half_join_hits;
    half_join_misses += o.half_join_misses;
    half_join_advances += o.half_join_advances;
    half_join_advance_rows += o.half_join_advance_rows;
    half_join_rebuilds += o.half_join_rebuilds;
  }
};

}  // namespace rollview

#endif  // ROLLVIEW_RA_JOIN_QUERY_H_
