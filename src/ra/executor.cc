#include "ra/executor.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <deque>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/csn.h"
#include "ra/compiled_pred.h"

namespace rollview {

namespace {

constexpr uint32_t kUnbound = std::numeric_limits<uint32_t>::max();

// One input row as seen by the join: a tuple reference (borrowed from the
// caller's DeltaRows or owned by the executor's spill) plus its delta
// count/timestamp (+1 / null for base rows).
struct ArenaRow {
  const Tuple* tuple = nullptr;
  int64_t count = 1;
  Csn ts = kNullCsn;
};

// Per-term input rows. Backed either by a pinned immutable BuildCache entry
// (borrowed wholesale; base rows carry count +1 and a null timestamp) or by
// an explicit ArenaRow vector.
struct TermArena {
  std::shared_ptr<const BuildCache::Entry> entry;
  std::vector<ArenaRow> rows;

  bool from_entry() const { return entry != nullptr; }
  size_t size() const {
    return from_entry() ? entry->tuples.size() : rows.size();
  }
  const Tuple& tuple(uint32_t s) const {
    return from_entry() ? entry->tuples[s] : *rows[s].tuple;
  }
  int64_t count(uint32_t s) const { return from_entry() ? 1 : rows[s].count; }
  Csn ts(uint32_t s) const { return from_entry() ? kNullCsn : rows[s].ts; }
};

// Partially-joined rows, struct-of-arrays: one flat uint32 slab row of
// width n (slot per term, kUnbound if unbound) plus parallel count and
// timestamp columns. Extending a row appends one slab row -- no per-level
// std::vector copy.
class PartialSet {
 public:
  explicit PartialSet(size_t width) : width_(width) {}

  size_t size() const { return counts_.size(); }
  const uint32_t* slots(size_t r) const { return slots_.data() + r * width_; }
  int64_t count(size_t r) const { return counts_[r]; }
  Csn ts(size_t r) const { return tss_[r]; }

  void AppendRoot(size_t term, uint32_t s, int64_t count, Csn ts) {
    size_t base = slots_.size();
    slots_.resize(base + width_, kUnbound);
    slots_[base + term] = s;
    counts_.push_back(count);
    tss_.push_back(ts);
  }

  // Copies src row r, binds `term` to slot `s`, and folds in the joined
  // row's count (product) and timestamp (min rule).
  void AppendExtended(const PartialSet& src, size_t r, size_t term, uint32_t s,
                      int64_t count, Csn ts) {
    const uint32_t* from = src.slots(r);
    size_t base = slots_.size();
    slots_.insert(slots_.end(), from, from + width_);
    slots_[base + term] = s;
    counts_.push_back(src.count(r) * count);
    tss_.push_back(MinTimestamp(src.ts(r), ts));
  }

 private:
  size_t width_;
  std::vector<uint32_t> slots_;
  std::vector<int64_t> counts_;
  std::vector<Csn> tss_;
};

}  // namespace

Result<DeltaRows> JoinExecutor::Execute(const JoinQuery& query, Txn* txn,
                                        ExecStats* stats) {
  const size_t n = query.terms.size();
  if (n == 0) return Status::InvalidArgument("join query has no terms");

  ExecStats local;
  local.queries = 1;
  const auto exec_start = std::chrono::steady_clock::now();

  // Resolve table metadata and lock current-state terms up front so the
  // whole query sees one consistent state (strict 2PL holds the locks to
  // commit).
  std::vector<VersionedTable*> tables(n, nullptr);
  std::vector<size_t> widths(n, 0);
  for (size_t i = 0; i < n; ++i) {
    const TermSource& t = query.terms[i];
    VersionedTable* vt = db_->table(t.table);
    if (vt == nullptr) return Status::NotFound("join term table not found");
    tables[i] = vt;
    widths[i] = vt->schema().num_columns();
    if (t.kind == TermSource::Kind::kBaseCurrent) {
      if (txn == nullptr) {
        return Status::InvalidArgument(
            "current-state term requires a transaction");
      }
      ROLLVIEW_RETURN_NOT_OK(db_->LockTableShared(txn, t.table));
    } else if (t.kind == TermSource::Kind::kBaseSnapshot) {
      if (t.snapshot_csn > db_->stable_csn()) {
        return Status::OutOfRange("snapshot term beyond stable csn");
      }
    } else if (t.rows == nullptr && t.row_refs == nullptr) {
      return Status::InvalidArgument("kRows term with null rows");
    }
  }

  // Selection pushdown: conjuncts of the residual whose column references
  // fall inside a single term's slice run against that term's rows before
  // the join (shifted to the term's local column space); the rest stays as
  // the post-join residual.
  std::vector<size_t> offsets(n, 0);
  for (size_t i = 1; i < n; ++i) offsets[i] = offsets[i - 1] + widths[i - 1];
  std::vector<ExprPtr> term_pred(n);
  ExprPtr residual;
  {
    std::vector<ExprPtr> conjuncts;
    CollectConjuncts(query.residual, &conjuncts);
    for (ExprPtr& c : conjuncts) {
      size_t lo = c->MinColumnIndex();
      size_t hi = c->MaxColumnIndex();
      bool pushed = false;
      if (lo != SIZE_MAX) {
        for (size_t i = 0; i < n; ++i) {
          if (lo >= offsets[i] && hi < offsets[i] + widths[i]) {
            term_pred[i] = AndTogether(std::move(term_pred[i]),
                                       c->ShiftColumns(offsets[i]));
            pushed = true;
            break;
          }
        }
      }
      if (!pushed) residual = AndTogether(std::move(residual), std::move(c));
    }
  }
  // Flatten each term's pushed predicate once; Admits() then runs without
  // touching the Expr tree for the common column-vs-literal conjuncts.
  std::vector<CompiledPred> term_filter(n);
  for (size_t i = 0; i < n; ++i) term_filter[i] = CompilePred(term_pred[i]);

  // Snapshot keys: the CSN at which a base term can be served from the
  // BuildCache (kNullCsn = not snapshot-keyed). Keys are canonicalized to
  // the table's last-change CSN: consecutive propagation queries run at
  // successive commit CSNs, but as long as the base table itself has not
  // changed they all map to one cache entry.
  std::vector<Csn> snap_key(n, kNullCsn);
  for (size_t i = 0; i < n; ++i) {
    const TermSource& t = query.terms[i];
    if (t.kind == TermSource::Kind::kBaseSnapshot) {
      Csn last = tables[i]->last_change_csn();
      snap_key[i] = (last <= t.snapshot_csn) ? last : t.snapshot_csn;
    } else if (t.kind == TermSource::Kind::kBaseCurrent &&
               query.current_snapshot_hint != kNullCsn &&
               query.current_snapshot_hint <= db_->stable_csn() &&
               !txn->HasPendingWriteOn(tables[i])) {
      // Under the table-S lock, current state == the snapshot at the hint;
      // a last-change CSN above the hint would contradict that, so treat it
      // as an unusable hint rather than trust it.
      Csn last = tables[i]->last_change_csn();
      if (last <= query.current_snapshot_hint) snap_key[i] = last;
    }
  }
  // Arenas hold every input row per term; partial rows reference arena
  // slots. The spill owns tuples that must be copied (probe results and
  // uncached scans); a deque keeps their addresses stable under growth.
  std::vector<TermArena> arena(n);
  std::vector<bool> bound(n, false);
  std::vector<bool> materialized(n, false);
  std::deque<Tuple> spill;

  auto copy_into_spill = [&](const Tuple& t) -> const Tuple* {
    local.rows_copied++;
    local.bytes_copied += TupleApproxBytes(t);
    spill.push_back(t);
    return &spill.back();
  };
  auto note_borrow = [&](const Tuple& t) {
    local.rows_borrowed++;
    local.bytes_borrowed += TupleApproxBytes(t);
  };

  // True if the term-local predicate (if any) admits the tuple.
  auto admits = [&](size_t i, const Tuple& t) {
    if (term_filter[i].empty() || term_filter[i].Admits(t)) return true;
    local.pushdown_filtered++;
    return false;
  };

  auto cache_key = [&](size_t i, std::vector<size_t> cols) {
    BuildCache::Key key;
    key.table = query.terms[i].table;
    key.snapshot_csn = snap_key[i];
    key.join_cols = std::move(cols);
    if (term_pred[i] != nullptr) {
      key.pred_fingerprint = term_pred[i]->ToString();
    }
    return key;
  };

  // Builder for a cache entry of term i: admitted tuples at the canonical
  // snapshot, plus a hash index over `cols` when joining. Runs at most once
  // per distinct key engine-wide; its copies are build cost, not per-query
  // copy traffic, so they do not count into rows_copied.
  auto entry_builder = [&](size_t i, std::vector<size_t> cols) {
    return [&tables, &term_pred, &snap_key, i,
            cols = std::move(cols)](BuildCache::Entry* e) -> Status {
      const ExprPtr& pred = term_pred[i];
      tables[i]->ScanVisitSnapshot(snap_key[i], [&](const Tuple& t) {
        if (pred != nullptr && !pred->EvalBool(t)) return;
        e->tuples.push_back(t);
      });
      if (!cols.empty()) {
        e->index.reserve(e->tuples.size());
        for (size_t s = 0; s < e->tuples.size(); ++s) {
          JoinKey k;
          k.values.reserve(cols.size());
          for (size_t c : cols) k.values.push_back(e->tuples[s][c]);
          e->index[std::move(k)].push_back(static_cast<uint32_t>(s));
        }
      }
      return Status::OK();
    };
  };

  auto fetch_entry = [&](size_t i, std::vector<size_t> cols)
      -> Result<std::shared_ptr<const BuildCache::Entry>> {
    BuildCache::Key key = cache_key(i, cols);
    ROLLVIEW_ASSIGN_OR_RETURN(
        BuildCache::Lookup lookup,
        cache_->GetOrBuild(key, entry_builder(i, std::move(cols))));
    if (lookup.hit) {
      local.build_cache_hits++;
    } else {
      local.build_cache_misses++;
      local.build_nanos += lookup.entry->build_nanos;
    }
    return std::move(lookup.entry);
  };

  auto materialize = [&](size_t i) -> Status {
    if (materialized[i]) return Status::OK();
    materialized[i] = true;
    const TermSource& t = query.terms[i];
    if (t.kind == TermSource::Kind::kRows) {
      // Borrow delta tuples in place; the caller owns them (and, for the
      // refs variant, keeps the underlying store pinned) for the whole
      // execution.
      if (t.row_refs != nullptr) {
        local.input_rows += t.row_refs->size();
        arena[i].rows.reserve(t.row_refs->size());
        for (const DeltaRow* r : *t.row_refs) {
          if (!admits(i, r->tuple)) continue;
          note_borrow(r->tuple);
          arena[i].rows.push_back(ArenaRow{&r->tuple, r->count, r->ts});
        }
        return Status::OK();
      }
      local.input_rows += t.rows->size();
      arena[i].rows.reserve(t.rows->size());
      for (const DeltaRow& r : *t.rows) {
        if (!admits(i, r.tuple)) continue;
        note_borrow(r.tuple);
        arena[i].rows.push_back(ArenaRow{&r.tuple, r.count, r.ts});
      }
      return Status::OK();
    }
    if (cache_ != nullptr && snap_key[i] != kNullCsn) {
      // Snapshot-keyed scan served from (or built into) the cache; the
      // pinned entry backs the arena directly.
      ROLLVIEW_ASSIGN_OR_RETURN(arena[i].entry, fetch_entry(i, {}));
      local.input_rows += arena[i].entry->tuples.size();
      for (const Tuple& tp : arena[i].entry->tuples) note_borrow(tp);
      return Status::OK();
    }
    // Uncached scan: copy admitted rows into the spill.
    auto visit = [&](const Tuple& tp) {
      local.input_rows++;
      if (!admits(i, tp)) return;
      arena[i].rows.push_back(ArenaRow{copy_into_spill(tp), 1, kNullCsn});
    };
    if (t.kind == TermSource::Kind::kBaseCurrent) {
      tables[i]->ScanVisitCurrent(txn->id(), visit);
    } else {
      tables[i]->ScanVisitSnapshot(t.snapshot_csn, visit);
    }
    return Status::OK();
  };

  // Pick the start term among kRows terms by *admitted* (post-pushdown)
  // size -- materializing them is cheap (borrowed references), and raw size
  // misranks a heavily-filtered large delta against a small unfiltered one.
  // Propagation queries always have a kRows term; otherwise start at 0.
  size_t start = SIZE_MAX;
  size_t start_size = SIZE_MAX;
  for (size_t i = 0; i < n; ++i) {
    if (query.terms[i].kind != TermSource::Kind::kRows) continue;
    ROLLVIEW_RETURN_NOT_OK(materialize(i));
    if (arena[i].size() < start_size) {
      start = i;
      start_size = arena[i].size();
    }
  }
  if (start == SIZE_MAX) start = 0;
  ROLLVIEW_RETURN_NOT_OK(materialize(start));
  bound[start] = true;

  PartialSet current(n);
  for (size_t s = 0; s < arena[start].size(); ++s) {
    uint32_t slot = static_cast<uint32_t>(s);
    current.AppendRoot(start, slot, arena[start].count(slot),
                       arena[start].ts(slot));
  }

  size_t num_bound = 1;
  std::vector<bool> pred_used(query.equi_joins.size(), false);

  enum class Mode { kProbe, kCachedJoin, kHashJoin, kCartesian };
  // A predicate connecting the bound set to the candidate term:
  // (equi_joins index, bound term, bound col, candidate col).
  struct Conn {
    size_t pred;
    size_t bt;
    size_t bc;
    size_t nc;
  };

  while (num_bound < n && current.size() > 0) {
    size_t next = SIZE_MAX;
    Mode mode = Mode::kCartesian;
    std::vector<Conn> connecting;
    size_t probe_conn = SIZE_MAX;  // index into `connecting` for kProbe

    auto gather = [&](size_t cand) {
      connecting.clear();
      for (size_t p = 0; p < query.equi_joins.size(); ++p) {
        const EquiJoin& ej = query.equi_joins[p];
        if (ej.left_term == cand && bound[ej.right_term]) {
          connecting.push_back(Conn{p, ej.right_term, ej.right_col,
                                    ej.left_col});
        } else if (ej.right_term == cand && bound[ej.left_term]) {
          connecting.push_back(Conn{p, ej.left_term, ej.left_col,
                                    ej.right_col});
        }
      }
    };

    // First pass: base candidates reachable through a hash-indexed join
    // column (probe-able). A snapshot-keyed candidate upgrades to a cached
    // join when a build is already resident or the driving side is large
    // enough to amortize building one.
    for (size_t cand = 0; cand < n && next == SIZE_MAX; ++cand) {
      if (bound[cand]) continue;
      if (query.terms[cand].kind == TermSource::Kind::kRows) continue;
      gather(cand);
      const std::vector<size_t>& idx = tables[cand]->indexed_columns();
      for (size_t ci = 0; ci < connecting.size(); ++ci) {
        if (std::find(idx.begin(), idx.end(), connecting[ci].nc) !=
            idx.end()) {
          next = cand;
          probe_conn = ci;
          break;
        }
      }
    }
    if (next != SIZE_MAX) {
      mode = Mode::kProbe;
      if (cache_ != nullptr && snap_key[next] != kNullCsn) {
        std::vector<size_t> cols;
        cols.reserve(connecting.size());
        for (const Conn& c : connecting) cols.push_back(c.nc);
        // Upgrade when the driving side is large enough to amortize a
        // build within this query, or when the cache has seen this key
        // before (resident, or second touch): propagation steps repeat the
        // same snapshot key query after query, so a recurring key amortizes
        // the build across the run even if every driving side is tiny.
        if (current.size() >= kCachedBuildThreshold ||
            cache_->ShouldBuildForProbe(cache_key(next, std::move(cols)))) {
          mode = Mode::kCachedJoin;
        }
      }
    }
    if (next == SIZE_MAX) {
      // Second pass: any connected candidate (hash join; snapshot-keyed
      // base builds route through the cache).
      for (size_t cand = 0; cand < n && next == SIZE_MAX; ++cand) {
        if (bound[cand]) continue;
        gather(cand);
        if (!connecting.empty()) {
          next = cand;
          mode = (cache_ != nullptr && snap_key[cand] != kNullCsn)
                     ? Mode::kCachedJoin
                     : Mode::kHashJoin;
        }
      }
    }
    if (next == SIZE_MAX) {
      // Cartesian fallback: first unbound term.
      for (size_t cand = 0; cand < n; ++cand) {
        if (!bound[cand]) {
          next = cand;
          break;
        }
      }
      gather(next);  // leaves `connecting` empty by construction
      mode = Mode::kCartesian;
    }

    // Hoist the residual equi-join predicates that become checkable at this
    // level (both sides bound once `next` binds, not already consumed, not
    // satisfied by the join itself) -- computed once per level, not per row.
    std::vector<const EquiJoin*> check_preds;
    {
      std::vector<bool> satisfied(query.equi_joins.size(), false);
      if (mode == Mode::kProbe) {
        satisfied[connecting[probe_conn].pred] = true;
      } else if (mode == Mode::kCachedJoin || mode == Mode::kHashJoin) {
        for (const Conn& c : connecting) satisfied[c.pred] = true;
      }
      for (size_t p = 0; p < query.equi_joins.size(); ++p) {
        if (pred_used[p] || satisfied[p]) continue;
        const EquiJoin& ej = query.equi_joins[p];
        bool l_ok = bound[ej.left_term] || ej.left_term == next;
        bool r_ok = bound[ej.right_term] || ej.right_term == next;
        if (l_ok && r_ok) check_preds.push_back(&ej);
      }
    }

    auto passes = [&](const uint32_t* slots, const Tuple& next_tuple) {
      for (const EquiJoin* ej : check_preds) {
        const Tuple& lt = ej->left_term == next
                              ? next_tuple
                              : arena[ej->left_term].tuple(
                                    slots[ej->left_term]);
        const Tuple& rt = ej->right_term == next
                              ? next_tuple
                              : arena[ej->right_term].tuple(
                                    slots[ej->right_term]);
        if (!(lt[ej->left_col] == rt[ej->right_col])) return false;
      }
      return true;
    };

    PartialSet joined(n);

    if (mode == Mode::kProbe) {
      const Conn& pc = connecting[probe_conn];
      const TermSource& tsrc = query.terms[next];
      materialized[next] = true;  // filled incrementally by the probes
      for (size_t r = 0; r < current.size(); ++r) {
        const uint32_t* slots = current.slots(r);
        const Value& key = arena[pc.bt].tuple(slots[pc.bt])[pc.bc];
        local.index_probes++;
        auto on_match = [&](const Tuple& m) {
          local.input_rows++;
          if (!admits(next, m)) return;
          if (!passes(slots, m)) return;
          arena[next].rows.push_back(
              ArenaRow{copy_into_spill(m), 1, kNullCsn});
          joined.AppendExtended(
              current, r, next,
              static_cast<uint32_t>(arena[next].rows.size() - 1), 1,
              kNullCsn);
        };
        if (tsrc.kind == TermSource::Kind::kBaseCurrent) {
          tables[next]->ProbeVisitCurrent(txn->id(), pc.nc, key, on_match);
        } else {
          tables[next]->ProbeVisitSnapshot(tsrc.snapshot_csn, pc.nc, key,
                                           on_match);
        }
      }
    } else if (mode == Mode::kCachedJoin) {
      std::vector<size_t> cols;
      cols.reserve(connecting.size());
      for (const Conn& c : connecting) cols.push_back(c.nc);
      ROLLVIEW_ASSIGN_OR_RETURN(arena[next].entry,
                                fetch_entry(next, std::move(cols)));
      materialized[next] = true;
      const BuildCache::Entry& entry = *arena[next].entry;
      JoinKey key;
      for (size_t r = 0; r < current.size(); ++r) {
        const uint32_t* slots = current.slots(r);
        key.values.clear();
        for (const Conn& c : connecting) {
          key.values.push_back(arena[c.bt].tuple(slots[c.bt])[c.bc]);
        }
        auto it = entry.index.find(key);
        if (it == entry.index.end()) continue;
        for (uint32_t s : it->second) {
          const Tuple& m = entry.tuples[s];
          local.input_rows++;
          note_borrow(m);
          if (!passes(slots, m)) continue;
          joined.AppendExtended(current, r, next, s, 1, kNullCsn);
        }
      }
    } else if (mode == Mode::kHashJoin) {
      ROLLVIEW_RETURN_NOT_OK(materialize(next));
      // Build the hash table over the smaller input. Compensation queries
      // drive a few partial rows against a large delta range; building over
      // `current` there turns O(|big| inserts) into O(|big| lookups).
      std::unordered_map<JoinKey, std::vector<uint32_t>, JoinKeyHasher> ht;
      if (current.size() <= arena[next].size()) {
        ht.reserve(current.size());
        for (size_t r = 0; r < current.size(); ++r) {
          const uint32_t* slots = current.slots(r);
          JoinKey k;
          k.values.reserve(connecting.size());
          for (const Conn& c : connecting) {
            k.values.push_back(arena[c.bt].tuple(slots[c.bt])[c.bc]);
          }
          ht[std::move(k)].push_back(static_cast<uint32_t>(r));
        }
        JoinKey key;
        for (size_t s = 0; s < arena[next].size(); ++s) {
          uint32_t slot = static_cast<uint32_t>(s);
          key.values.clear();
          for (const Conn& c : connecting) {
            key.values.push_back(arena[next].tuple(slot)[c.nc]);
          }
          auto it = ht.find(key);
          if (it == ht.end()) continue;
          for (uint32_t r : it->second) {
            if (!passes(current.slots(r), arena[next].tuple(slot))) continue;
            joined.AppendExtended(current, r, next, slot,
                                  arena[next].count(slot),
                                  arena[next].ts(slot));
          }
        }
      } else {
        ht.reserve(arena[next].size());
        for (size_t s = 0; s < arena[next].size(); ++s) {
          uint32_t slot = static_cast<uint32_t>(s);
          JoinKey k;
          k.values.reserve(connecting.size());
          for (const Conn& c : connecting) {
            k.values.push_back(arena[next].tuple(slot)[c.nc]);
          }
          ht[std::move(k)].push_back(slot);
        }
        JoinKey key;
        for (size_t r = 0; r < current.size(); ++r) {
          const uint32_t* slots = current.slots(r);
          key.values.clear();
          for (const Conn& c : connecting) {
            key.values.push_back(arena[c.bt].tuple(slots[c.bt])[c.bc]);
          }
          auto it = ht.find(key);
          if (it == ht.end()) continue;
          for (uint32_t s : it->second) {
            if (!passes(slots, arena[next].tuple(s))) continue;
            joined.AppendExtended(current, r, next, s, arena[next].count(s),
                                  arena[next].ts(s));
          }
        }
      }
    } else {
      // Cartesian product.
      ROLLVIEW_RETURN_NOT_OK(materialize(next));
      for (size_t r = 0; r < current.size(); ++r) {
        const uint32_t* slots = current.slots(r);
        for (size_t s = 0; s < arena[next].size(); ++s) {
          uint32_t slot = static_cast<uint32_t>(s);
          if (!passes(slots, arena[next].tuple(slot))) continue;
          joined.AppendExtended(current, r, next, slot,
                                arena[next].count(slot),
                                arena[next].ts(slot));
        }
      }
    }

    // Mark every predicate checkable at this level as consumed (used for
    // the join or checked via check_preds just now).
    for (size_t p = 0; p < query.equi_joins.size(); ++p) {
      const EquiJoin& ej = query.equi_joins[p];
      bool l_ok = bound[ej.left_term] || ej.left_term == next;
      bool r_ok = bound[ej.right_term] || ej.right_term == next;
      if (l_ok && r_ok) pred_used[p] = true;
    }
    bound[next] = true;
    ++num_bound;
    current = std::move(joined);
  }

  // Assemble output: concatenated tuple in term order, residual selection,
  // projection, sign.
  DeltaRows out;
  out.reserve(current.size());
  size_t total_width = 0;
  for (size_t w : widths) total_width += w;

  for (size_t r = 0; r < current.size(); ++r) {
    if (current.count(r) == 0) continue;
    const uint32_t* slots = current.slots(r);
    bool complete = true;
    for (size_t i = 0; i < n; ++i) {
      if (slots[i] == kUnbound) {
        complete = false;
        break;
      }
    }
    if (!complete) continue;  // empty-level break left partial rows unbound
    Tuple concat;
    concat.reserve(total_width);
    for (size_t i = 0; i < n; ++i) {
      const Tuple& piece = arena[i].tuple(slots[i]);
      concat.insert(concat.end(), piece.begin(), piece.end());
    }
    if (residual && !residual->EvalBool(concat)) continue;
    Tuple projected;
    if (query.projection.empty()) {
      projected = std::move(concat);
    } else {
      projected.reserve(query.projection.size());
      for (size_t idx : query.projection) projected.push_back(concat[idx]);
    }
    out.emplace_back(std::move(projected), current.count(r) * query.sign,
                     current.ts(r));
  }
  local.output_rows = out.size();
  local.exec_nanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - exec_start)
          .count());
  if (stats != nullptr) stats->Add(local);
  return out;
}

}  // namespace rollview
