#include "ra/executor.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>
#include <unordered_map>

#include "common/csn.h"

namespace rollview {

namespace {

// Composite join key: the values of several columns, hashed together.
struct JoinKey {
  std::vector<Value> values;

  friend bool operator==(const JoinKey& a, const JoinKey& b) {
    return a.values == b.values;
  }
};

struct JoinKeyHasher {
  size_t operator()(const JoinKey& k) const {
    size_t h = 0x243f6a8885a308d3ULL;
    for (const Value& v : k.values) {
      h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

// A partially-joined row: per-term indexes into the term arenas, plus the
// running count product and min timestamp.
struct PartialRow {
  std::vector<uint32_t> slot;  // indexed by term; kUnbound if term unbound
  int64_t count = 1;
  Csn ts = kNullCsn;
};

constexpr uint32_t kUnbound = std::numeric_limits<uint32_t>::max();

// Flattens a conjunction tree into its conjuncts.
void CollectConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind() == Expr::Kind::kAnd) {
    CollectConjuncts(e->lhs(), out);
    CollectConjuncts(e->rhs(), out);
  } else {
    out->push_back(e);
  }
}

ExprPtr AndTogether(ExprPtr a, ExprPtr b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  return Expr::And(std::move(a), std::move(b));
}

}  // namespace

Result<DeltaRows> JoinExecutor::Execute(const JoinQuery& query, Txn* txn,
                                        ExecStats* stats) {
  const size_t n = query.terms.size();
  if (n == 0) return Status::InvalidArgument("join query has no terms");

  ExecStats local;
  local.queries = 1;

  // Resolve table metadata and lock current-state terms up front so the
  // whole query sees one consistent state (strict 2PL holds the locks to
  // commit).
  std::vector<VersionedTable*> tables(n, nullptr);
  std::vector<size_t> widths(n, 0);
  for (size_t i = 0; i < n; ++i) {
    const TermSource& t = query.terms[i];
    VersionedTable* vt = db_->table(t.table);
    if (vt == nullptr) return Status::NotFound("join term table not found");
    tables[i] = vt;
    widths[i] = vt->schema().num_columns();
    if (t.kind == TermSource::Kind::kBaseCurrent) {
      if (txn == nullptr) {
        return Status::InvalidArgument(
            "current-state term requires a transaction");
      }
      ROLLVIEW_RETURN_NOT_OK(db_->LockTableShared(txn, t.table));
    } else if (t.kind == TermSource::Kind::kBaseSnapshot) {
      if (t.snapshot_csn > db_->stable_csn()) {
        return Status::OutOfRange("snapshot term beyond stable csn");
      }
    } else if (t.rows == nullptr) {
      return Status::InvalidArgument("kRows term with null rows");
    }
  }

  // Selection pushdown: conjuncts of the residual whose column references
  // fall inside a single term's slice run against that term's rows before
  // the join (shifted to the term's local column space); the rest stays as
  // the post-join residual.
  std::vector<size_t> offsets(n, 0);
  for (size_t i = 1; i < n; ++i) offsets[i] = offsets[i - 1] + widths[i - 1];
  std::vector<ExprPtr> term_pred(n);
  ExprPtr residual;
  {
    std::vector<ExprPtr> conjuncts;
    CollectConjuncts(query.residual, &conjuncts);
    for (ExprPtr& c : conjuncts) {
      size_t lo = c->MinColumnIndex();
      size_t hi = c->MaxColumnIndex();
      bool pushed = false;
      if (lo != SIZE_MAX) {
        for (size_t i = 0; i < n; ++i) {
          if (lo >= offsets[i] && hi < offsets[i] + widths[i]) {
            term_pred[i] =
                AndTogether(std::move(term_pred[i]), c->ShiftColumns(offsets[i]));
            pushed = true;
            break;
          }
        }
      }
      if (!pushed) residual = AndTogether(std::move(residual), std::move(c));
    }
  }

  // Arenas hold every row materialized or probed per term; PartialRows
  // reference arena slots. deque keeps references stable under growth.
  std::vector<std::deque<DeltaRow>> arena(n);
  std::vector<bool> bound(n, false);
  std::vector<bool> materialized(n, false);

  // True if the term-local predicate (if any) admits the tuple.
  auto admits = [&](size_t i, const Tuple& t) {
    if (term_pred[i] == nullptr || term_pred[i]->EvalBool(t)) return true;
    local.pushdown_filtered++;
    return false;
  };

  auto materialize = [&](size_t i) -> Status {
    if (materialized[i]) return Status::OK();
    const TermSource& t = query.terms[i];
    switch (t.kind) {
      case TermSource::Kind::kRows:
        local.input_rows += t.rows->size();
        for (const DeltaRow& r : *t.rows) {
          if (admits(i, r.tuple)) arena[i].push_back(r);
        }
        break;
      case TermSource::Kind::kBaseCurrent: {
        std::vector<Tuple> rows = tables[i]->CurrentScan(txn->id());
        local.input_rows += rows.size();
        for (Tuple& tp : rows) {
          if (!admits(i, tp)) continue;
          arena[i].push_back(DeltaRow(std::move(tp), +1, kNullCsn));
        }
        break;
      }
      case TermSource::Kind::kBaseSnapshot: {
        std::vector<Tuple> rows = tables[i]->SnapshotScan(t.snapshot_csn);
        local.input_rows += rows.size();
        for (Tuple& tp : rows) {
          if (!admits(i, tp)) continue;
          arena[i].push_back(DeltaRow(std::move(tp), +1, kNullCsn));
        }
        break;
      }
    }
    materialized[i] = true;
    return Status::OK();
  };

  // Pick the start term: the smallest kRows term if any (propagation
  // queries always have one -- every maintenance query involves at least one
  // delta table), else the first base term.
  size_t start = SIZE_MAX;
  size_t start_size = SIZE_MAX;
  for (size_t i = 0; i < n; ++i) {
    if (query.terms[i].kind == TermSource::Kind::kRows &&
        query.terms[i].rows->size() < start_size) {
      start = i;
      start_size = query.terms[i].rows->size();
    }
  }
  if (start == SIZE_MAX) start = 0;

  ROLLVIEW_RETURN_NOT_OK(materialize(start));
  bound[start] = true;

  std::vector<PartialRow> current;
  current.reserve(arena[start].size());
  for (uint32_t s = 0; s < arena[start].size(); ++s) {
    PartialRow pr;
    pr.slot.assign(n, kUnbound);
    pr.slot[start] = s;
    pr.count = arena[start][s].count;
    pr.ts = arena[start][s].ts;
    current.push_back(std::move(pr));
  }

  size_t num_bound = 1;
  std::vector<bool> pred_used(query.equi_joins.size(), false);

  while (num_bound < n) {
    // Choose the next term: connected to the bound set, preferring (a) a
    // base term probe-able through a hash index, then (b) any connected
    // term, then (c) cartesian fallback.
    size_t next = SIZE_MAX;
    bool next_probeable = false;
    // Predicates connecting the bound set to `next`:
    //   (bound_term, bound_col, next_col)
    std::vector<std::tuple<size_t, size_t, size_t>> connecting;

    for (size_t cand = 0; cand < n && next == SIZE_MAX; ++cand) {
      // First pass: probe-able candidates.
      if (bound[cand]) continue;
      if (query.terms[cand].kind == TermSource::Kind::kRows) continue;
      for (const EquiJoin& ej : query.equi_joins) {
        size_t other, other_col, cand_col;
        if (ej.left_term == cand && bound[ej.right_term]) {
          other = ej.right_term;
          other_col = ej.right_col;
          cand_col = ej.left_col;
        } else if (ej.right_term == cand && bound[ej.left_term]) {
          other = ej.left_term;
          other_col = ej.left_col;
          cand_col = ej.right_col;
        } else {
          continue;
        }
        const std::vector<size_t>& idx = tables[cand]->indexed_columns();
        if (std::find(idx.begin(), idx.end(), cand_col) != idx.end()) {
          next = cand;
          next_probeable = true;
          connecting.clear();
          connecting.emplace_back(other, other_col, cand_col);
          break;
        }
      }
    }
    if (next == SIZE_MAX) {
      // Second pass: any connected candidate (hash join).
      for (size_t cand = 0; cand < n && next == SIZE_MAX; ++cand) {
        if (bound[cand]) continue;
        for (const EquiJoin& ej : query.equi_joins) {
          bool connects =
              (ej.left_term == cand && bound[ej.right_term]) ||
              (ej.right_term == cand && bound[ej.left_term]);
          if (connects) {
            next = cand;
            break;
          }
        }
      }
    }
    if (next == SIZE_MAX) {
      // Cartesian fallback: first unbound term.
      for (size_t cand = 0; cand < n; ++cand) {
        if (!bound[cand]) {
          next = cand;
          break;
        }
      }
    }

    if (!next_probeable) {
      // Gather all predicates connecting bound terms to `next`.
      connecting.clear();
      for (const EquiJoin& ej : query.equi_joins) {
        if (ej.left_term == next && bound[ej.right_term]) {
          connecting.emplace_back(ej.right_term, ej.right_col, ej.left_col);
        } else if (ej.right_term == next && bound[ej.left_term]) {
          connecting.emplace_back(ej.left_term, ej.left_col, ej.right_col);
        }
      }
    }

    std::vector<PartialRow> joined;

    if (next_probeable && !connecting.empty()) {
      auto [bt, bc, nc] = connecting[0];
      const TermSource& ts = query.terms[next];
      for (const PartialRow& pr : current) {
        const Value& key = arena[bt][pr.slot[bt]].tuple[bc];
        std::vector<Tuple> matches =
            ts.kind == TermSource::Kind::kBaseCurrent
                ? tables[next]->CurrentProbe(txn->id(), nc, key)
                : tables[next]->SnapshotProbe(ts.snapshot_csn, nc, key);
        local.index_probes++;
        local.input_rows += matches.size();
        for (Tuple& m : matches) {
          if (!admits(next, m)) continue;
          arena[next].push_back(DeltaRow(std::move(m), +1, kNullCsn));
          PartialRow ext = pr;
          ext.slot[next] = static_cast<uint32_t>(arena[next].size() - 1);
          joined.push_back(std::move(ext));
        }
      }
    } else if (!connecting.empty()) {
      // Hash join: build on `next`, probe with current rows.
      ROLLVIEW_RETURN_NOT_OK(materialize(next));
      std::unordered_map<JoinKey, std::vector<uint32_t>, JoinKeyHasher> ht;
      ht.reserve(arena[next].size());
      for (uint32_t s = 0; s < arena[next].size(); ++s) {
        JoinKey key;
        key.values.reserve(connecting.size());
        for (auto& [bt, bc, nc] : connecting) {
          (void)bt;
          (void)bc;
          key.values.push_back(arena[next][s].tuple[nc]);
        }
        ht[std::move(key)].push_back(s);
      }
      for (const PartialRow& pr : current) {
        JoinKey key;
        key.values.reserve(connecting.size());
        for (auto& [bt, bc, nc] : connecting) {
          (void)nc;
          key.values.push_back(arena[bt][pr.slot[bt]].tuple[bc]);
        }
        auto it = ht.find(key);
        if (it == ht.end()) continue;
        for (uint32_t s : it->second) {
          PartialRow ext = pr;
          ext.slot[next] = s;
          joined.push_back(std::move(ext));
        }
      }
    } else {
      // Cartesian product.
      ROLLVIEW_RETURN_NOT_OK(materialize(next));
      for (const PartialRow& pr : current) {
        for (uint32_t s = 0; s < arena[next].size(); ++s) {
          PartialRow ext = pr;
          ext.slot[next] = s;
          joined.push_back(std::move(ext));
        }
      }
    }

    // Fold the joined term's count/ts into the partial rows, then apply any
    // remaining predicates both of whose sides are now bound.
    for (PartialRow& pr : joined) {
      const DeltaRow& r = arena[next][pr.slot[next]];
      pr.count *= r.count;
      pr.ts = MinTimestamp(pr.ts, r.ts);
    }
    bound[next] = true;
    ++num_bound;

    // Residual equi-join predicates across already-bound terms (e.g. cycle
    // edges in the join graph) filter here.
    std::vector<PartialRow> filtered;
    filtered.reserve(joined.size());
    for (PartialRow& pr : joined) {
      bool keep = true;
      for (size_t p = 0; p < query.equi_joins.size(); ++p) {
        if (pred_used[p]) continue;
        const EquiJoin& ej = query.equi_joins[p];
        if (!bound[ej.left_term] || !bound[ej.right_term]) continue;
        const Value& a = arena[ej.left_term][pr.slot[ej.left_term]]
                             .tuple[ej.left_col];
        const Value& b = arena[ej.right_term][pr.slot[ej.right_term]]
                             .tuple[ej.right_col];
        if (!(a == b)) {
          keep = false;
          break;
        }
      }
      if (keep) filtered.push_back(std::move(pr));
    }
    // Mark predicates with both sides bound as consumed (they were either
    // used for the join or checked as residuals just now).
    for (size_t p = 0; p < query.equi_joins.size(); ++p) {
      const EquiJoin& ej = query.equi_joins[p];
      if (bound[ej.left_term] && bound[ej.right_term]) pred_used[p] = true;
    }
    current = std::move(filtered);
    if (current.empty()) break;  // no output; still a valid (empty) result
  }

  // Assemble output: concatenated tuple in term order, residual selection,
  // projection, sign.
  DeltaRows out;
  size_t total_width = 0;
  for (size_t w : widths) total_width += w;

  for (const PartialRow& pr : current) {
    if (pr.count == 0) continue;
    Tuple concat;
    concat.reserve(total_width);
    bool complete = true;
    for (size_t i = 0; i < n; ++i) {
      if (pr.slot[i] == kUnbound) {
        complete = false;
        break;
      }
      const Tuple& piece = arena[i][pr.slot[i]].tuple;
      concat.insert(concat.end(), piece.begin(), piece.end());
    }
    if (!complete) continue;  // current.empty() break left partial rows out
    if (residual && !residual->EvalBool(concat)) continue;
    Tuple projected;
    if (query.projection.empty()) {
      projected = std::move(concat);
    } else {
      projected.reserve(query.projection.size());
      for (size_t idx : query.projection) projected.push_back(concat[idx]);
    }
    out.emplace_back(std::move(projected), pr.count * query.sign, pr.ts);
  }
  local.output_rows = out.size();
  if (stats != nullptr) stats->Add(local);
  return out;
}

}  // namespace rollview
