// Copyright 2026 The rollview Authors.
//
// Compiled delta programs with materialized half-join views.
//
// A forward propagation query Q^V[i] joins one delta range sigma(Delta^R_i)
// against the CURRENT state of every other term of the view. The interpreted
// path (ra/executor.cc) re-plans that join per strip: pushdown splitting,
// predicate compilation, cache-key fingerprinting and hash builds all run
// once per query, which dominates E11 at small delta intervals. A
// DeltaProgram specializes Q^V[i] once, at CreateView time:
//
//  * The join of all OTHER terms -- with every single-term and intra-group
//    selection conjunct pushed down -- is materialized as one or more
//    auxiliary HALF-JOIN VIEWS (one per connected component of the
//    other-terms join graph), hash-indexed on the columns term i joins
//    through. A delta row then probes one index per group instead of
//    re-joining every term.
//  * Residual predicates and the projection are folded into flat per-term
//    kernels extending CompiledPred: direct Value comparisons over
//    (source, column) addresses -- no Expr::Eval, no Value copies on the
//    probe path. A query whose residual cannot be flattened stays on the
//    interpreted path (per-term, recorded in Dump()).
//
// Half-join views are maintained incrementally alongside the main view: an
// advance from state A to the lock-frozen current state T applies the
// telescoping expansion
//
//   HJ(T) - HJ(A) = sum_k  m_1(A) |><| ... |><| m_{k-1}(A)
//                          |><| sigma_{A,T}(Delta^m_k)
//                          |><| m_{k+1}(T) |><| ... |><| m_K(T)
//
// executed as snapshot join queries through the interpreted executor with
// the BuildCache explicitly BYPASSED (a half-join advance must not pollute
// admission or hit-rate accounting -- the cache's metrics stay meaningful
// under the compiled mode). Each half-join view holds a Db snapshot pin at
// its as-of CSN so the version store can always reproduce the old side of
// the expansion; pins rotate forward on every advance.
//
// Crash consistency: half-join state is volatile and DERIVED -- it is never
// checkpointed. ViewManager::Recover (and Materialize, and online repair)
// call ViewPrograms::Reset(), and the first forward query after recovery
// deterministically rebuilds each half-join view from base-table snapshots
// at the lock-frozen current state, which by construction equals the state
// every subsequent query sees. See docs/ALGORITHMS.md §13.

#ifndef ROLLVIEW_RA_DELTA_PROGRAM_H_
#define ROLLVIEW_RA_DELTA_PROGRAM_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/csn.h"
#include "common/result.h"
#include "ra/build_cache.h"
#include "ra/compiled_pred.h"
#include "ra/expr.h"
#include "ra/join_query.h"
#include "schema/tuple.h"
#include "storage/db.h"

namespace rollview {

// Canonical description of one auxiliary half-join view: the join of one
// connected component of a view's "other terms", with pushed-down
// selection, hash-indexed on the columns the delta term probes through.
struct HalfJoinSpec {
  struct Member {
    TableId table = kInvalidTableId;
    size_t width = 0;  // columns in the member's schema
  };
  // In ascending original-term order; the half-join's stored tuples are the
  // members' tuples concatenated in this order.
  std::vector<Member> members;
  // Equi-joins among members, in local member-index space.
  std::vector<EquiJoin> joins;
  // Pushed-down selection over the member-concatenated tuple (single-member
  // conjuncts AND conjuncts spanning only this group). May be null. This
  // runs at BUILD/ADVANCE time only -- amortized, never on the probe path.
  ExprPtr residual;
  // Columns of the member-concatenated tuple the hash index keys on (the
  // group-side columns of the delta term's equi-joins into this group), in
  // match order with DeltaProgram::GroupProbe::delta_cols.
  std::vector<size_t> index_cols;

  // Structural identity for de-duplication across a view's programs (e.g.
  // the two symmetric programs of a self-join share one half-join view).
  std::string CanonicalKey() const;
};

// One materialized half-join view: tuple -> count multiset of the member
// join, hash-indexed by the probe key. Thread-safe: concurrent partition
// strips probe under a shared latch; advances take it exclusively.
class HalfJoinView {
 public:
  struct Row {
    Tuple tuple;  // member-concatenated
    int64_t count = 0;
  };

  HalfJoinView(HalfJoinSpec spec, std::vector<std::string> member_names);

  // Shared-latched read handle over a freshened index; valid while held.
  class ProbeGuard {
   public:
    ProbeGuard() = default;
    const std::vector<Row>* Lookup(const JoinKey& key) const {
      auto it = hj_->index_.find(key);
      return it == hj_->index_.end() ? nullptr : &it->second;
    }

   private:
    friend class HalfJoinView;
    const HalfJoinView* hj_ = nullptr;
    std::shared_lock<std::shared_mutex> lock_;
  };

  // Brings the view to the members' current state and returns a probe
  // guard. The caller must hold table-S locks on every member (the state is
  // lock-frozen) and delta-S locks on their delta resources, and must have
  // verified base-delta publication through every member's last-change CSN
  // (`delta_ready` is the published high-water mark; an advance whose
  // incremental window is not fully published, or whose window was pruned,
  // falls back to a deterministic full rebuild from snapshots).
  Result<ProbeGuard> EnsureFresh(Db* db, Csn delta_ready, ExecStats* stats);

  // Drops the materialized state (index, pin, as-of); the next EnsureFresh
  // rebuilds from snapshots. Crash recovery and re-materialization hook.
  void Reset();

  const HalfJoinSpec& spec() const { return spec_; }
  const std::vector<std::string>& member_names() const {
    return member_names_;
  }
  Csn as_of() const { return as_of_.load(std::memory_order_acquire); }
  uint64_t resident_rows() const {
    return rows_.load(std::memory_order_relaxed);
  }
  uint64_t resident_bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  using Index = std::unordered_map<JoinKey, std::vector<Row>, JoinKeyHasher>;

  // True when the index reflects the members' current state (every member's
  // last-change CSN is at or below as_of_). Caller holds mu_ (any mode).
  bool FreshLocked(Db* db) const;
  // Advance/rebuild to the current stable state. Caller holds mu_ unique.
  Status AdvanceLocked(Db* db, Csn delta_ready, ExecStats* stats);
  Status RebuildLocked(Db* db, Csn target, ExecStats* stats);
  // Merges signed member-concat rows into the index. Caller holds mu_
  // unique. Returns rows applied.
  size_t ApplyLocked(DeltaRows rows);
  // The build/advance selection in member-concat space (spec_.residual).
  JoinQuery StageQuery(size_t k, Csn old_csn, Csn new_csn,
                       const DeltaRows* delta_rows) const;

  HalfJoinSpec spec_;
  std::vector<std::string> member_names_;
  // spec_.residual flattened for per-row evaluation on the single-member
  // build/advance fast paths (multi-member groups evaluate the residual
  // inside the staged executor queries instead).
  CompiledPred residual_pred_;

  mutable std::shared_mutex mu_;
  Index index_;         // guarded by mu_
  bool built_ = false;  // guarded by mu_
  Db::SnapshotHandle pin_;  // guarded by mu_; holds GC above as_of_
  std::atomic<Csn> as_of_{kNullCsn};
  std::atomic<uint64_t> rows_{0};
  std::atomic<uint64_t> bytes_{0};
};

// Hash index over one delta table's rows within an advancing CSN window
// (lo, hi], with the same pushed-down residual and probe key as the
// corresponding half-join view. This is the compiled form of a two-delta-term
// COMPENSATION query's big side: rolling compensation re-joins each strip
// against the other relation's drift range (frontier, t_exec], whose left and
// right edges advance monotonically -- so instead of re-scanning the whole
// range per query (quadratic during catch-up), the index retires rows that
// leave at the left edge and admits rows that enter at the right edge; each
// delta row is touched twice total. Rows keep their (count, ts) so the probe
// kernel reproduces the interpreted executor's count-product and
// min-timestamp rule exactly. A non-monotone window request or a pruned left
// edge falls back to a full rebuild of the window from the delta store,
// which by construction equals what the interpreted scan would see. Like
// half-join views this state is derived and volatile: never checkpointed,
// dropped on Reset().
class DeltaWindowIndex {
 public:
  struct Row {
    Tuple tuple;
    int64_t count = 0;
    Csn ts = kNullCsn;
  };

  // `spec` must be single-member; shares the half-join's pushdown residual
  // and index_cols.
  explicit DeltaWindowIndex(HalfJoinSpec spec);

  class ProbeGuard {
   public:
    ProbeGuard() = default;
    const std::vector<Row>* Lookup(const JoinKey& key) const {
      auto it = w_->index_.find(key);
      return it == w_->index_.end() ? nullptr : &it->second;
    }

   private:
    friend class DeltaWindowIndex;
    const DeltaWindowIndex* w_ = nullptr;
    std::shared_lock<std::shared_mutex> lock_;
  };

  // Brings the index to exactly `range` and returns a shared-latched probe
  // guard. The caller must hold the delta-S lock on the member's delta
  // resource (the store is frozen for the query's duration). Returns
  // NotSupported if concurrent callers keep moving the window to different
  // ranges (callers fall back to the interpreted path).
  Result<ProbeGuard> EnsureWindow(Db* db, const CsnRange& range,
                                  ExecStats* stats);

  void Reset();

  uint64_t resident_rows() const {
    return rows_.load(std::memory_order_relaxed);
  }
  uint64_t resident_bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  using Index = std::unordered_map<JoinKey, std::vector<Row>, JoinKeyHasher>;

  // Caller holds mu_ unique. Moves the window to `range`, incrementally
  // when monotone, else by rebuild.
  Status AdvanceLocked(Db* db, const CsnRange& range, ExecStats* stats);
  // Merges `refs` (x sign) into the index; rows are identified by
  // (tuple, ts) so retirement removes exactly what admission added.
  void ApplyLocked(const DeltaRowRefs& refs, int64_t sign);

  HalfJoinSpec spec_;
  CompiledPred residual_pred_;

  mutable std::shared_mutex mu_;
  Index index_;  // guarded by mu_
  bool built_ = false;
  CsnRange window_{kNullCsn, kNullCsn};  // guarded by mu_
  std::atomic<uint64_t> rows_{0};
  std::atomic<uint64_t> bytes_{0};
};

// The compiled form of one forward propagation query Q^V[i].
struct DeltaProgram {
  // A flat comparison over (source, column) addresses: source 0 is the
  // delta tuple, source 1+g is group g's half-join row. Checks derived from
  // equi-joins compare with raw Value equality (NULL == NULL matches, like
  // the executor's join modes); checks derived from the residual selection
  // use SQL semantics (NULL propagates as false), matching Expr::EvalBool.
  struct Check {
    uint8_t a_src = 0;
    uint32_t a_col = 0;
    Expr::CmpOp op = Expr::CmpOp::kEq;
    bool vs_literal = false;
    Value literal;
    uint8_t b_src = 0;
    uint32_t b_col = 0;
    bool null_eq = false;  // equi-join semantics (raw Value comparison)
  };
  struct GroupProbe {
    std::shared_ptr<HalfJoinView> hj;
    // Delta-tuple columns forming the probe key, aligned with the
    // half-join spec's index_cols.
    std::vector<size_t> delta_cols;
    // Compensation support (two-term views only): the same spec applied to
    // the other term's DELTA rows over an advancing window. Null when the
    // view's compensation queries cannot take the compiled path.
    std::shared_ptr<DeltaWindowIndex> window;
  };
  struct OutCol {
    uint8_t src = 0;  // 0 = delta tuple, 1+g = group g's half-join row
    uint32_t col = 0;
  };

  size_t delta_term = 0;
  // Column-vs-literal conjuncts local to the delta term.
  CompiledPred delta_pred;
  // Flat checks referencing only the delta tuple (self equi-joins, local
  // column-vs-column conjuncts); evaluated once per delta row.
  std::vector<Check> delta_checks;
  std::vector<GroupProbe> groups;
  // Flat checks spanning the delta tuple and/or multiple groups; evaluated
  // per match combination.
  std::vector<Check> cross_checks;
  // The view projection over (source, column) addresses.
  std::vector<OutCol> projection;
};

// All compiled programs of one view plus their (de-duplicated) half-join
// views. Owned by the View; compiled once at CreateView.
class ViewPrograms {
 public:
  // Compiles one program per term of the SPJ definition. Never fails:
  // a term whose residual cannot be flattened simply stays interpreted
  // (compiled(term) == false, reason recorded for Dump()).
  static std::shared_ptr<ViewPrograms> Compile(
      Db* db, const std::vector<TableId>& tables,
      const std::vector<EquiJoin>& joins, const ExprPtr& selection,
      const std::vector<size_t>& projection, std::string owner_name);

  bool compiled(size_t term) const {
    return term < programs_.size() && programs_[term] != nullptr;
  }
  size_t num_terms() const { return programs_.size(); }
  size_t num_compiled() const;
  size_t num_half_joins() const { return half_joins_.size(); }

  // Executes the compiled Q^V[delta_term] over `delta_rows`: freshens and
  // probes each group's half-join view, runs the flat kernels, and returns
  // the signed, delta-timestamped output rows. Caller contract is
  // HalfJoinView::EnsureFresh's (member locks held, publication verified).
  // Returns NotSupported when the term is not compiled -- callers fall
  // back to the interpreted executor.
  Result<DeltaRows> ExecuteForward(size_t delta_term,
                                   const DeltaRowRefs& delta_rows,
                                   int64_t sign, Csn delta_ready,
                                   ExecStats* stats);

  // Executes the compiled form of a two-delta-term COMPENSATION query:
  // iterates `delta_rows` (the small strip side) and probes the advancing
  // window index over `other_term`'s delta rows restricted to
  // `other_range`, applying the same flat kernels as the forward program
  // plus the executor's count-product and min-timestamp combination rules.
  // The caller must hold delta-S locks on both terms' delta resources.
  // Returns NotSupported when the shape is not compiled (callers fall back
  // to the interpreted executor).
  Result<DeltaRows> ExecuteCompensation(size_t delta_term,
                                        const DeltaRowRefs& delta_rows,
                                        size_t other_term,
                                        const CsnRange& other_range,
                                        int64_t sign, ExecStats* stats);

  // Largest last-change CSN over the members of `delta_term`'s groups --
  // the base-delta publication the caller must verify before
  // ExecuteForward. kNullCsn when nothing is required.
  Csn RequiredDeltaReady(size_t delta_term) const;

  // Drops every half-join view's materialized state (crash recovery,
  // re-materialization, online repair). Programs themselves are immutable.
  void Reset();

  // Byte-stable text dump of every program and half-join spec -- the
  // golden-file surface for plan-drift tests. Depends only on the
  // definition (table names, expression text), never on runtime state.
  std::string Dump() const;

  // Memory gauges, aggregated over this view's half-join views.
  uint64_t half_join_rows() const;
  uint64_t half_join_bytes() const;

  const std::string& owner_name() const { return owner_; }

 private:
  ViewPrograms() = default;

  Db* db_ = nullptr;
  std::string owner_;
  std::vector<TableId> tables_;
  std::vector<std::string> table_names_;
  std::vector<std::unique_ptr<DeltaProgram>> programs_;
  std::vector<std::string> reasons_;  // per-term; empty when compiled
  std::vector<std::shared_ptr<HalfJoinView>> half_joins_;
};

}  // namespace rollview

#endif  // ROLLVIEW_RA_DELTA_PROGRAM_H_
