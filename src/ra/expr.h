// Copyright 2026 The rollview Authors.
//
// A small expression tree for selection predicates and computed columns.
// Expressions are evaluated against a tuple (for propagation queries: the
// concatenation of all join terms' tuples, in term order). Column references
// are positional; the ivm layer resolves (term, column) pairs to offsets.
//
// Boolean results are represented as int64 0/1; SQL NULL propagates through
// comparisons as false (sufficient for the workloads; the IVM algorithms
// place no constraints on the selection beyond not referencing count or
// timestamp, which are not addressable here at all).

#ifndef ROLLVIEW_RA_EXPR_H_
#define ROLLVIEW_RA_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/value.h"
#include "schema/tuple.h"

namespace rollview {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class Expr {
 public:
  enum class Kind {
    kColumn,
    kLiteral,
    kCompare,
    kAnd,
    kOr,
    kNot,
    kArith,
  };
  enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };
  enum class ArithOp { kAdd, kSub, kMul, kDiv, kMod };

  static ExprPtr Column(size_t index);
  static ExprPtr Literal(Value v);
  static ExprPtr Compare(CmpOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr And(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Not(ExprPtr operand);
  // Numeric arithmetic: int64 op int64 stays integral (kMod requires it);
  // any double operand promotes the result to double; NULL operands yield
  // NULL; division/modulo by zero yields NULL.
  static ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs);

  Kind kind() const { return kind_; }
  size_t column_index() const { return column_index_; }
  const Value& literal() const { return literal_; }
  CmpOp cmp_op() const { return cmp_op_; }
  ArithOp arith_op() const { return arith_op_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }

  Value Eval(const Tuple& tuple) const;
  bool EvalBool(const Tuple& tuple) const;

  // Largest column index referenced (for arity checks); SIZE_MAX if none.
  size_t MaxColumnIndex() const;
  // Smallest column index referenced; SIZE_MAX if none.
  size_t MinColumnIndex() const;

  // Returns a copy of this expression with every column index shifted down
  // by `offset` (for evaluating a pushed-down predicate against a single
  // term's tuple instead of the concatenated tuple).
  ExprPtr ShiftColumns(size_t offset) const;

  std::string ToString() const;

 private:
  explicit Expr(Kind kind) : kind_(kind) {}

  Kind kind_;
  size_t column_index_ = 0;
  Value literal_;
  CmpOp cmp_op_ = CmpOp::kEq;
  ArithOp arith_op_ = ArithOp::kAdd;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

}  // namespace rollview

#endif  // ROLLVIEW_RA_EXPR_H_
