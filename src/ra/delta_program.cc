#include "ra/delta_program.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <sstream>
#include <utility>

#include "capture/delta_table.h"
#include "ra/executor.h"
#include "storage/versioned_table.h"

namespace rollview {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const char* CmpOpStr(Expr::CmpOp op) {
  switch (op) {
    case Expr::CmpOp::kEq: return "==";
    case Expr::CmpOp::kNe: return "!=";
    case Expr::CmpOp::kLt: return "<";
    case Expr::CmpOp::kLe: return "<=";
    case Expr::CmpOp::kGt: return ">";
    case Expr::CmpOp::kGe: return ">=";
  }
  return "?";
}

void CollectColumns(const ExprPtr& e, std::vector<size_t>* out) {
  if (e == nullptr) return;
  switch (e->kind()) {
    case Expr::Kind::kColumn:
      out->push_back(e->column_index());
      return;
    case Expr::Kind::kLiteral:
      return;
    default:
      CollectColumns(e->lhs(), out);
      CollectColumns(e->rhs(), out);
      return;
  }
}

// Rebuilds `e` with every column index mapped through `map` (-1 =
// unmappable). Returns nullptr when any referenced column is unmappable.
ExprPtr RemapColumns(const ExprPtr& e, const std::vector<int64_t>& map) {
  if (e == nullptr) return nullptr;
  switch (e->kind()) {
    case Expr::Kind::kColumn: {
      size_t idx = e->column_index();
      if (idx >= map.size() || map[idx] < 0) return nullptr;
      return Expr::Column(static_cast<size_t>(map[idx]));
    }
    case Expr::Kind::kLiteral:
      return Expr::Literal(e->literal());
    case Expr::Kind::kCompare: {
      ExprPtr l = RemapColumns(e->lhs(), map);
      ExprPtr r = RemapColumns(e->rhs(), map);
      if (l == nullptr || r == nullptr) return nullptr;
      return Expr::Compare(e->cmp_op(), std::move(l), std::move(r));
    }
    case Expr::Kind::kAnd: {
      ExprPtr l = RemapColumns(e->lhs(), map);
      ExprPtr r = RemapColumns(e->rhs(), map);
      if (l == nullptr || r == nullptr) return nullptr;
      return Expr::And(std::move(l), std::move(r));
    }
    case Expr::Kind::kOr: {
      ExprPtr l = RemapColumns(e->lhs(), map);
      ExprPtr r = RemapColumns(e->rhs(), map);
      if (l == nullptr || r == nullptr) return nullptr;
      return Expr::Or(std::move(l), std::move(r));
    }
    case Expr::Kind::kNot: {
      ExprPtr l = RemapColumns(e->lhs(), map);
      if (l == nullptr) return nullptr;
      return Expr::Not(std::move(l));
    }
    case Expr::Kind::kArith: {
      ExprPtr l = RemapColumns(e->lhs(), map);
      ExprPtr r = RemapColumns(e->rhs(), map);
      if (l == nullptr || r == nullptr) return nullptr;
      return Expr::Arith(e->arith_op(), std::move(l), std::move(r));
    }
  }
  return nullptr;
}

// The Value a Check operand addresses within one probe combination; `match`
// holds the matched group tuples (half-join rows or window rows).
inline const Value& CheckOperand(uint8_t src, uint32_t col, const Tuple& delta,
                                 const std::vector<const Tuple*>& match) {
  if (src == 0) return delta[col];
  return (*match[src - 1])[col];
}

inline bool PassesCheck(const DeltaProgram::Check& c, const Tuple& delta,
                        const std::vector<const Tuple*>& match) {
  const Value& a = CheckOperand(c.a_src, c.a_col, delta, match);
  const Value& b = c.vs_literal
                       ? c.literal
                       : CheckOperand(c.b_src, c.b_col, delta, match);
  if (c.null_eq) {
    // Equi-join semantics: raw Value comparison, exactly like the
    // executor's JoinKey equality (NULL == NULL matches).
    switch (c.op) {
      case Expr::CmpOp::kEq: return a == b;
      case Expr::CmpOp::kNe: return !(a == b);
      default: break;  // only ever built with kEq/kNe
    }
  }
  return EvalCmp(c.op, a, b);
}

}  // namespace

// --------------------------------------------------------------------------
// HalfJoinSpec

std::string HalfJoinSpec::CanonicalKey() const {
  std::ostringstream os;
  os << "m=";
  for (size_t i = 0; i < members.size(); ++i) {
    if (i) os << ",";
    os << members[i].table;
  }
  os << ";j=";
  for (size_t i = 0; i < joins.size(); ++i) {
    if (i) os << ",";
    os << joins[i].left_term << "." << joins[i].left_col << "="
       << joins[i].right_term << "." << joins[i].right_col;
  }
  os << ";k=";
  for (size_t i = 0; i < index_cols.size(); ++i) {
    if (i) os << ",";
    os << index_cols[i];
  }
  os << ";r=" << (residual ? residual->ToString() : "-");
  return os.str();
}

// --------------------------------------------------------------------------
// HalfJoinView

HalfJoinView::HalfJoinView(HalfJoinSpec spec,
                           std::vector<std::string> member_names)
    : spec_(std::move(spec)),
      member_names_(std::move(member_names)),
      residual_pred_(CompilePred(spec_.residual)) {}

bool HalfJoinView::FreshLocked(Db* db) const {
  if (!built_) return false;
  const Csn as_of = as_of_.load(std::memory_order_relaxed);
  for (const HalfJoinSpec::Member& m : spec_.members) {
    if (db->table(m.table)->last_change_csn() > as_of) return false;
  }
  return true;
}

Result<HalfJoinView::ProbeGuard> HalfJoinView::EnsureFresh(Db* db,
                                                           Csn delta_ready,
                                                           ExecStats* stats) {
  for (;;) {
    {
      std::shared_lock<std::shared_mutex> lk(mu_);
      if (FreshLocked(db)) {
        ProbeGuard g;
        g.hj_ = this;
        g.lock_ = std::move(lk);
        return g;
      }
    }
    {
      std::unique_lock<std::shared_mutex> lk(mu_);
      if (!FreshLocked(db)) {
        Status s = AdvanceLocked(db, delta_ready, stats);
        if (!s.ok()) return s;
      }
    }
    // Loop: retake shared and re-check. With the members lock-frozen by the
    // caller this converges on the second pass; a concurrent strip may have
    // advanced for us in the meantime, which is equally fine.
  }
}

Status HalfJoinView::AdvanceLocked(Db* db, Csn delta_ready,
                                   ExecStats* stats) {
  // Pin before choosing the target so snapshot reads at `target` are
  // GC-protected; the old pin (at as_of_) protects the A-side until the
  // advance lands, then rotates forward.
  Db::SnapshotHandle new_pin = db->PinSnapshot();
  const Csn target = new_pin.csn();
  const Csn as_of = as_of_.load(std::memory_order_relaxed);

  Csn needed = kNullCsn;
  for (const HalfJoinSpec::Member& m : spec_.members) {
    needed = std::max(needed, db->table(m.table)->last_change_csn());
  }

  if (!built_) {
    Status s = RebuildLocked(db, target, stats);
    if (!s.ok()) return s;
  } else if (needed <= as_of) {
    // Raced fresh: another strip advanced while we waited for the unique
    // latch. Just rotate the pin forward.
  } else {
    // Telescoping advance is only sound when every member's base-delta rows
    // over (as_of, target] are published (capture caught up through
    // `needed`) and not yet pruned. Otherwise fall back to a deterministic
    // full rebuild from snapshots -- self-contained, never transient.
    bool can_advance = delta_ready >= needed;
    for (const HalfJoinSpec::Member& m : spec_.members) {
      const DeltaTable* d = db->delta(m.table);
      if (d == nullptr || d->pruned_through() > as_of) {
        can_advance = false;
        break;
      }
    }
    if (!can_advance) {
      Status s = RebuildLocked(db, target, stats);
      if (!s.ok()) return s;
    } else {
      // HJ(target) - HJ(as_of) = sum_k members<k @ as_of |><| delta_k
      //                          |><| members>k @ target. Collect every
      // stage's output before applying anything: a failed stage must leave
      // the index untouched.
      DeltaRows acc;
      if (spec_.members.size() == 1) {
        // Degenerate telescoping: HJ = sigma(residual)(member), so its
        // delta over (as_of, target] applies directly -- no join stages,
        // and critically no per-advance executor planning (that fixed cost
        // is exactly what the compiled path exists to remove). Borrow the
        // rows under a pin and copy only the ones the residual admits.
        DeltaTable::Pin dpin;
        const DeltaRowRefs refs =
            db->delta(spec_.members[0].table)
                ->ScanRefs(CsnRange{as_of, target}, &dpin);
        acc.reserve(refs.size());
        for (const DeltaRow* r : refs) {
          if (!residual_pred_.empty() && !residual_pred_.Admits(r->tuple)) {
            continue;
          }
          acc.emplace_back(r->tuple, r->count, r->ts);
        }
      } else {
        for (size_t k = 0; k < spec_.members.size(); ++k) {
          DeltaRows dk = db->delta(spec_.members[k].table)
                             ->Scan(CsnRange{as_of, target});
          if (dk.empty()) continue;
          JoinQuery q = StageQuery(k, as_of, target, &dk);
          JoinExecutor exec(db, /*cache=*/nullptr);  // BuildCache bypass
          Result<DeltaRows> r = exec.Execute(q, /*txn=*/nullptr, stats);
          if (!r.ok()) return r.status();
          DeltaRows out = std::move(r).value();
          acc.insert(acc.end(), std::make_move_iterator(out.begin()),
                     std::make_move_iterator(out.end()));
        }
      }
      size_t applied = ApplyLocked(std::move(acc));
      if (stats != nullptr) {
        stats->half_join_advances++;
        stats->half_join_advance_rows += applied;
      }
    }
  }

  pin_ = std::move(new_pin);
  as_of_.store(target, std::memory_order_release);
  built_ = true;
  return Status::OK();
}

Status HalfJoinView::RebuildLocked(Db* db, Csn target, ExecStats* stats) {
  index_.clear();
  rows_.store(0, std::memory_order_relaxed);
  bytes_.store(0, std::memory_order_relaxed);

  if (spec_.members.size() == 1) {
    // Single-member groups rebuild straight off the version store: a
    // zero-copy snapshot visit with the residual pre-compiled, so only
    // admitted tuples are ever copied. Both the executor (per-query
    // planning) and a full-table SnapshotScan copy are pure overhead here.
    const VersionedTable* vt = db->table(spec_.members[0].table);
    if (vt == nullptr) {
      return Status::NotFound("half-join member table missing");
    }
    DeltaRows rows;
    std::function<bool(const Tuple&)> pred;
    const std::function<bool(const Tuple&)>* pred_ptr = nullptr;
    if (!residual_pred_.empty()) {
      pred = [this](const Tuple& t) { return residual_pred_.Admits(t); };
      pred_ptr = &pred;
    }
    vt->ScanVisitSnapshot(
        target,
        [&rows](const Tuple& t) {
          rows.emplace_back(t, int64_t{1}, kNullCsn);
        },
        pred_ptr);
    ApplyLocked(std::move(rows));
    if (stats != nullptr) stats->half_join_rebuilds++;
    return Status::OK();
  }

  JoinQuery q;
  q.terms.reserve(spec_.members.size());
  for (const HalfJoinSpec::Member& m : spec_.members) {
    q.terms.push_back(TermSource::BaseSnapshot(m.table, target));
  }
  q.equi_joins = spec_.joins;
  q.residual = spec_.residual;
  q.sign = +1;

  JoinExecutor exec(db, /*cache=*/nullptr);  // BuildCache bypass
  Result<DeltaRows> r = exec.Execute(q, /*txn=*/nullptr, stats);
  if (!r.ok()) return r.status();
  ApplyLocked(std::move(r).value());
  if (stats != nullptr) stats->half_join_rebuilds++;
  return Status::OK();
}

size_t HalfJoinView::ApplyLocked(DeltaRows rows) {
  const size_t applied = rows.size();
  uint64_t nrows = rows_.load(std::memory_order_relaxed);
  uint64_t nbytes = bytes_.load(std::memory_order_relaxed);
  JoinKey key;
  for (DeltaRow& r : rows) {
    key.values.clear();
    key.values.reserve(spec_.index_cols.size());
    for (size_t c : spec_.index_cols) key.values.push_back(r.tuple[c]);

    auto it = index_.find(key);
    if (it == index_.end()) {
      if (r.count == 0) continue;
      const size_t b = TupleApproxBytes(r.tuple) + sizeof(Row);
      it = index_.emplace(key, std::vector<Row>()).first;
      it->second.push_back(Row{std::move(r.tuple), r.count});
      nrows++;
      nbytes += b;
      continue;
    }
    std::vector<Row>& bucket = it->second;
    size_t pos = bucket.size();
    for (size_t i = 0; i < bucket.size(); ++i) {
      if (bucket[i].tuple == r.tuple) {
        pos = i;
        break;
      }
    }
    if (pos == bucket.size()) {
      if (r.count == 0) continue;
      const size_t b = TupleApproxBytes(r.tuple) + sizeof(Row);
      bucket.push_back(Row{std::move(r.tuple), r.count});
      nrows++;
      nbytes += b;
    } else {
      bucket[pos].count += r.count;
      if (bucket[pos].count == 0) {
        const size_t b = TupleApproxBytes(bucket[pos].tuple) + sizeof(Row);
        bucket[pos] = std::move(bucket.back());
        bucket.pop_back();
        if (bucket.empty()) index_.erase(it);
        nrows--;
        nbytes -= std::min<uint64_t>(nbytes, b);
      }
    }
  }
  rows_.store(nrows, std::memory_order_relaxed);
  bytes_.store(nbytes, std::memory_order_relaxed);
  return applied;
}

JoinQuery HalfJoinView::StageQuery(size_t k, Csn old_csn, Csn new_csn,
                                   const DeltaRows* delta_rows) const {
  JoinQuery q;
  q.terms.reserve(spec_.members.size());
  for (size_t j = 0; j < spec_.members.size(); ++j) {
    const TableId t = spec_.members[j].table;
    if (j < k) {
      q.terms.push_back(TermSource::BaseSnapshot(t, old_csn));
    } else if (j == k) {
      q.terms.push_back(TermSource::Rows(t, delta_rows));
    } else {
      q.terms.push_back(TermSource::BaseSnapshot(t, new_csn));
    }
  }
  q.equi_joins = spec_.joins;
  q.residual = spec_.residual;
  q.sign = +1;  // delta rows carry their own signs
  return q;
}

void HalfJoinView::Reset() {
  std::unique_lock<std::shared_mutex> lk(mu_);
  index_.clear();
  built_ = false;
  pin_.Release();
  as_of_.store(kNullCsn, std::memory_order_release);
  rows_.store(0, std::memory_order_relaxed);
  bytes_.store(0, std::memory_order_relaxed);
}

// --------------------------------------------------------------------------
// DeltaWindowIndex

DeltaWindowIndex::DeltaWindowIndex(HalfJoinSpec spec)
    : spec_(std::move(spec)), residual_pred_(CompilePred(spec_.residual)) {}

Result<DeltaWindowIndex::ProbeGuard> DeltaWindowIndex::EnsureWindow(
    Db* db, const CsnRange& range, ExecStats* stats) {
  // Bounded retry rather than HalfJoinView's unbounded loop: distinct
  // callers may legitimately want distinct windows (e.g. the two symmetric
  // programs of a self-join view), and ping-ponging forever would livelock.
  for (int attempt = 0; attempt < 4; ++attempt) {
    {
      std::shared_lock<std::shared_mutex> lk(mu_);
      if (built_ && window_ == range) {
        ProbeGuard g;
        g.w_ = this;
        g.lock_ = std::move(lk);
        return g;
      }
    }
    {
      std::unique_lock<std::shared_mutex> lk(mu_);
      if (!(built_ && window_ == range)) {
        Status s = AdvanceLocked(db, range, stats);
        if (!s.ok()) return s;
      }
    }
  }
  return Status::NotSupported("delta window contended across ranges");
}

Status DeltaWindowIndex::AdvanceLocked(Db* db, const CsnRange& range,
                                       ExecStats* stats) {
  const DeltaTable* d = db->delta(spec_.members[0].table);
  if (d == nullptr) {
    return Status::NotFound("delta window member has no delta table");
  }
  // Incremental move is sound only when both edges advance and the rows to
  // retire, (window_.lo, retire_hi], are still in the store; a pruned left
  // edge (or a window that moved backwards) rebuilds from the current
  // store, which is exactly what the interpreted scan would see.
  const bool monotone = built_ && range.lo >= window_.lo &&
                        range.hi >= window_.hi &&
                        d->pruned_through() <= window_.lo;
  DeltaTable::Pin pin;
  if (monotone) {
    const Csn retire_hi = std::min(range.lo, window_.hi);
    if (retire_hi > window_.lo) {
      ApplyLocked(d->ScanRefs(CsnRange{window_.lo, retire_hi}, &pin), -1);
    }
    const Csn admit_lo = std::max(window_.hi, range.lo);
    if (range.hi > admit_lo) {
      ApplyLocked(d->ScanRefs(CsnRange{admit_lo, range.hi}, &pin), +1);
    }
    if (stats != nullptr) stats->half_join_advances++;
  } else {
    index_.clear();
    rows_.store(0, std::memory_order_relaxed);
    bytes_.store(0, std::memory_order_relaxed);
    if (!range.empty()) {
      ApplyLocked(d->ScanRefs(range, &pin), +1);
    }
    if (stats != nullptr) stats->half_join_rebuilds++;
  }
  window_ = range;
  built_ = true;
  return Status::OK();
}

void DeltaWindowIndex::ApplyLocked(const DeltaRowRefs& refs, int64_t sign) {
  uint64_t nrows = rows_.load(std::memory_order_relaxed);
  uint64_t nbytes = bytes_.load(std::memory_order_relaxed);
  JoinKey key;
  for (const DeltaRow* r : refs) {
    if (!residual_pred_.empty() && !residual_pred_.Admits(r->tuple)) continue;
    const int64_t count = r->count * sign;
    if (count == 0) continue;
    key.values.clear();
    key.values.reserve(spec_.index_cols.size());
    for (size_t c : spec_.index_cols) key.values.push_back(r->tuple[c]);

    auto it = index_.find(key);
    if (it == index_.end()) {
      it = index_.emplace(key, std::vector<Row>()).first;
    }
    std::vector<Row>& bucket = it->second;
    size_t pos = bucket.size();
    for (size_t i = 0; i < bucket.size(); ++i) {
      // (tuple, ts) identifies a delta row: the min-timestamp rule makes
      // rows with equal tuples but different timestamps non-mergeable.
      if (bucket[i].ts == r->ts && bucket[i].tuple == r->tuple) {
        pos = i;
        break;
      }
    }
    if (pos == bucket.size()) {
      const size_t b = TupleApproxBytes(r->tuple) + sizeof(Row);
      bucket.push_back(Row{r->tuple, count, r->ts});
      nrows++;
      nbytes += b;
    } else {
      bucket[pos].count += count;
      if (bucket[pos].count == 0) {
        const size_t b = TupleApproxBytes(bucket[pos].tuple) + sizeof(Row);
        bucket[pos] = std::move(bucket.back());
        bucket.pop_back();
        if (bucket.empty()) index_.erase(it);
        nrows--;
        nbytes -= std::min<uint64_t>(nbytes, b);
      }
    }
  }
  rows_.store(nrows, std::memory_order_relaxed);
  bytes_.store(nbytes, std::memory_order_relaxed);
}

void DeltaWindowIndex::Reset() {
  std::unique_lock<std::shared_mutex> lk(mu_);
  index_.clear();
  built_ = false;
  window_ = CsnRange{kNullCsn, kNullCsn};
  rows_.store(0, std::memory_order_relaxed);
  bytes_.store(0, std::memory_order_relaxed);
}

// --------------------------------------------------------------------------
// ViewPrograms -- compilation

namespace {

// Union-find over member slots.
size_t UfFind(std::vector<size_t>& parent, size_t x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

struct TermLayout {
  std::vector<size_t> widths;   // per original term
  std::vector<size_t> offsets;  // concat offset per original term
  size_t total = 0;

  // Owning term of a concat column index.
  size_t OwnerOf(size_t concat_col) const {
    size_t t = 0;
    while (t + 1 < offsets.size() && offsets[t + 1] <= concat_col) ++t;
    return t;
  }
};

}  // namespace

std::shared_ptr<ViewPrograms> ViewPrograms::Compile(
    Db* db, const std::vector<TableId>& tables,
    const std::vector<EquiJoin>& joins, const ExprPtr& selection,
    const std::vector<size_t>& projection, std::string owner_name) {
  auto vp = std::shared_ptr<ViewPrograms>(new ViewPrograms());
  vp->db_ = db;
  vp->owner_ = std::move(owner_name);
  vp->tables_ = tables;

  const size_t n = tables.size();
  TermLayout layout;
  layout.widths.resize(n);
  layout.offsets.resize(n);
  vp->table_names_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const VersionedTable* t = db->table(tables[i]);
    layout.widths[i] = t->schema().num_columns();
    layout.offsets[i] = layout.total;
    layout.total += layout.widths[i];
    vp->table_names_[i] = t->name();
  }

  std::vector<ExprPtr> conjuncts;
  CollectConjuncts(selection, &conjuncts);

  vp->programs_.resize(n);
  vp->reasons_.resize(n);
  std::unordered_map<std::string, size_t> hj_by_key;

  for (size_t i = 0; i < n; ++i) {
    // ---- Other-terms grouping: connected components of the join graph
    // restricted to terms != i.
    std::vector<size_t> members;  // original term indexes, ascending
    for (size_t j = 0; j < n; ++j) {
      if (j != i) members.push_back(j);
    }
    std::vector<size_t> member_pos(n, SIZE_MAX);  // term -> slot in members
    for (size_t s = 0; s < members.size(); ++s) member_pos[members[s]] = s;

    std::vector<size_t> parent(members.size());
    std::iota(parent.begin(), parent.end(), 0);
    for (const EquiJoin& ej : joins) {
      if (ej.left_term == i || ej.right_term == i) continue;
      size_t a = UfFind(parent, member_pos[ej.left_term]);
      size_t b = UfFind(parent, member_pos[ej.right_term]);
      if (a != b) parent[std::max(a, b)] = std::min(a, b);
    }
    // Groups keyed by root slot; roots ascend with their minimum member, so
    // iterating members in order yields groups sorted by smallest member.
    std::vector<std::vector<size_t>> group_terms;  // original term indexes
    std::vector<size_t> root_to_group(members.size(), SIZE_MAX);
    std::vector<size_t> term_to_group(n, SIZE_MAX);
    for (size_t s = 0; s < members.size(); ++s) {
      size_t root = UfFind(parent, s);
      if (root_to_group[root] == SIZE_MAX) {
        root_to_group[root] = group_terms.size();
        group_terms.emplace_back();
      }
      group_terms[root_to_group[root]].push_back(members[s]);
      term_to_group[members[s]] = root_to_group[root];
    }
    const size_t ng = group_terms.size();

    // Per-group layout: member slot within group, group-concat offsets.
    std::vector<std::vector<size_t>> group_offsets(ng);  // aligned w/ terms
    std::vector<size_t> term_group_slot(n, SIZE_MAX);
    std::vector<size_t> term_group_offset(n, SIZE_MAX);
    for (size_t g = 0; g < ng; ++g) {
      size_t off = 0;
      for (size_t s = 0; s < group_terms[g].size(); ++s) {
        size_t t = group_terms[g][s];
        term_group_slot[t] = s;
        term_group_offset[t] = off;
        group_offsets[g].push_back(off);
        off += layout.widths[t];
      }
    }

    auto program = std::make_unique<DeltaProgram>();
    program->delta_term = i;
    std::vector<HalfJoinSpec> specs(ng);
    std::vector<std::vector<size_t>> probe_delta_cols(ng);
    for (size_t g = 0; g < ng; ++g) {
      for (size_t t : group_terms[g]) {
        specs[g].members.push_back(
            HalfJoinSpec::Member{tables[t], layout.widths[t]});
      }
    }

    // ---- Classify equi-joins.
    for (const EquiJoin& ej : joins) {
      const bool l_delta = ej.left_term == i;
      const bool r_delta = ej.right_term == i;
      if (l_delta && r_delta) {
        // Self equi-join on the delta tuple.
        DeltaProgram::Check c;
        c.a_src = 0;
        c.a_col = static_cast<uint32_t>(ej.left_col);
        c.op = Expr::CmpOp::kEq;
        c.b_src = 0;
        c.b_col = static_cast<uint32_t>(ej.right_col);
        c.null_eq = true;
        program->delta_checks.push_back(c);
      } else if (l_delta || r_delta) {
        const size_t d_col = l_delta ? ej.left_col : ej.right_col;
        const size_t o_term = l_delta ? ej.right_term : ej.left_term;
        const size_t o_col = l_delta ? ej.right_col : ej.left_col;
        const size_t g = term_to_group[o_term];
        probe_delta_cols[g].push_back(d_col);
        specs[g].index_cols.push_back(term_group_offset[o_term] + o_col);
      } else {
        // Internal to one group by construction of the components.
        const size_t g = term_to_group[ej.left_term];
        EquiJoin local;
        local.left_term = term_group_slot[ej.left_term];
        local.left_col = ej.left_col;
        local.right_term = term_group_slot[ej.right_term];
        local.right_col = ej.right_col;
        specs[g].joins.push_back(local);
      }
    }

    // ---- Classify selection conjuncts.
    std::string reason;
    for (const ExprPtr& c : conjuncts) {
      std::vector<size_t> cols;
      CollectColumns(c, &cols);
      bool all_delta = true;
      size_t sole_group = SIZE_MAX;
      bool one_group = !cols.empty();
      for (size_t col : cols) {
        const size_t t = layout.OwnerOf(col);
        if (t != i) all_delta = false;
        const size_t g = (t == i) ? SIZE_MAX : term_to_group[t];
        if (g == SIZE_MAX) {
          one_group = false;
        } else if (sole_group == SIZE_MAX) {
          sole_group = g;
        } else if (sole_group != g) {
          one_group = false;
        }
      }

      if (all_delta) {
        // Delta-local: remap to the delta term's schema, then flatten.
        std::vector<int64_t> map(layout.total, -1);
        for (size_t k = 0; k < layout.widths[i]; ++k) {
          map[layout.offsets[i] + k] = static_cast<int64_t>(k);
        }
        ExprPtr local = RemapColumns(c, map);
        if (local == nullptr) {
          reason = "delta-local conjunct references a foreign column";
          break;
        }
        CompiledPred cp = CompilePred(local);
        if (cp.rest != nullptr) {
          // Column-vs-column over the delta tuple flattens into a check;
          // anything deeper stays interpreted.
          if (cp.rest->kind() == Expr::Kind::kCompare &&
              cp.rest->lhs()->kind() == Expr::Kind::kColumn &&
              cp.rest->rhs()->kind() == Expr::Kind::kColumn) {
            DeltaProgram::Check chk;
            chk.a_src = 0;
            chk.a_col = static_cast<uint32_t>(cp.rest->lhs()->column_index());
            chk.op = cp.rest->cmp_op();
            chk.b_src = 0;
            chk.b_col = static_cast<uint32_t>(cp.rest->rhs()->column_index());
            program->delta_checks.push_back(chk);
          } else {
            reason = "non-flat delta-local conjunct: " + cp.rest->ToString();
            break;
          }
        }
        for (CompiledPred::Simple& s : cp.simple) {
          program->delta_pred.simple.push_back(std::move(s));
        }
      } else if (one_group) {
        // Intra-group: push into the half-join residual (group-concat
        // space). Build-time only, so arbitrary Expr shapes are fine.
        std::vector<int64_t> map(layout.total, -1);
        for (size_t t : group_terms[sole_group]) {
          for (size_t k = 0; k < layout.widths[t]; ++k) {
            map[layout.offsets[t] + k] =
                static_cast<int64_t>(term_group_offset[t] + k);
          }
        }
        ExprPtr grouped = RemapColumns(c, map);
        if (grouped == nullptr) {
          reason = "intra-group conjunct references a foreign column";
          break;
        }
        specs[sole_group].residual =
            AndTogether(std::move(specs[sole_group].residual),
                        std::move(grouped));
      } else {
        // Spans the delta term and/or several groups: must flatten to one
        // comparison over (source, column) addresses.
        if (c->kind() != Expr::Kind::kCompare) {
          reason = "non-flat cross-term conjunct: " + c->ToString();
          break;
        }
        auto side = [&](const ExprPtr& e, uint8_t* src, uint32_t* col,
                        bool* is_lit, Value* lit) -> bool {
          if (e->kind() == Expr::Kind::kLiteral) {
            *is_lit = true;
            *lit = e->literal();
            return true;
          }
          if (e->kind() != Expr::Kind::kColumn) return false;
          *is_lit = false;
          const size_t concat = e->column_index();
          const size_t t = layout.OwnerOf(concat);
          const size_t local = concat - layout.offsets[t];
          if (t == i) {
            *src = 0;
            *col = static_cast<uint32_t>(local);
          } else {
            *src = static_cast<uint8_t>(1 + term_to_group[t]);
            *col = static_cast<uint32_t>(term_group_offset[t] + local);
          }
          return true;
        };
        uint8_t a_src = 0, b_src = 0;
        uint32_t a_col = 0, b_col = 0;
        bool a_lit = false, b_lit = false;
        Value a_val, b_val;
        if (!side(c->lhs(), &a_src, &a_col, &a_lit, &a_val) ||
            !side(c->rhs(), &b_src, &b_col, &b_lit, &b_val) ||
            (a_lit && b_lit)) {
          reason = "non-flat cross-term conjunct: " + c->ToString();
          break;
        }
        DeltaProgram::Check chk;
        if (a_lit) {
          // Literal-vs-column: mirror so the column drives.
          chk.a_src = b_src;
          chk.a_col = b_col;
          chk.op = MirrorCmp(c->cmp_op());
          chk.vs_literal = true;
          chk.literal = a_val;
        } else {
          chk.a_src = a_src;
          chk.a_col = a_col;
          chk.op = c->cmp_op();
          chk.vs_literal = b_lit;
          if (b_lit) {
            chk.literal = b_val;
          } else {
            chk.b_src = b_src;
            chk.b_col = b_col;
          }
        }
        program->cross_checks.push_back(chk);
      }
    }

    if (!reason.empty()) {
      vp->reasons_[i] = reason;
      continue;  // programs_[i] stays null -> interpreted
    }

    // ---- Projection in (source, column) addresses.
    std::vector<size_t> out_cols = projection;
    if (out_cols.empty()) {
      out_cols.resize(layout.total);
      std::iota(out_cols.begin(), out_cols.end(), 0);
    }
    for (size_t concat : out_cols) {
      const size_t t = layout.OwnerOf(concat);
      const size_t local = concat - layout.offsets[t];
      DeltaProgram::OutCol oc;
      if (t == i) {
        oc.src = 0;
        oc.col = static_cast<uint32_t>(local);
      } else {
        oc.src = static_cast<uint8_t>(1 + term_to_group[t]);
        oc.col = static_cast<uint32_t>(term_group_offset[t] + local);
      }
      program->projection.push_back(oc);
    }

    // ---- Instantiate (or share) the half-join views.
    for (size_t g = 0; g < ng; ++g) {
      const std::string key = specs[g].CanonicalKey();
      auto it = hj_by_key.find(key);
      std::shared_ptr<HalfJoinView> hj;
      if (it != hj_by_key.end()) {
        hj = vp->half_joins_[it->second];
      } else {
        std::vector<std::string> names;
        for (size_t t : group_terms[g]) names.push_back(vp->table_names_[t]);
        hj = std::make_shared<HalfJoinView>(std::move(specs[g]),
                                            std::move(names));
        hj_by_key.emplace(key, vp->half_joins_.size());
        vp->half_joins_.push_back(hj);
      }
      DeltaProgram::GroupProbe probe;
      probe.hj = std::move(hj);
      probe.delta_cols = std::move(probe_delta_cols[g]);
      if (n == 2) {
        // Two-term views: the program's single other-term group doubles as
        // the compensation probe target, applied to the other term's DELTA
        // rows over an advancing window. Not shared across programs -- a
        // self-join view's two programs track different window ranges.
        probe.window = std::make_shared<DeltaWindowIndex>(probe.hj->spec());
      }
      program->groups.push_back(std::move(probe));
    }

    vp->programs_[i] = std::move(program);
  }
  return vp;
}

// --------------------------------------------------------------------------
// ViewPrograms -- execution

size_t ViewPrograms::num_compiled() const {
  size_t n = 0;
  for (const auto& p : programs_) {
    if (p != nullptr) ++n;
  }
  return n;
}

Csn ViewPrograms::RequiredDeltaReady(size_t delta_term) const {
  if (!compiled(delta_term)) return kNullCsn;
  Csn needed = kNullCsn;
  for (const DeltaProgram::GroupProbe& gp : programs_[delta_term]->groups) {
    for (const HalfJoinSpec::Member& m : gp.hj->spec().members) {
      needed = std::max(needed, db_->table(m.table)->last_change_csn());
    }
  }
  return needed;
}

Result<DeltaRows> ViewPrograms::ExecuteForward(size_t delta_term,
                                               const DeltaRowRefs& delta_rows,
                                               int64_t sign, Csn delta_ready,
                                               ExecStats* stats) {
  if (!compiled(delta_term)) {
    return Status::NotSupported("term " + std::to_string(delta_term) +
                                " of " + owner_ + " is not compiled");
  }
  const uint64_t t0 = NowNanos();
  const DeltaProgram& p = *programs_[delta_term];
  ExecStats local;
  local.queries = 1;
  local.compiled_queries = 1;

  // Freshen every group's half-join view up front; the guards keep the
  // indexes latched (shared) for the whole probe loop.
  const size_t ng = p.groups.size();
  std::vector<HalfJoinView::ProbeGuard> guards;
  guards.reserve(ng);
  for (const DeltaProgram::GroupProbe& gp : p.groups) {
    Result<HalfJoinView::ProbeGuard> g =
        gp.hj->EnsureFresh(db_, delta_ready, &local);
    if (!g.ok()) return g.status();
    guards.push_back(std::move(g).value());
  }

  DeltaRows out;
  JoinKey key;
  std::vector<const std::vector<HalfJoinView::Row>*> lists(ng);
  std::vector<size_t> cursor(ng);
  std::vector<const Tuple*> match(ng);
  for (const DeltaRow* dr : delta_rows) {
    local.input_rows++;
    local.compiled_probe_rows++;
    const Tuple& d = dr->tuple;
    if (!p.delta_pred.empty() && !p.delta_pred.Admits(d)) continue;
    bool admitted = true;
    for (const DeltaProgram::Check& c : p.delta_checks) {
      if (!PassesCheck(c, d, match)) {
        admitted = false;
        break;
      }
    }
    if (!admitted) continue;

    // Probe each group's hash index.
    bool miss = false;
    for (size_t g = 0; g < ng; ++g) {
      key.values.clear();
      const std::vector<size_t>& dc = p.groups[g].delta_cols;
      key.values.reserve(dc.size());
      for (size_t c : dc) key.values.push_back(d[c]);
      lists[g] = guards[g].Lookup(key);
      if (lists[g] == nullptr || lists[g]->empty()) {
        local.half_join_misses++;
        miss = true;
        break;
      }
      local.half_join_hits++;
    }
    if (miss) continue;

    // Odometer over the match lists (runs exactly once when ng == 0).
    std::fill(cursor.begin(), cursor.end(), 0);
    for (;;) {
      int64_t count = dr->count * sign;
      for (size_t g = 0; g < ng; ++g) {
        const HalfJoinView::Row& m = (*lists[g])[cursor[g]];
        match[g] = &m.tuple;
        count *= m.count;
      }
      local.compiled_kernel_evals++;
      bool pass = count != 0;
      if (pass) {
        for (const DeltaProgram::Check& c : p.cross_checks) {
          if (!PassesCheck(c, d, match)) {
            pass = false;
            break;
          }
        }
      }
      if (pass) {
        Tuple t;
        t.reserve(p.projection.size());
        for (const DeltaProgram::OutCol& oc : p.projection) {
          t.push_back(oc.src == 0 ? d[oc.col]
                                  : (*match[oc.src - 1])[oc.col]);
        }
        out.emplace_back(std::move(t), count, dr->ts);
        local.output_rows++;
      }
      // Advance the odometer.
      size_t g = 0;
      for (; g < ng; ++g) {
        if (++cursor[g] < lists[g]->size()) break;
        cursor[g] = 0;
      }
      if (g == ng) break;
    }
  }

  local.exec_nanos += NowNanos() - t0;
  if (stats != nullptr) stats->Add(local);
  return out;
}

Result<DeltaRows> ViewPrograms::ExecuteCompensation(
    size_t delta_term, const DeltaRowRefs& delta_rows, size_t other_term,
    const CsnRange& other_range, int64_t sign, ExecStats* stats) {
  if (!compiled(delta_term)) {
    return Status::NotSupported("term " + std::to_string(delta_term) +
                                " of " + owner_ + " is not compiled");
  }
  const DeltaProgram& p = *programs_[delta_term];
  if (p.groups.size() != 1 || p.groups[0].window == nullptr ||
      other_term >= tables_.size() ||
      p.groups[0].hj->spec().members[0].table != tables_[other_term]) {
    return Status::NotSupported("compensation shape of " + owner_ +
                                " is not compiled");
  }
  const uint64_t t0 = NowNanos();
  ExecStats local;
  local.queries = 1;
  local.compiled_queries = 1;

  Result<DeltaWindowIndex::ProbeGuard> g =
      p.groups[0].window->EnsureWindow(db_, other_range, &local);
  if (!g.ok()) return g.status();
  const DeltaWindowIndex::ProbeGuard& guard = g.value();

  DeltaRows out;
  JoinKey key;
  std::vector<const Tuple*> match(1);
  for (const DeltaRow* dr : delta_rows) {
    local.input_rows++;
    local.compiled_probe_rows++;
    const Tuple& d = dr->tuple;
    if (!p.delta_pred.empty() && !p.delta_pred.Admits(d)) continue;
    bool admitted = true;
    for (const DeltaProgram::Check& c : p.delta_checks) {
      if (!PassesCheck(c, d, match)) {
        admitted = false;
        break;
      }
    }
    if (!admitted) continue;

    key.values.clear();
    const std::vector<size_t>& dc = p.groups[0].delta_cols;
    key.values.reserve(dc.size());
    for (size_t c : dc) key.values.push_back(d[c]);
    const std::vector<DeltaWindowIndex::Row>* list = guard.Lookup(key);
    if (list == nullptr || list->empty()) {
      local.half_join_misses++;
      continue;
    }
    local.half_join_hits++;

    const int64_t base_count = dr->count * sign;
    for (const DeltaWindowIndex::Row& w : *list) {
      local.compiled_kernel_evals++;
      const int64_t count = base_count * w.count;
      if (count == 0) continue;
      match[0] = &w.tuple;
      bool pass = true;
      for (const DeltaProgram::Check& c : p.cross_checks) {
        if (!PassesCheck(c, d, match)) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      Tuple t;
      t.reserve(p.projection.size());
      for (const DeltaProgram::OutCol& oc : p.projection) {
        t.push_back(oc.src == 0 ? d[oc.col] : (*match[0])[oc.col]);
      }
      // The executor's combination rules for delta-delta joins: counts
      // multiply, timestamps take the min (null absorbs).
      out.emplace_back(std::move(t), count, MinTimestamp(dr->ts, w.ts));
      local.output_rows++;
    }
  }

  local.exec_nanos += NowNanos() - t0;
  if (stats != nullptr) stats->Add(local);
  return out;
}

void ViewPrograms::Reset() {
  for (const std::shared_ptr<HalfJoinView>& hj : half_joins_) hj->Reset();
  for (const auto& p : programs_) {
    if (p == nullptr) continue;
    for (const DeltaProgram::GroupProbe& gp : p->groups) {
      if (gp.window != nullptr) gp.window->Reset();
    }
  }
}

uint64_t ViewPrograms::half_join_rows() const {
  uint64_t n = 0;
  for (const auto& hj : half_joins_) n += hj->resident_rows();
  for (const auto& p : programs_) {
    if (p == nullptr) continue;
    for (const DeltaProgram::GroupProbe& gp : p->groups) {
      if (gp.window != nullptr) n += gp.window->resident_rows();
    }
  }
  return n;
}

uint64_t ViewPrograms::half_join_bytes() const {
  uint64_t n = 0;
  for (const auto& hj : half_joins_) n += hj->resident_bytes();
  for (const auto& p : programs_) {
    if (p == nullptr) continue;
    for (const DeltaProgram::GroupProbe& gp : p->groups) {
      if (gp.window != nullptr) n += gp.window->resident_bytes();
    }
  }
  return n;
}

// --------------------------------------------------------------------------
// ViewPrograms -- dump

std::string ViewPrograms::Dump() const {
  std::ostringstream os;
  os << "== compiled delta programs: " << owner_ << " ==\n";

  // Map half-join pointers back to their slot for stable references.
  std::unordered_map<const HalfJoinView*, size_t> hj_slot;
  for (size_t h = 0; h < half_joins_.size(); ++h) {
    hj_slot[half_joins_[h].get()] = h;
  }

  for (size_t h = 0; h < half_joins_.size(); ++h) {
    const HalfJoinView& hj = *half_joins_[h];
    const HalfJoinSpec& spec = hj.spec();
    os << "half_join[" << h << "]: members=[";
    for (size_t m = 0; m < hj.member_names().size(); ++m) {
      if (m) os << " ";
      os << hj.member_names()[m];
    }
    os << "] joins=[";
    for (size_t j = 0; j < spec.joins.size(); ++j) {
      if (j) os << " ";
      os << "m" << spec.joins[j].left_term << ".c" << spec.joins[j].left_col
         << "=m" << spec.joins[j].right_term << ".c"
         << spec.joins[j].right_col;
    }
    os << "] key=[";
    for (size_t k = 0; k < spec.index_cols.size(); ++k) {
      if (k) os << " ";
      os << "c" << spec.index_cols[k];
    }
    os << "] residual="
       << (spec.residual ? spec.residual->ToString() : "(none)") << "\n";
  }

  auto addr = [](uint8_t src, uint32_t col) {
    std::ostringstream a;
    if (src == 0) {
      a << "d.c" << col;
    } else {
      a << "g" << (src - 1) << ".c" << col;
    }
    return a.str();
  };
  auto check_str = [&](const DeltaProgram::Check& c) {
    std::ostringstream a;
    a << addr(c.a_src, c.a_col) << " " << CmpOpStr(c.op) << " ";
    if (c.vs_literal) {
      a << Expr::Literal(c.literal)->ToString();
    } else {
      a << addr(c.b_src, c.b_col);
    }
    if (c.null_eq) a << " [null_eq]";
    return a.str();
  };

  for (size_t i = 0; i < programs_.size(); ++i) {
    os << "program[" << i << "]: delta=" << table_names_[i] << "\n";
    if (programs_[i] == nullptr) {
      os << "  status: interpreted (" << reasons_[i] << ")\n";
      continue;
    }
    const DeltaProgram& p = *programs_[i];
    os << "  status: compiled\n";
    os << "  delta_pred:";
    if (p.delta_pred.simple.empty()) {
      os << " (none)";
    } else {
      for (size_t s = 0; s < p.delta_pred.simple.size(); ++s) {
        const CompiledPred::Simple& sp = p.delta_pred.simple[s];
        os << (s ? " AND " : " ")
           << Expr::Compare(sp.op, Expr::Column(sp.col),
                            Expr::Literal(sp.lit))
                  ->ToString();
      }
    }
    os << "\n  delta_checks:";
    if (p.delta_checks.empty()) {
      os << " (none)";
    } else {
      for (size_t c = 0; c < p.delta_checks.size(); ++c) {
        os << (c ? " AND " : " ") << check_str(p.delta_checks[c]);
      }
    }
    os << "\n";
    for (size_t g = 0; g < p.groups.size(); ++g) {
      os << "  probe: g" << g << " <- half_join["
         << hj_slot.at(p.groups[g].hj.get()) << "] on d(";
      for (size_t c = 0; c < p.groups[g].delta_cols.size(); ++c) {
        if (c) os << " ";
        os << "c" << p.groups[g].delta_cols[c];
      }
      os << ")\n";
    }
    os << "  cross_checks:";
    if (p.cross_checks.empty()) {
      os << " (none)";
    } else {
      for (size_t c = 0; c < p.cross_checks.size(); ++c) {
        os << (c ? " AND " : " ") << check_str(p.cross_checks[c]);
      }
    }
    os << "\n  project:";
    for (const DeltaProgram::OutCol& oc : p.projection) {
      os << " " << addr(oc.src, oc.col);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace rollview
