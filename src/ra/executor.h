// Copyright 2026 The rollview Authors.
//
// JoinExecutor: evaluates a JoinQuery against a Db.
//
// Strategy: greedy left-deep join starting from the smallest materialized
// (kRows) term. Each next term is chosen among terms connected to the bound
// set by at least one equi-join predicate; a base term whose join column is
// hash-indexed is fetched by per-row index probes (the common case for
// propagation queries: small delta range driving lookups into large base
// tables), otherwise the term is materialized and hash-joined. Disconnected
// terms fall back to a cartesian product.
//
// Current-state base reads require `txn` to hold (at least) an S lock on
// the table; the executor acquires it if the caller has not.

#ifndef ROLLVIEW_RA_EXECUTOR_H_
#define ROLLVIEW_RA_EXECUTOR_H_

#include <vector>

#include "common/result.h"
#include "ra/join_query.h"
#include "storage/db.h"

namespace rollview {

class JoinExecutor {
 public:
  explicit JoinExecutor(Db* db) : db_(db) {}

  // Evaluates `query`. `txn` is required iff any term is kBaseCurrent.
  // `stats`, if non-null, is incremented with this execution's work.
  Result<DeltaRows> Execute(const JoinQuery& query, Txn* txn,
                            ExecStats* stats = nullptr);

 private:
  Db* db_;
};

}  // namespace rollview

#endif  // ROLLVIEW_RA_EXECUTOR_H_
