// Copyright 2026 The rollview Authors.
//
// JoinExecutor: evaluates a JoinQuery against a Db.
//
// Strategy: greedy left-deep join starting from the smallest *admitted*
// (post-pushdown) materialized kRows term. Each next term is chosen among
// terms connected to the bound set by at least one equi-join predicate:
//
//  * snapshot-keyed base terms (kBaseSnapshot, or kBaseCurrent covered by
//    JoinQuery::current_snapshot_hint) join through the engine's BuildCache
//    when a cached build is resident or the driving side is large enough to
//    amortize one -- the cached hash table is shared by every propagation
//    query at the same (table, last-change CSN, join columns, pushed
//    predicate);
//  * otherwise a base term whose join column is hash-indexed is fetched by
//    per-row index probes (small delta driving lookups into a large base
//    table);
//  * otherwise the term is materialized and hash-joined; disconnected terms
//    fall back to a cartesian product.
//
// Zero-copy contract: input tuples are *borrowed* wherever their storage
// outlives the query -- kRows tuples in place from the caller's DeltaRows,
// cache-served tuples from the pinned immutable entry -- and only probe /
// uncached-scan results are deep-copied into executor-owned storage.
// ExecStats::rows_copied / rows_borrowed account the split.
//
// Current-state base reads require `txn` to hold (at least) an S lock on
// the table; the executor acquires it if the caller has not.

#ifndef ROLLVIEW_RA_EXECUTOR_H_
#define ROLLVIEW_RA_EXECUTOR_H_

#include <vector>

#include "common/result.h"
#include "ra/build_cache.h"
#include "ra/join_query.h"
#include "storage/db.h"

namespace rollview {

class JoinExecutor {
 public:
  // Uses the engine's shared BuildCache (nullptr when disabled).
  explicit JoinExecutor(Db* db) : db_(db), cache_(db->build_cache()) {}
  // Explicit cache override; pass nullptr to force uncached execution.
  JoinExecutor(Db* db, BuildCache* cache) : db_(db), cache_(cache) {}

  // Once the driving partial-row set is at least this large, a snapshot-
  // keyed term is joined through a (new) cached build instead of per-row
  // index probes; below it, a build is only used when already resident.
  static constexpr size_t kCachedBuildThreshold = 64;

  // Evaluates `query`. `txn` is required iff any term is kBaseCurrent.
  // `stats`, if non-null, is incremented with this execution's work.
  Result<DeltaRows> Execute(const JoinQuery& query, Txn* txn,
                            ExecStats* stats = nullptr);

 private:
  Db* db_;
  BuildCache* cache_;
};

}  // namespace rollview

#endif  // ROLLVIEW_RA_EXECUTOR_H_
