#include "ra/compiled_pred.h"

#include <utility>

namespace rollview {

void CollectConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out) {
  if (e == nullptr) return;
  if (e->kind() == Expr::Kind::kAnd) {
    CollectConjuncts(e->lhs(), out);
    CollectConjuncts(e->rhs(), out);
  } else {
    out->push_back(e);
  }
}

ExprPtr AndTogether(ExprPtr a, ExprPtr b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  return Expr::And(std::move(a), std::move(b));
}

Expr::CmpOp MirrorCmp(Expr::CmpOp op) {
  switch (op) {
    case Expr::CmpOp::kLt: return Expr::CmpOp::kGt;
    case Expr::CmpOp::kLe: return Expr::CmpOp::kGe;
    case Expr::CmpOp::kGt: return Expr::CmpOp::kLt;
    case Expr::CmpOp::kGe: return Expr::CmpOp::kLe;
    default: return op;  // kEq / kNe are symmetric
  }
}

CompiledPred CompilePred(const ExprPtr& pred) {
  CompiledPred out;
  if (pred == nullptr) return out;
  std::vector<ExprPtr> conjuncts;
  CollectConjuncts(pred, &conjuncts);
  for (ExprPtr& c : conjuncts) {
    if (c->kind() == Expr::Kind::kCompare) {
      const ExprPtr& l = c->lhs();
      const ExprPtr& r = c->rhs();
      if (l->kind() == Expr::Kind::kColumn &&
          r->kind() == Expr::Kind::kLiteral) {
        out.simple.push_back(
            CompiledPred::Simple{l->column_index(), c->cmp_op(), r->literal()});
        continue;
      }
      if (l->kind() == Expr::Kind::kLiteral &&
          r->kind() == Expr::Kind::kColumn) {
        out.simple.push_back(CompiledPred::Simple{
            r->column_index(), MirrorCmp(c->cmp_op()), l->literal()});
        continue;
      }
    }
    out.rest = AndTogether(std::move(out.rest), std::move(c));
  }
  return out;
}

}  // namespace rollview
