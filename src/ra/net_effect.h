// Copyright 2026 The rollview Authors.
//
// The net-effect operator phi (paper Definition 4.1) and delta-algebra
// helpers. phi maps equivalent delta tables to a canonical form: group on
// all attributes except count and timestamp, sum counts, null the timestamp,
// drop zero-count groups.
//
// These functions are the vocabulary of the correctness tests (the timed-
// delta-table invariant of Definition 4.2) and of the apply driver, which
// merges selected view-delta rows into the materialized view.

#ifndef ROLLVIEW_RA_NET_EFFECT_H_
#define ROLLVIEW_RA_NET_EFFECT_H_

#include <unordered_map>
#include <vector>

#include "schema/tuple.h"

namespace rollview {

using CountMap = std::unordered_map<Tuple, int64_t, TupleHasher>;

// Aggregates rows into tuple -> net count (zero-count entries removed).
CountMap ToCountMap(const DeltaRows& rows);

// phi(R): canonical form, sorted by tuple for deterministic comparison.
DeltaRows NetEffect(const DeltaRows& rows);

// -R: negates every count (paper Sec. 2).
DeltaRows Negate(DeltaRows rows);

// Multiset union R + S (concatenation; no normalization).
DeltaRows Union(DeltaRows a, const DeltaRows& b);

// True iff phi(a) == phi(b).
bool NetEquivalent(const DeltaRows& a, const DeltaRows& b);

// Lifts a plain multiset of tuples (e.g. a snapshot scan) into delta-row
// form: each tuple with count +1, null timestamp.
DeltaRows FromTuples(const std::vector<Tuple>& tuples);

// phi(state + delta): the result of applying a delta to a state.
DeltaRows ApplyDelta(const DeltaRows& state, const DeltaRows& delta);

}  // namespace rollview

#endif  // ROLLVIEW_RA_NET_EFFECT_H_
