#include "ra/expr.h"

#include <algorithm>

namespace rollview {

ExprPtr Expr::Column(size_t index) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kColumn));
  e->column_index_ = index;
  return e;
}

ExprPtr Expr::Literal(Value v) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kLiteral));
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::Compare(CmpOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kCompare));
  e->cmp_op_ = op;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

ExprPtr Expr::And(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kAnd));
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

ExprPtr Expr::Or(ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kOr));
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

ExprPtr Expr::Not(ExprPtr operand) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kNot));
  e->lhs_ = std::move(operand);
  return e;
}

ExprPtr Expr::Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr(Kind::kArith));
  e->arith_op_ = op;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

namespace {

Value EvalArith(Expr::ArithOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  bool integral =
      a.type() == ValueType::kInt64 && b.type() == ValueType::kInt64;
  if (a.type() == ValueType::kString || b.type() == ValueType::kString) {
    return Value::Null();  // arithmetic is numeric-only
  }
  if (integral) {
    int64_t x = a.AsInt64();
    int64_t y = b.AsInt64();
    switch (op) {
      case Expr::ArithOp::kAdd:
        return Value(x + y);
      case Expr::ArithOp::kSub:
        return Value(x - y);
      case Expr::ArithOp::kMul:
        return Value(x * y);
      case Expr::ArithOp::kDiv:
        return y == 0 ? Value::Null() : Value(x / y);
      case Expr::ArithOp::kMod:
        return y == 0 ? Value::Null() : Value(x % y);
    }
    return Value::Null();
  }
  double x = a.NumericValue();
  double y = b.NumericValue();
  switch (op) {
    case Expr::ArithOp::kAdd:
      return Value(x + y);
    case Expr::ArithOp::kSub:
      return Value(x - y);
    case Expr::ArithOp::kMul:
      return Value(x * y);
    case Expr::ArithOp::kDiv:
      return y == 0.0 ? Value::Null() : Value(x / y);
    case Expr::ArithOp::kMod:
      return Value::Null();  // modulo is integral-only
  }
  return Value::Null();
}

}  // namespace

Value Expr::Eval(const Tuple& tuple) const {
  switch (kind_) {
    case Kind::kColumn:
      return tuple[column_index_];
    case Kind::kLiteral:
      return literal_;
    case Kind::kCompare: {
      Value a = lhs_->Eval(tuple);
      Value b = rhs_->Eval(tuple);
      if (a.is_null() || b.is_null()) return Value(int64_t{0});
      bool r = false;
      switch (cmp_op_) {
        case CmpOp::kEq:
          r = (a == b);
          break;
        case CmpOp::kNe:
          r = (a != b);
          break;
        case CmpOp::kLt:
          r = (a < b);
          break;
        case CmpOp::kLe:
          r = (a <= b);
          break;
        case CmpOp::kGt:
          r = (a > b);
          break;
        case CmpOp::kGe:
          r = (a >= b);
          break;
      }
      return Value(static_cast<int64_t>(r));
    }
    case Kind::kAnd:
      return Value(static_cast<int64_t>(lhs_->EvalBool(tuple) &&
                                        rhs_->EvalBool(tuple)));
    case Kind::kOr:
      return Value(static_cast<int64_t>(lhs_->EvalBool(tuple) ||
                                        rhs_->EvalBool(tuple)));
    case Kind::kNot:
      return Value(static_cast<int64_t>(!lhs_->EvalBool(tuple)));
    case Kind::kArith:
      return EvalArith(arith_op_, lhs_->Eval(tuple), rhs_->Eval(tuple));
  }
  return Value();
}

bool Expr::EvalBool(const Tuple& tuple) const {
  Value v = Eval(tuple);
  if (v.is_null()) return false;
  return v.NumericValue() != 0.0;
}

size_t Expr::MaxColumnIndex() const {
  size_t max = SIZE_MAX;
  auto fold = [&max](size_t v) {
    if (v == SIZE_MAX) return;
    if (max == SIZE_MAX || v > max) max = v;
  };
  switch (kind_) {
    case Kind::kColumn:
      return column_index_;
    case Kind::kLiteral:
      return SIZE_MAX;
    default:
      if (lhs_) fold(lhs_->MaxColumnIndex());
      if (rhs_) fold(rhs_->MaxColumnIndex());
      return max;
  }
}

size_t Expr::MinColumnIndex() const {
  size_t min = SIZE_MAX;
  auto fold = [&min](size_t v) {
    if (v < min) min = v;
  };
  switch (kind_) {
    case Kind::kColumn:
      return column_index_;
    case Kind::kLiteral:
      return SIZE_MAX;
    default:
      if (lhs_) fold(lhs_->MinColumnIndex());
      if (rhs_) fold(rhs_->MinColumnIndex());
      return min;
  }
}

ExprPtr Expr::ShiftColumns(size_t offset) const {
  switch (kind_) {
    case Kind::kColumn:
      return Column(column_index_ - offset);
    case Kind::kLiteral:
      return Literal(literal_);
    case Kind::kCompare:
      return Compare(cmp_op_, lhs_->ShiftColumns(offset),
                     rhs_->ShiftColumns(offset));
    case Kind::kAnd:
      return And(lhs_->ShiftColumns(offset), rhs_->ShiftColumns(offset));
    case Kind::kOr:
      return Or(lhs_->ShiftColumns(offset), rhs_->ShiftColumns(offset));
    case Kind::kNot:
      return Not(lhs_->ShiftColumns(offset));
    case Kind::kArith:
      return Arith(arith_op_, lhs_->ShiftColumns(offset),
                   rhs_->ShiftColumns(offset));
  }
  return nullptr;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case Kind::kColumn:
      return "$" + std::to_string(column_index_);
    case Kind::kLiteral:
      return literal_.ToString();
    case Kind::kCompare: {
      const char* op = "?";
      switch (cmp_op_) {
        case CmpOp::kEq:
          op = "=";
          break;
        case CmpOp::kNe:
          op = "<>";
          break;
        case CmpOp::kLt:
          op = "<";
          break;
        case CmpOp::kLe:
          op = "<=";
          break;
        case CmpOp::kGt:
          op = ">";
          break;
        case CmpOp::kGe:
          op = ">=";
          break;
      }
      return "(" + lhs_->ToString() + " " + op + " " + rhs_->ToString() + ")";
    }
    case Kind::kAnd:
      return "(" + lhs_->ToString() + " AND " + rhs_->ToString() + ")";
    case Kind::kOr:
      return "(" + lhs_->ToString() + " OR " + rhs_->ToString() + ")";
    case Kind::kNot:
      return "(NOT " + lhs_->ToString() + ")";
    case Kind::kArith: {
      const char* op = "?";
      switch (arith_op_) {
        case ArithOp::kAdd:
          op = "+";
          break;
        case ArithOp::kSub:
          op = "-";
          break;
        case ArithOp::kMul:
          op = "*";
          break;
        case ArithOp::kDiv:
          op = "/";
          break;
        case ArithOp::kMod:
          op = "%";
          break;
      }
      return "(" + lhs_->ToString() + " " + op + " " + rhs_->ToString() + ")";
    }
  }
  return "?";
}

}  // namespace rollview
