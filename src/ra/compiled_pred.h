// Copyright 2026 The rollview Authors.
//
// CompiledPred: a selection predicate flattened for per-row evaluation.
// Conjuncts of the shape `Column <op> Literal` (or mirrored) run as direct
// Value comparisons -- no Expr-tree recursion, no per-row Value copies --
// which matters because this runs on every raw row of every delta range a
// query materializes. Anything else falls back to the Expr interpreter via
// the `rest` conjunct. Shared by the interpreted executor's pushdown filters
// (ra/executor.cc) and the compiled delta programs (ra/delta_program.h),
// which extend it with column-vs-column kernels over concatenated tuples.

#ifndef ROLLVIEW_RA_COMPILED_PRED_H_
#define ROLLVIEW_RA_COMPILED_PRED_H_

#include <vector>

#include "ra/expr.h"
#include "schema/tuple.h"

namespace rollview {

// Flattens a conjunction tree into its conjuncts (no-op on null).
void CollectConjuncts(const ExprPtr& e, std::vector<ExprPtr>* out);

// Conjunction of two optional predicates (null = true).
ExprPtr AndTogether(ExprPtr a, ExprPtr b);

// The comparison with operands swapped (kEq/kNe are symmetric).
Expr::CmpOp MirrorCmp(Expr::CmpOp op);

struct CompiledPred {
  struct Simple {
    size_t col;
    Expr::CmpOp op;
    Value lit;
  };
  std::vector<Simple> simple;
  ExprPtr rest;  // conjuncts the fast path cannot represent (may be null)

  bool empty() const { return simple.empty() && rest == nullptr; }

  bool Admits(const Tuple& t) const {
    for (const Simple& s : simple) {
      const Value& v = t[s.col];
      if (v.is_null()) return false;
      bool r = false;
      switch (s.op) {
        case Expr::CmpOp::kEq: r = (v == s.lit); break;
        case Expr::CmpOp::kNe: r = (v != s.lit); break;
        case Expr::CmpOp::kLt: r = (v < s.lit); break;
        case Expr::CmpOp::kLe: r = (v <= s.lit); break;
        case Expr::CmpOp::kGt: r = (v > s.lit); break;
        case Expr::CmpOp::kGe: r = (v >= s.lit); break;
      }
      if (!r) return false;
    }
    return rest == nullptr || rest->EvalBool(t);
  }
};

// Splits `pred` into column-vs-literal fast-path conjuncts and an
// interpreter-evaluated remainder.
CompiledPred CompilePred(const ExprPtr& pred);

// Evaluates one comparison between two already-fetched Values under the
// engine's NULL-propagates-as-false rule. Shared by CompiledPred::Admits
// and the delta-program residual kernels.
inline bool EvalCmp(Expr::CmpOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return false;
  switch (op) {
    case Expr::CmpOp::kEq: return a == b;
    case Expr::CmpOp::kNe: return a != b;
    case Expr::CmpOp::kLt: return a < b;
    case Expr::CmpOp::kLe: return a <= b;
    case Expr::CmpOp::kGt: return a > b;
    case Expr::CmpOp::kGe: return a >= b;
  }
  return false;
}

}  // namespace rollview

#endif  // ROLLVIEW_RA_COMPILED_PRED_H_
