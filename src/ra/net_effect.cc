#include "ra/net_effect.h"

#include <algorithm>

namespace rollview {

CountMap ToCountMap(const DeltaRows& rows) {
  CountMap map;
  map.reserve(rows.size());
  for (const DeltaRow& r : rows) {
    auto [it, inserted] = map.try_emplace(r.tuple, r.count);
    if (!inserted) {
      it->second += r.count;
      if (it->second == 0) map.erase(it);
    } else if (r.count == 0) {
      map.erase(it);
    }
  }
  return map;
}

namespace {

bool TupleLess(const Tuple& a, const Tuple& b) {
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

DeltaRows FromCountMap(const CountMap& map) {
  DeltaRows out;
  out.reserve(map.size());
  for (const auto& [tuple, count] : map) {
    out.emplace_back(tuple, count, kNullCsn);
  }
  std::sort(out.begin(), out.end(), [](const DeltaRow& a, const DeltaRow& b) {
    return TupleLess(a.tuple, b.tuple);
  });
  return out;
}

}  // namespace

DeltaRows NetEffect(const DeltaRows& rows) {
  return FromCountMap(ToCountMap(rows));
}

DeltaRows Negate(DeltaRows rows) {
  for (DeltaRow& r : rows) r.count = -r.count;
  return rows;
}

DeltaRows Union(DeltaRows a, const DeltaRows& b) {
  a.insert(a.end(), b.begin(), b.end());
  return a;
}

bool NetEquivalent(const DeltaRows& a, const DeltaRows& b) {
  CountMap ma = ToCountMap(a);
  CountMap mb = ToCountMap(b);
  if (ma.size() != mb.size()) return false;
  for (const auto& [tuple, count] : ma) {
    auto it = mb.find(tuple);
    if (it == mb.end() || it->second != count) return false;
  }
  return true;
}

DeltaRows FromTuples(const std::vector<Tuple>& tuples) {
  DeltaRows out;
  out.reserve(tuples.size());
  for (const Tuple& t : tuples) {
    out.emplace_back(t, +1, kNullCsn);
  }
  return out;
}

DeltaRows ApplyDelta(const DeltaRows& state, const DeltaRows& delta) {
  return NetEffect(Union(DeltaRows(state), delta));
}

}  // namespace rollview
