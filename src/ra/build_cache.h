// Copyright 2026 The rollview Authors.
//
// BuildCache: memoized build-side state for propagation queries.
//
// Every query of a propagation step scans the same base tables at the same
// snapshot (either an explicit kBaseSnapshot CSN or, for current-state
// terms executed under a table-S lock, the stable CSN the lock freezes --
// see JoinQuery::current_snapshot_hint). Rebuilding the scan/hash-build of
// those tables per query is the dominant constant factor of the hot path.
// A BuildCache entry memoizes the admitted tuples (and, when join columns
// are given, the hash index over them) for one
//
//   (table, snapshot_csn, join_cols, pushed-predicate fingerprint)
//
// key. Entries are immutable once built -- snapshots never change -- and
// are handed out as shared_ptr<const Entry>, so the executor borrows tuple
// references from an entry for the duration of a query with zero copies,
// and eviction can never invalidate an in-flight borrower.
//
// Eviction: LRU over an approximate byte budget. Invalidation: entries own
// their tuples, so garbage collection cannot dangle them; InvalidateBelow
// instead exists so the cache never *serves* a snapshot the version store
// can no longer reproduce -- after GC at horizon h, a miss at csn < h would
// rebuild from a partially collected history and silently diverge from the
// cached (correct) entry. Dropping those entries keeps the invariant that
// cached and uncached execution are observationally identical.
//
// Thread safety: all operations take an internal mutex; builds run outside
// it (concurrent builders of the same key race benignly -- the loser's
// entry is dropped and the winner's is returned).

#ifndef ROLLVIEW_RA_BUILD_CACHE_H_
#define ROLLVIEW_RA_BUILD_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/csn.h"
#include "common/result.h"
#include "schema/tuple.h"
#include "storage/ids.h"

namespace rollview {

namespace obs {
class MetricsRegistry;
}  // namespace obs

// Composite equi-join key: the values of several columns hashed together.
// Shared by the executor's ad-hoc hash joins and cached build indexes.
struct JoinKey {
  std::vector<Value> values;

  friend bool operator==(const JoinKey& a, const JoinKey& b) {
    return a.values == b.values;
  }
};

struct JoinKeyHasher {
  size_t operator()(const JoinKey& k) const {
    size_t h = 0x243f6a8885a308d3ULL;
    for (const Value& v : k.values) {
      h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

// Approximate heap footprint of a tuple (used for cache budgeting and the
// borrowed/copied byte accounting in ExecStats).
size_t TupleApproxBytes(const Tuple& t);

class BuildCache {
 public:
  struct Key {
    TableId table = kInvalidTableId;
    Csn snapshot_csn = kNullCsn;
    // Columns the entry's hash index covers; empty = plain filtered scan.
    std::vector<size_t> join_cols;
    // Canonical text of the pushed-down single-term predicate ("" = none).
    // The full text -- not a hash -- is the key component, so distinct
    // predicates can never alias to the same entry.
    std::string pred_fingerprint;

    friend bool operator==(const Key& a, const Key& b) {
      return a.table == b.table && a.snapshot_csn == b.snapshot_csn &&
             a.join_cols == b.join_cols &&
             a.pred_fingerprint == b.pred_fingerprint;
    }
  };

  struct KeyHasher {
    size_t operator()(const Key& k) const;
  };

  // Immutable after Build returns it to the cache. `tuples` addresses are
  // stable for the entry's lifetime (the vector is never resized again), so
  // borrowers may hold `const Tuple*` into it while they hold the entry.
  struct Entry {
    std::vector<Tuple> tuples;  // admitted rows, in version-store scan order
    // join-key -> slots into `tuples`; empty when the key has no join_cols.
    std::unordered_map<JoinKey, std::vector<uint32_t>, JoinKeyHasher> index;
    size_t bytes = 0;        // approximate footprint (filled by the cache)
    uint64_t build_nanos = 0;  // wall time of the builder callback
  };

  struct Lookup {
    std::shared_ptr<const Entry> entry;
    bool hit = false;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t builds = 0;         // successful builder runs (>= inserts)
    uint64_t evictions = 0;      // entries dropped by the byte budget
    uint64_t invalidations = 0;  // entries dropped by invalidation calls
    uint64_t build_nanos = 0;    // total time spent in builders
  };

  using Builder = std::function<Status(Entry*)>;

  // `byte_budget` bounds resident entry bytes (approximate; a single entry
  // larger than the budget is still admitted and evicted on the next
  // insert).
  explicit BuildCache(size_t byte_budget) : byte_budget_(byte_budget) {}

  BuildCache(const BuildCache&) = delete;
  BuildCache& operator=(const BuildCache&) = delete;

  // Returns the cached entry for `key`, building it via `builder` on a
  // miss. The builder populates Entry::tuples (and Entry::index when the
  // key has join_cols); bytes and build_nanos are filled in here.
  Result<Lookup> GetOrBuild(const Key& key, const Builder& builder);

  // Entry lookup without building, LRU promotion, or stats impact -- the
  // executor's plan chooser uses this to prefer a resident build over
  // per-row index probes.
  std::shared_ptr<const Entry> Peek(const Key& key) const;

  // Admission test for probe-able terms: true when a build for `key` is
  // already resident, or when this is at least the second request for it.
  // One query with a small driving side can never amortize a build, but a
  // repeat request proves the key recurs across the propagation run (the
  // same snapshot serves every step), so building then pays for itself --
  // admit-on-second-touch. Touch counts are bookkeeping only: no LRU
  // promotion, no hit/miss stats, dropped wholesale when the table grows
  // past a fixed bound.
  bool ShouldBuildForProbe(const Key& key);

  // Drops entries whose snapshot is strictly below `horizon` (the GC hook:
  // those snapshots are no longer rebuildable from the version store), and
  // raises the admission floor so a build already in flight OUTSIDE the
  // lock (GetOrBuild builds unlocked) cannot re-insert an entry keyed at a
  // collected snapshot after this call returns. Without the floor, a
  // concurrent partition strip racing GC can admit an entry the version
  // store can no longer reproduce, which later lookups would trust.
  void InvalidateBelow(Csn horizon);
  // Drops every entry of `table`.
  void InvalidateTable(TableId table);
  void Clear();

  size_t resident_bytes() const;
  size_t entry_count() const;

  // Registers the cache-wide counters (rollview_build_cache_events_total
  // by event, build nanos) and residency gauges. The caller must
  // DropOwner(owner) on the registry before this cache dies.
  void RegisterMetrics(obs::MetricsRegistry* registry,
                       const void* owner) const;
  size_t byte_budget() const { return byte_budget_; }
  Stats stats() const;

 private:
  struct Slot {
    Key key;
    std::shared_ptr<const Entry> entry;
    std::list<const Slot*>::iterator lru_pos;
  };

  // Removes `it`'s slot from the map, LRU list, and byte count. Caller
  // holds mu_.
  void EraseLocked(std::unordered_map<Key, Slot, KeyHasher>::iterator it);

  size_t byte_budget_;
  mutable std::mutex mu_;
  std::unordered_map<Key, Slot, KeyHasher> entries_;
  // Front = most recently used. Values point at the owning map slots.
  std::list<const Slot*> lru_;
  // Request counts for keys not (yet) resident; see ShouldBuildForProbe.
  std::unordered_map<Key, uint32_t, KeyHasher> touches_;
  size_t resident_bytes_ = 0;
  // Snapshots below this are not servable or admittable (see
  // InvalidateBelow); monotone.
  Csn invalid_below_ = kNullCsn;
  Stats stats_;
};

}  // namespace rollview

#endif  // ROLLVIEW_RA_BUILD_CACHE_H_
