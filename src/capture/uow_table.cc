#include "capture/uow_table.h"

#include <algorithm>
#include <cassert>

namespace rollview {

void UowTable::Record(TxnId txn, Csn csn, WallTime commit_time) {
  std::lock_guard<std::mutex> lk(mu_);
  auto [it, inserted] = by_txn_.try_emplace(txn, csn);
  if (!inserted) {
    assert(it->second == csn && "transaction recorded with two CSNs");
    return;
  }
  entries_.emplace(csn, Entry{txn, csn, commit_time});
}

std::optional<UowTable::Entry> UowTable::LookupTxn(TxnId txn) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = by_txn_.find(txn);
  if (it == by_txn_.end()) return std::nullopt;
  auto eit = entries_.find(it->second);
  if (eit == entries_.end()) return std::nullopt;
  return eit->second;
}

std::optional<UowTable::Entry> UowTable::LookupCsn(Csn csn) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(csn);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

Csn UowTable::CsnAtOrBefore(WallTime t) const {
  std::lock_guard<std::mutex> lk(mu_);
  // Commit times are non-decreasing in CSN order (both recording paths
  // stamp the time under the commit mutex), so scan from the largest CSN
  // down to the first entry at or before t. Typical queries target the
  // recent past, so this walk is short.
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    if (it->second.commit_time <= t) return it->first;
  }
  return kNullCsn;
}

size_t UowTable::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

}  // namespace rollview
