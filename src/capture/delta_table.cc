#include "capture/delta_table.h"

#include <algorithm>
#include <cassert>
#include <mutex>

namespace rollview {

void DeltaTable::Append(DeltaRow row) {
  std::unique_lock<std::shared_mutex> lk(latch_);
  if (ts_sorted_) {
    assert(row.ts >= max_ts_ && "ts_sorted delta table appended out of order");
  }
  if (row.ts > max_ts_) max_ts_ = row.ts;
  rows_.push_back(std::move(row));
}

void DeltaTable::AppendBatch(std::vector<DeltaRow> rows) {
  std::unique_lock<std::shared_mutex> lk(latch_);
  for (DeltaRow& row : rows) {
    if (ts_sorted_) {
      assert(row.ts >= max_ts_ &&
             "ts_sorted delta table appended out of order");
    }
    if (row.ts > max_ts_) max_ts_ = row.ts;
    rows_.push_back(std::move(row));
  }
}

size_t DeltaTable::LowerBound(Csn bound) const {
  // First index with ts > bound.
  auto it = std::upper_bound(
      rows_.begin(), rows_.end(), bound,
      [](Csn b, const DeltaRow& r) { return b < r.ts; });
  return static_cast<size_t>(it - rows_.begin());
}

DeltaRows DeltaTable::Scan(const CsnRange& range) const {
  std::shared_lock<std::shared_mutex> lk(latch_);
  DeltaRows out;
  if (range.empty()) return out;
  if (ts_sorted_) {
    size_t begin = LowerBound(range.lo);
    size_t end = LowerBound(range.hi);
    out.assign(rows_.begin() + static_cast<ptrdiff_t>(begin),
               rows_.begin() + static_cast<ptrdiff_t>(end));
  } else {
    for (const DeltaRow& r : rows_) {
      if (range.Contains(r.ts)) out.push_back(r);
    }
  }
  return out;
}

DeltaRows DeltaTable::ScanAll() const {
  std::shared_lock<std::shared_mutex> lk(latch_);
  return DeltaRows(rows_.begin(), rows_.end());
}

DeltaRowRefs DeltaTable::ScanRefs(const CsnRange& range, Pin* pin) const {
  return ScanRefs(range, nullptr, pin);
}

DeltaRowRefs DeltaTable::ScanRefs(const CsnRange& range,
                                  const DeltaPartitionFilter* filter,
                                  Pin* pin) const {
  // Pin before latching: once Prune (which holds the exclusive latch while
  // it checks pins) lets us through, the store can only grow.
  *pin = Pin(this);
  std::shared_lock<std::shared_mutex> lk(latch_);
  DeltaRowRefs out;
  if (range.empty()) return out;
  const bool filtered = filter != nullptr && filter->count > 1;
  if (ts_sorted_) {
    size_t begin = LowerBound(range.lo);
    size_t end = LowerBound(range.hi);
    out.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      if (!filtered || filter->Matches(rows_[i])) out.push_back(&rows_[i]);
    }
  } else {
    for (const DeltaRow& r : rows_) {
      if (range.Contains(r.ts) && (!filtered || filter->Matches(r))) {
        out.push_back(&r);
      }
    }
  }
  return out;
}

size_t DeltaTable::CountInRange(const CsnRange& range) const {
  return CountInRange(range, nullptr);
}

size_t DeltaTable::CountInRange(const CsnRange& range,
                                const DeltaPartitionFilter* filter) const {
  std::shared_lock<std::shared_mutex> lk(latch_);
  if (range.empty()) return 0;
  const bool filtered = filter != nullptr && filter->count > 1;
  if (ts_sorted_ && !filtered) {
    return LowerBound(range.hi) - LowerBound(range.lo);
  }
  size_t n = 0;
  if (ts_sorted_) {
    size_t begin = LowerBound(range.lo);
    size_t end = LowerBound(range.hi);
    for (size_t i = begin; i < end; ++i) {
      if (filter->Matches(rows_[i])) ++n;
    }
    return n;
  }
  for (const DeltaRow& r : rows_) {
    if (range.Contains(r.ts) && (!filtered || filter->Matches(r))) ++n;
  }
  return n;
}

Csn DeltaTable::TsAfterRows(Csn from, size_t rows, Csn cap) const {
  return TsAfterRows(from, rows, cap, nullptr);
}

Csn DeltaTable::TsAfterRows(Csn from, size_t rows, Csn cap,
                            const DeltaPartitionFilter* filter) const {
  std::shared_lock<std::shared_mutex> lk(latch_);
  assert(ts_sorted_);
  if (rows == 0) return from >= cap ? cap : from;
  const bool filtered = filter != nullptr && filter->count > 1;
  size_t begin = LowerBound(from);
  if (!filtered) {
    size_t target = begin + rows - 1;
    if (target >= rows_.size()) return cap;
    Csn ts = rows_[target].ts;
    return ts > cap ? cap : ts;
  }
  size_t seen = 0;
  for (size_t i = begin; i < rows_.size(); ++i) {
    if (rows_[i].ts > cap) return cap;
    if (filter->Matches(rows_[i]) && ++seen == rows) {
      return rows_[i].ts;
    }
  }
  return cap;
}

size_t DeltaTable::size() const {
  std::shared_lock<std::shared_mutex> lk(latch_);
  return rows_.size();
}

Csn DeltaTable::max_ts() const {
  std::shared_lock<std::shared_mutex> lk(latch_);
  return max_ts_;
}

size_t DeltaTable::Prune(Csn up_to) {
  std::unique_lock<std::shared_mutex> lk(latch_);
  // Defer while borrowed refs are outstanding; retention's next cycle will
  // reclaim. Checked under the exclusive latch: a reader pins before it
  // latches, so a pin we cannot see here belongs to a reader that has not
  // collected its refs yet and will see the post-prune store.
  if (pins_.load(std::memory_order_acquire) > 0) return 0;
  pruned_through_ = std::max(pruned_through_, up_to);
  size_t before = rows_.size();
  if (ts_sorted_) {
    size_t keep_from = LowerBound(up_to);
    rows_.erase(rows_.begin(), rows_.begin() + static_cast<ptrdiff_t>(keep_from));
  } else {
    rows_.erase(std::remove_if(rows_.begin(), rows_.end(),
                               [up_to](const DeltaRow& r) {
                                 return r.ts <= up_to;
                               }),
                rows_.end());
  }
  return before - rows_.size();
}

size_t DeltaTable::Clear() {
  std::unique_lock<std::shared_mutex> lk(latch_);
  assert(pins_.load(std::memory_order_acquire) == 0 &&
         "Clear with live Pins would dangle borrowed rows");
  size_t before = rows_.size();
  // Everything through max_ts_ is gone; historical-window consumers must
  // not trust scans below it after a Clear.
  pruned_through_ = std::max(pruned_through_, max_ts_);
  rows_.clear();
  max_ts_ = kNullCsn;
  return before;
}

Csn DeltaTable::pruned_through() const {
  std::shared_lock<std::shared_mutex> lk(latch_);
  return pruned_through_;
}

}  // namespace rollview
