#include "capture/log_capture.h"

#include <cassert>

namespace rollview {

LogCapture::LogCapture(Db* db, CaptureOptions options)
    : db_(db), options_(options) {}

LogCapture::~LogCapture() { Stop(); }

size_t LogCapture::Poll() {
  std::lock_guard<std::mutex> poll_lk(poll_mu_);
  FaultInjector* fi = db_->fault_injector();
  if (fi != nullptr && fi->MaybeCaptureLag()) {
    // Injected capture-lag spike: this poll consumes nothing, so the
    // high-water mark stalls and downstream WaitForCsn calls time out with
    // Busy -- the transient the maintenance drivers must absorb.
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.lag_stalls++;
    return 0;
  }
  std::vector<WalRecord> batch;
  Lsn next = db_->wal()->ReadFrom(cursor_, options_.batch_size, &batch);
  if (batch.empty()) return 0;

  uint64_t rows_published = 0;
  uint64_t txns_captured = 0;
  bool hwm_advanced = false;

  for (const WalRecord& rec : batch) {
    switch (rec.kind) {
      case WalRecord::Kind::kInsert:
      case WalRecord::Kind::kDelete: {
        // Only log-capture-mode tables are captured from the WAL; trigger-
        // mode tables publish their delta rows on the commit path.
        if (db_->capture_mode(rec.table) == CaptureMode::kLog) {
          pending_[rec.txn].push_back(PendingChange{
              rec.table, rec.tuple,
              rec.kind == WalRecord::Kind::kInsert ? int64_t{+1}
                                                   : int64_t{-1}});
        }
        break;
      }
      case WalRecord::Kind::kCommit: {
        auto it = pending_.find(rec.txn);
        if (it != pending_.end()) {
          for (PendingChange& ch : it->second) {
            db_->delta(ch.table)
                ->Append(DeltaRow(std::move(ch.tuple), ch.count,
                                  rec.commit_csn));
            ++rows_published;
          }
          // DPropR records only "relevant" transactions -- those that
          // changed a captured table (Sec. 5) -- using the commit timestamp
          // found in the log.
          db_->uow()->Record(rec.txn, rec.commit_csn, rec.commit_time);
          pending_.erase(it);
          ++txns_captured;
        }
        // The high-water mark advances on *every* commit: all changes with
        // CSN <= rec.commit_csn are now published.
        hwm_.store(rec.commit_csn, std::memory_order_release);
        hwm_advanced = true;
        break;
      }
      case WalRecord::Kind::kAbort:
        pending_.erase(rec.txn);
        break;
      case WalRecord::Kind::kCreateTable:
        break;  // catalog records matter to recovery, not to capture
      case WalRecord::Kind::kCreateView:
      case WalRecord::Kind::kViewDeltaAppend:
      case WalRecord::Kind::kViewCursor:
      case WalRecord::Kind::kViewApplied:
      case WalRecord::Kind::kViewCheckpoint:
        // View-maintenance durability records are recovery's concern; the
        // capture process only publishes *base-table* deltas. (A propagation
        // txn's kCommit still advances the high-water mark above, which is
        // correct: it changed no captured table.)
        break;
    }
  }

  cursor_ = next;
  if (options_.truncate_wal) db_->wal()->Truncate(cursor_);

  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.records_processed += batch.size();
    stats_.txns_captured += txns_captured;
    stats_.rows_published += rows_published;
  }
  if (hwm_advanced) {
    // Empty critical section: pairs with the predicate check in WaitForCsn
    // so a waiter cannot miss the advance between its check and its wait.
    { std::lock_guard<std::mutex> lk(hwm_mu_); }
    hwm_cv_.notify_all();
  }
  return batch.size();
}

void LogCapture::CatchUp() {
  // "Poll()==0" alone is not "done": an injected lag stall consumes
  // nothing while records remain, so check the cursor against the log end.
  while (true) {
    if (Poll() > 0) continue;
    std::lock_guard<std::mutex> lk(poll_mu_);
    if (cursor_ >= db_->wal()->next_lsn()) return;
  }
}

void LogCapture::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  thread_ = std::thread([this] { ThreadMain(); });
}

void LogCapture::Stop() {
  if (!running_.exchange(false)) return;
  stop_cv_.notify_all();
  {
    // Wake WaitForCsn sleepers so they notice running_ flipped and fall
    // back to inline polling instead of waiting out their full timeout.
    std::lock_guard<std::mutex> lk(hwm_mu_);
  }
  hwm_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void LogCapture::ThreadMain() {
  while (running_.load(std::memory_order_relaxed)) {
    size_t processed = Poll();
    if (processed == 0) {
      std::unique_lock<std::mutex> lk(stop_mu_);
      stop_cv_.wait_for(lk, options_.poll_period);
    }
  }
  // Final drain so Stop() leaves nothing behind.
  CatchUp();
}

Status LogCapture::WaitForCsn(Csn csn, std::chrono::milliseconds timeout) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  while (high_water_mark() < csn) {
    if (running_.load(std::memory_order_relaxed)) {
      // Background mode: block until Poll() advances the mark (or capture
      // stops, in which case fall through to inline polling).
      std::unique_lock<std::mutex> lk(hwm_mu_);
      bool woke = hwm_cv_.wait_until(lk, deadline, [&] {
        return high_water_mark() >= csn ||
               !running_.load(std::memory_order_relaxed);
      });
      if (!woke && high_water_mark() < csn) {
        return Status::Busy("capture did not reach csn " +
                            std::to_string(csn));
      }
      continue;
    }
    if (Poll() > 0) continue;
    // Nothing in the WAL and still behind: the CSN may not exist yet.
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::Busy("capture did not reach csn " + std::to_string(csn));
    }
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  return Status::OK();
}

LogCapture::Stats LogCapture::GetStats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return stats_;
}

}  // namespace rollview
