// Copyright 2026 The rollview Authors.
//
// DeltaTable: the materialized change stream for one base table (Delta^R in
// the paper) or for a view (the view delta). Rows carry the base schema plus
// the implicit (count, timestamp) attributes of DeltaRow.
//
// Two flavors, selected at construction:
//  * ts_sorted = true  -- base-table deltas. Rows are appended in commit
//    order (the capture process and the trigger-mode commit path both append
//    under the commit mutex), so sigma_{a,b} range scans are binary searches.
//  * ts_sorted = false -- view deltas. The min-timestamp rule (Sec. 2) means
//    propagation inserts rows whose timestamps are *older* than previously
//    inserted ones, so the view delta is not time-ordered; scans filter.
//
// Thread safety: a shared_mutex guards the row vector. In log-capture mode
// the capture thread is the only appender for base deltas and propagation
// transactions are the only appenders for view deltas; readers take the
// shared latch. Logical 2PL locking of delta tables (trigger mode only) is
// the Db layer's responsibility.

#ifndef ROLLVIEW_CAPTURE_DELTA_TABLE_H_
#define ROLLVIEW_CAPTURE_DELTA_TABLE_H_

#include <atomic>
#include <deque>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/csn.h"
#include "schema/schema.h"
#include "schema/tuple.h"
#include "storage/ids.h"

namespace rollview {

// Hash-partition selector over delta rows: a row belongs to partition
// hash(tuple[column]) % count. Partitioned propagation (ivm layer) gives
// each concurrent strip one filter so disjoint strips read disjoint row
// sets of the same delta table. count <= 1 matches everything (the
// unpartitioned single-driver case).
//
// The hash is Value::Hash, which is deterministic for a build of the
// engine; per-partition cursors are only durable relative to the same
// binary, which is the crash-recovery contract everywhere else too.
struct DeltaPartitionFilter {
  size_t column = 0;   // column of the row's tuple that carries the join key
  uint32_t count = 1;  // total partitions
  uint32_t index = 0;  // this strip's partition
  bool Matches(const DeltaRow& r) const {
    return count <= 1 ||
           static_cast<uint32_t>(r.tuple[column].Hash() % count) == index;
  }
};

class DeltaTable {
 public:
  DeltaTable(std::string name, Schema schema, bool ts_sorted)
      : name_(std::move(name)),
        schema_(std::move(schema)),
        ts_sorted_(ts_sorted) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  bool ts_sorted() const { return ts_sorted_; }

  // Appends one row. In ts_sorted mode the row's ts must be >= max_ts().
  void Append(DeltaRow row);
  void AppendBatch(std::vector<DeltaRow> rows);

  // sigma_{lo,hi}: rows with lo < ts <= hi.
  DeltaRows Scan(const CsnRange& range) const;
  DeltaRows ScanAll() const;

  // RAII pin that defers pruning: while any Pin on a table is live, Prune
  // is a no-op (retention retries on its next cycle). Combined with deque
  // row storage -- appends never move existing rows -- this makes borrowed
  // row pointers stable for the pin's lifetime.
  class Pin {
   public:
    Pin() = default;
    explicit Pin(const DeltaTable* t) : t_(t) {
      t_->pins_.fetch_add(1, std::memory_order_acq_rel);
    }
    Pin(Pin&& o) noexcept : t_(o.t_) { o.t_ = nullptr; }
    Pin& operator=(Pin&& o) noexcept {
      Release();
      t_ = o.t_;
      o.t_ = nullptr;
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { Release(); }

   private:
    void Release() {
      if (t_ != nullptr) t_->pins_.fetch_sub(1, std::memory_order_acq_rel);
      t_ = nullptr;
    }
    const DeltaTable* t_ = nullptr;
  };

  // Zero-copy sigma_{lo,hi}: pointers into the row store, valid while *pin
  // is held. The pin is acquired before the rows are collected, so a
  // concurrent Prune either ran first (the refs see the pruned store) or
  // observes the pin and defers.
  DeltaRowRefs ScanRefs(const CsnRange& range, Pin* pin) const;
  // Partition-restricted variant: only rows `filter` matches. A null filter
  // (or count <= 1) is the unfiltered scan.
  DeltaRowRefs ScanRefs(const CsnRange& range,
                        const DeltaPartitionFilter* filter, Pin* pin) const;
  // Number of rows a Scan(range) would return, without materializing.
  size_t CountInRange(const CsnRange& range) const;
  size_t CountInRange(const CsnRange& range,
                      const DeltaPartitionFilter* filter) const;

  // Adaptive-interval helper (ts_sorted only): the smallest ts T <= cap such
  // that (from, T] contains at least `rows` rows -- i.e. the end of a
  // propagation interval sized to roughly `rows` delta rows. Returns `cap`
  // when fewer than `rows` rows exist in (from, cap]. The filtered variant
  // counts only rows the partition filter matches, so each strip's interval
  // is sized to *its* work rather than the whole table's.
  Csn TsAfterRows(Csn from, size_t rows, Csn cap) const;
  Csn TsAfterRows(Csn from, size_t rows, Csn cap,
                  const DeltaPartitionFilter* filter) const;

  size_t size() const;
  Csn max_ts() const;
  // Highest `up_to` an effective Prune/Clear has reclaimed through: rows
  // with ts <= pruned_through() may be gone, so a range scan with
  // lo < pruned_through() can be incomplete. Consumers that telescope over
  // historical windows (half-join advances) check this before trusting a
  // Scan and fall back to snapshot rebuilds otherwise.
  Csn pruned_through() const;

  // Drops rows with ts <= up_to (e.g. base-delta pruning below the view's
  // materialization time, or view-delta pruning below the applied time).
  // Returns the number of rows dropped. A no-op (returns 0) while any Pin
  // is live, so borrowed ScanRefs rows can never dangle.
  size_t Prune(Csn up_to);

  // Drops ALL rows and resets max_ts, returning the number dropped. Used by
  // view repair (ViewManager::RecoverView on a live view) before reloading
  // the delta from a checkpoint + log suffix. The caller must guarantee
  // exclusivity -- no concurrent appenders, no live Pins (unlike Prune,
  // Clear does not defer; borrowed ScanRefs rows would dangle).
  size_t Clear();

 private:
  // Index of the first row with ts > bound (requires ts_sorted_, latch held).
  size_t LowerBound(Csn bound) const;

  std::string name_;
  Schema schema_;
  bool ts_sorted_;

  mutable std::shared_mutex latch_;
  // Deque, not vector: growth must not move rows out from under ScanRefs
  // borrowers (deque push_back never invalidates references to elements).
  std::deque<DeltaRow> rows_;
  mutable std::atomic<int> pins_{0};
  Csn max_ts_ = kNullCsn;
  Csn pruned_through_ = kNullCsn;  // guarded by latch_
};

}  // namespace rollview

#endif  // ROLLVIEW_CAPTURE_DELTA_TABLE_H_
