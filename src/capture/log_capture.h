// Copyright 2026 The rollview Authors.
//
// LogCapture: the paper's DPropR analogue (Sec. 5). It tails the engine's
// write-ahead log, buffers each transaction's changes until its commit
// record appears, and then -- atomically with respect to readers of the
// delta tables -- appends timestamped delta rows to Delta^R for every
// log-capture-mode base table the transaction touched, and records the
// transaction in the unit-of-work table.
//
// Because commit records enter the WAL in commit-sequence order, capture
// processes commits in CSN order and its high-water mark (the largest CSN
// for which all delta rows are in place) advances monotonically. The
// propagation algorithms never read a delta range beyond this mark.
//
// Capture can run as a background thread (Start/Stop) or be stepped
// manually with Poll() for deterministic tests.

#ifndef ROLLVIEW_CAPTURE_LOG_CAPTURE_H_
#define ROLLVIEW_CAPTURE_LOG_CAPTURE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/db.h"

namespace rollview {

struct CaptureOptions {
  // WAL records consumed per Poll (throughput throttle).
  size_t batch_size = 4096;
  // Background thread poll period; larger values simulate capture lag.
  std::chrono::milliseconds poll_period{1};
  // Truncate consumed WAL prefixes to bound memory.
  bool truncate_wal = true;
};

class LogCapture {
 public:
  explicit LogCapture(Db* db, CaptureOptions options = CaptureOptions{});
  ~LogCapture();

  LogCapture(const LogCapture&) = delete;
  LogCapture& operator=(const LogCapture&) = delete;

  // Processes up to batch_size available WAL records; returns the number
  // processed. Safe to call concurrently with Start (internally serialized).
  size_t Poll();

  // Drains the WAL completely (repeated Poll until empty).
  void CatchUp();

  void Start();
  void Stop();

  // Largest CSN all of whose delta rows have been published.
  Csn high_water_mark() const {
    return hwm_.load(std::memory_order_acquire);
  }

  // Blocks until high_water_mark() >= csn. With the background thread
  // running, waits on a condition variable notified by Poll() when the
  // high-water mark advances (no spinning); otherwise polls inline.
  // Returns Busy on timeout.
  Status WaitForCsn(Csn csn, std::chrono::milliseconds timeout =
                                  std::chrono::milliseconds(10000));

  struct Stats {
    uint64_t records_processed = 0;
    uint64_t txns_captured = 0;   // committed txns with captured changes
    uint64_t rows_published = 0;  // delta rows appended
    uint64_t lag_stalls = 0;      // Poll calls stalled by fault injection
  };
  Stats GetStats() const;

 private:
  struct PendingChange {
    TableId table;
    Tuple tuple;
    int64_t count;  // +1 insert, -1 delete
  };

  void ThreadMain();

  Db* db_;
  CaptureOptions options_;

  std::mutex poll_mu_;  // serializes Poll bodies
  Lsn cursor_ = 0;      // next WAL LSN to read (guarded by poll_mu_)
  std::unordered_map<TxnId, std::vector<PendingChange>> pending_;

  std::atomic<Csn> hwm_{0};
  // Guards the sleep in WaitForCsn; Poll notifies after the HWM advances
  // and Stop notifies so waiters fall back to inline polling.
  std::mutex hwm_mu_;
  std::condition_variable hwm_cv_;

  mutable std::mutex stats_mu_;
  Stats stats_;

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::condition_variable stop_cv_;
  std::mutex stop_mu_;
};

}  // namespace rollview

#endif  // ROLLVIEW_CAPTURE_LOG_CAPTURE_H_
