// Copyright 2026 The rollview Authors.
//
// Unit-of-work (UOW) table, after the paper's Sec. 5: maps each relevant
// transaction id to its commit sequence number and wall-clock commit
// timestamp. "Both the sequence number and the timestamp are consistent with
// the transaction serialization order, but the sequence numbers are unique,
// while commit timestamps may not be."
//
// The propagation machinery works in CSNs; the UOW table lets applications
// specify refresh points in wall-clock terms ("roll the view to 5:00pm") and
// translates them to CSNs.

#ifndef ROLLVIEW_CAPTURE_UOW_TABLE_H_
#define ROLLVIEW_CAPTURE_UOW_TABLE_H_

#include <chrono>
#include <map>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/csn.h"
#include "storage/ids.h"

namespace rollview {

using WallTime = std::chrono::system_clock::time_point;

class UowTable {
 public:
  struct Entry {
    TxnId txn = kInvalidTxnId;
    Csn csn = kNullCsn;
    WallTime commit_time;
  };

  // Records a commit. Idempotent per transaction (the trigger-capture
  // commit path and the log-capture process may both report a transaction
  // that touched tables of both modes), and tolerant of out-of-order
  // arrival (the trigger path runs ahead of the log reader).
  void Record(TxnId txn, Csn csn, WallTime commit_time);

  std::optional<Entry> LookupTxn(TxnId txn) const;
  std::optional<Entry> LookupCsn(Csn csn) const;

  // Largest CSN whose commit time is <= `t` (the CSN to roll a view to for a
  // wall-clock point-in-time refresh). kNullCsn if none.
  Csn CsnAtOrBefore(WallTime t) const;

  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<TxnId, Csn> by_txn_;
  std::map<Csn, Entry> entries_;  // keyed (and therefore sorted) by CSN
};

}  // namespace rollview

#endif  // ROLLVIEW_CAPTURE_UOW_TABLE_H_
